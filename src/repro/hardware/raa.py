"""Reconfigurable atom array (RAA / FPQA) architecture model.

An RAA consists of one fixed SLM grid and ``num_aods`` movable AOD grids
(Sec. II).  Qubits live either at an SLM *site* or at an AOD *trap* ``(row,
col)`` of one AOD set.  The logical coupling graph is complete multipartite
over the arrays: two qubits can interact directly iff they sit in different
arrays (Sec. III, Fig. 4).

Geometry is abstracted onto the interaction-site grid of the SLM (pitch =
``atom_distance``): a movement stage places selected AOD rows/cols onto site
rows/cols; everything else parks at half-pitch offsets which are guaranteed
to be at least 2.5 Rydberg radii from any site because the pitch itself is
at least 6 Rydberg radii (Sec. IV: "atom distance ... needs to be greater
than 6x the Rydberg radius").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .coupling import CouplingMap
from .parameters import HardwareParams, scaled_neutral_atom_params


class RAAError(ValueError):
    """Raised on invalid RAA configuration or placement."""


@dataclass(frozen=True)
class ArrayShape:
    """Rows x cols of one atom array."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise RAAError(f"invalid array shape {self.rows}x{self.cols}")

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    def sites(self) -> list[tuple[int, int]]:
        """All ``(row, col)`` positions, row-major."""
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]


@dataclass(frozen=True)
class AtomLocation:
    """Physical home of a qubit: array index + (row, col) inside it.

    ``array == 0`` is the SLM; arrays ``1..num_aods`` are AOD sets.
    """

    array: int
    row: int
    col: int

    @property
    def is_slm(self) -> bool:
        return self.array == 0

    @property
    def is_aod(self) -> bool:
        return self.array > 0


@dataclass
class RAAArchitecture:
    """One SLM array plus ``num_aods`` AOD arrays.

    Parameters
    ----------
    slm_shape:
        Shape of the fixed SLM grid; this grid also defines the interaction
        sites AOD rows/cols can be parked onto.
    aod_shapes:
        One shape per AOD set.  The paper's default is two AODs of the same
        shape as the SLM ("default configuration is 10x10 topology with
        1 SLM array and 2 AOD arrays"); Fig. 23 varies them independently.
    params:
        Physical parameters (Table I), defaulting to the paper's scaled
        evaluation setting.
    """

    slm_shape: ArrayShape
    aod_shapes: list[ArrayShape]
    params: HardwareParams = field(default_factory=scaled_neutral_atom_params)

    def __post_init__(self) -> None:
        if not self.aod_shapes:
            raise RAAError("RAA needs at least one AOD array")
        if self.params.atom_distance < 6.0 * self.params.rydberg_radius * (1.0 - 1e-9):
            raise RAAError(
                "atom distance must be >= 6 Rydberg radii for safe parking "
                f"(got {self.params.atom_distance} < "
                f"{6.0 * self.params.rydberg_radius})"
            )

    @classmethod
    def default(
        cls,
        side: int = 10,
        num_aods: int = 2,
        params: HardwareParams | None = None,
    ) -> "RAAArchitecture":
        """The paper's default: ``side x side`` SLM + ``num_aods`` same-shape AODs."""
        shape = ArrayShape(side, side)
        return cls(
            slm_shape=shape,
            aod_shapes=[ArrayShape(side, side) for _ in range(num_aods)],
            params=params or scaled_neutral_atom_params(),
        )

    @property
    def num_aods(self) -> int:
        return len(self.aod_shapes)

    @property
    def num_arrays(self) -> int:
        """k = 1 SLM + number of AODs (the k of MAX k-cut)."""
        return 1 + self.num_aods

    def array_shape(self, array: int) -> ArrayShape:
        """Shape of array *array* (0 = SLM)."""
        if array == 0:
            return self.slm_shape
        if 1 <= array <= self.num_aods:
            return self.aod_shapes[array - 1]
        raise RAAError(f"no array {array}")

    @property
    def total_capacity(self) -> int:
        """Total number of atom traps across all arrays."""
        return self.slm_shape.capacity + sum(s.capacity for s in self.aod_shapes)

    def array_capacities(self) -> list[int]:
        """Capacity per array, index 0 = SLM."""
        return [self.slm_shape.capacity] + [s.capacity for s in self.aod_shapes]

    # -- site geometry ---------------------------------------------------------

    @property
    def site_rows(self) -> int:
        """Interaction-site rows (the SLM grid rows)."""
        return self.slm_shape.rows

    @property
    def site_cols(self) -> int:
        """Interaction-site columns (the SLM grid cols)."""
        return self.slm_shape.cols

    def site_distance(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> float:
        """Euclidean distance (metres) between two interaction sites."""
        pitch = self.params.atom_distance
        dr = (a[0] - b[0]) * pitch
        dc = (a[1] - b[1]) * pitch
        return (dr * dr + dc * dc) ** 0.5

    # -- logical coupling --------------------------------------------------------

    def multipartite_coupling(self, array_of_qubit: list[int]) -> CouplingMap:
        """Complete multipartite coupling graph for a qubit->array assignment.

        Qubit *i* sits in array ``array_of_qubit[i]``; edges join every pair
        of qubits in *different* arrays (Sec. III: "two-qubit gates can only
        be performed between two different arrays").

        The map (with its cached distance matrix and neighbor lists) is
        memoized per assignment so repeated compiles of the same circuit —
        e.g. a router-toggle sweep sharing one array mapping — reuse one
        instance instead of re-running the all-pairs BFS.
        """
        key = tuple(array_of_qubit)
        cache = getattr(self, "_multipartite_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_multipartite_cache", cache)
        cm = cache.get(key)
        if cm is None:
            n = len(array_of_qubit)
            edges = [
                (i, j)
                for i in range(n)
                for j in range(i + 1, n)
                if array_of_qubit[i] != array_of_qubit[j]
            ]
            cm = CouplingMap(n, edges)
            if len(cache) >= 8:  # bound the per-architecture footprint
                cache.pop(next(iter(cache)))
            cache[key] = cm
        return cm

    def validate_assignment(self, array_of_qubit: list[int]) -> None:
        """Raise if an array is over capacity or an index is out of range."""
        caps = self.array_capacities()
        counts = [0] * self.num_arrays
        for q, a in enumerate(array_of_qubit):
            if not (0 <= a < self.num_arrays):
                raise RAAError(f"qubit {q} assigned to nonexistent array {a}")
            counts[a] += 1
        for a, (cnt, cap) in enumerate(zip(counts, caps)):
            if cnt > cap:
                raise RAAError(
                    f"array {a} over capacity: {cnt} qubits in {cap} traps"
                )
