"""Heavy-hex superconducting coupling map (IBM Washington-style).

The heavy-hexagon lattice is the IBM Eagle/Washington topology: hexagonal
cells whose vertices are degree-3 qubits and whose edges each carry one
degree-2 bridge qubit.  We generate it as rows of linear chains connected by
sparse vertical rungs, which reproduces the qubit-degree distribution
(max degree 3) and the long SWAP distances that drive the paper's
superconducting baseline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .coupling import CouplingMap
from .parameters import HardwareParams, scaled_superconducting_params


def heavy_hex_coupling(rows: int, row_length: int, rung_spacing: int = 4) -> CouplingMap:
    """Build a heavy-hex-style lattice.

    Parameters
    ----------
    rows:
        Number of horizontal qubit chains.
    row_length:
        Qubits per chain.
    rung_spacing:
        Horizontal distance between vertical bridge qubits; alternating rows
        offset the rungs by half a period, forming the hexagon cells.
    """
    if rows < 1 or row_length < 2:
        raise ValueError("heavy-hex needs rows >= 1 and row_length >= 2")
    num_chain = rows * row_length

    def qid(r: int, c: int) -> int:
        return r * row_length + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(row_length - 1):
            edges.append((qid(r, c), qid(r, c + 1)))

    next_id = num_chain
    for r in range(rows - 1):
        offset = (rung_spacing // 2) * (r % 2)
        for c in range(offset, row_length, rung_spacing):
            bridge = next_id
            next_id += 1
            edges.append((qid(r, c), bridge))
            edges.append((bridge, qid(r + 1, c)))
    return CouplingMap(next_id, edges)


@dataclass
class SuperconductingArchitecture:
    """A heavy-hex superconducting device.

    The default sizing targets the 127-qubit IBM Washington machine used in
    the paper; :meth:`for_circuit` grows the lattice for larger registers
    (the paper equalizes qubit counts across architectures).
    """

    rows: int = 7
    row_length: int = 15
    params: HardwareParams = field(default_factory=scaled_superconducting_params)

    @classmethod
    def for_circuit(
        cls, num_qubits: int, params: HardwareParams | None = None
    ) -> "SuperconductingArchitecture":
        """Smallest default-proportioned heavy-hex holding *num_qubits*."""
        rows, row_length = 7, 15
        while True:
            dev = cls(rows, row_length, params or scaled_superconducting_params())
            if dev.coupling_map().num_qubits >= num_qubits:
                return dev
            rows += 2
            row_length += 4

    def coupling_map(self) -> CouplingMap:
        """The heavy-hex coupling graph (built once per instance, so its
        distance matrix and neighbor lists are computed once too)."""
        cached = getattr(self, "_coupling", None)
        if cached is None:
            cached = heavy_hex_coupling(self.rows, self.row_length)
            self._coupling = cached
        return cached
