"""Coupling-map abstraction shared by all backends.

A :class:`CouplingMap` is an undirected graph over physical qubits with a
cached all-pairs shortest-path distance matrix (BFS).  SABRE's heuristic and
swap enumeration work purely through this interface, so the same router runs
on heavy-hex superconducting chips, FAA grids, and the RAA complete
multipartite logical graph.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np


class CouplingError(ValueError):
    """Raised for invalid coupling-map queries."""


class CouplingMap:
    """Undirected coupling graph with BFS distances.

    Parameters
    ----------
    num_qubits:
        Number of physical qubits.
    edges:
        Iterable of undirected pairs ``(a, b)``.
    """

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_qubits <= 0:
            raise CouplingError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.adj: list[set[int]] = [set() for _ in range(self.num_qubits)]
        self._edges: set[tuple[int, int]] = set()
        for a, b in edges:
            self.add_edge(int(a), int(b))
        self._dist: np.ndarray | None = None
        self._nbr_lists: tuple[np.ndarray, ...] | None = None

    def add_edge(self, a: int, b: int) -> None:
        """Insert the undirected edge ``(a, b)``."""
        if a == b:
            raise CouplingError(f"self-loop on qubit {a}")
        if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
            raise CouplingError(f"edge ({a},{b}) out of range")
        self.adj[a].add(b)
        self.adj[b].add(a)
        self._edges.add((min(a, b), max(a, b)))
        self._dist = None
        self._nbr_lists = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of undirected edges."""
        return sorted(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, q: int) -> set[int]:
        """Physical qubits adjacent to *q*."""
        return self.adj[q]

    def is_adjacent(self, a: int, b: int) -> bool:
        """True if a 2Q gate can run directly between *a* and *b*."""
        return b in self.adj[a]

    def degree(self, q: int) -> int:
        return len(self.adj[q])

    def neighbor_lists(self) -> tuple[np.ndarray, ...]:
        """Per-qubit sorted neighbor index arrays, cached on the instance.

        SABRE's candidate enumeration consumes these instead of the python
        ``adj`` sets so swap-edge generation is a numpy concatenation.
        """
        if self._nbr_lists is None:
            self._nbr_lists = tuple(
                np.fromiter(sorted(s), dtype=np.int64, count=len(s))
                for s in self.adj
            )
        return self._nbr_lists

    # -- distances ------------------------------------------------------------

    #: above this size the dense frontier product's n^2-per-level memory
    #: traffic loses to the per-source python BFS
    _DENSE_BFS_LIMIT = 512

    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop distances; unreachable pairs get a large sentinel.

        Computed once and cached on the instance (every factory in this
        module builds the full edge set in the constructor, so the cache
        never needs invalidating in practice; ``add_edge`` still clears it
        for the incremental-construction path).  Small graphs use a
        vectorized all-sources BFS: one boolean frontier matrix expanded a
        level at a time through a float32 adjacency product.
        """
        if self._dist is None:
            n = self.num_qubits
            if n <= self._DENSE_BFS_LIMIT and self._edges:
                self._dist = self._distance_matrix_dense()
            else:
                self._dist = self._distance_matrix_bfs()
        return self._dist

    def _distance_matrix_dense(self) -> np.ndarray:
        n = self.num_qubits
        edges = np.array(sorted(self._edges), dtype=np.int64)
        adj = np.zeros((n, n), dtype=np.float32)
        adj[edges[:, 0], edges[:, 1]] = 1.0
        adj[edges[:, 1], edges[:, 0]] = 1.0
        dist = np.full((n, n), n + 1, dtype=np.int32)
        np.fill_diagonal(dist, 0)
        frontier = np.eye(n, dtype=np.float32)
        reached = np.eye(n, dtype=bool)
        level = 0
        while True:
            level += 1
            newly = (frontier @ adj > 0.0) & ~reached
            if not newly.any():
                break
            dist[newly] = level
            reached |= newly
            frontier = newly.astype(np.float32)
        return dist

    def _distance_matrix_bfs(self) -> np.ndarray:
        n = self.num_qubits
        dist = np.full((n, n), n + 1, dtype=np.int32)
        for src in range(n):
            dist[src, src] = 0
            dq: deque[int] = deque([src])
            while dq:
                u = dq.popleft()
                for v in self.adj[u]:
                    if dist[src, v] > dist[src, u] + 1:
                        dist[src, v] = dist[src, u] + 1
                        dq.append(v)
        return dist

    def distance(self, a: int, b: int) -> int:
        """Hop distance between *a* and *b*."""
        return int(self.distance_matrix()[a, b])

    def is_connected(self) -> bool:
        """True if the graph is a single connected component."""
        return bool((self.distance_matrix()[0] <= self.num_qubits).all())

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One BFS shortest path from *a* to *b* inclusive."""
        if a == b:
            return [a]
        prev = {a: a}
        dq: deque[int] = deque([a])
        while dq:
            u = dq.popleft()
            for v in self.adj[u]:
                if v not in prev:
                    prev[v] = u
                    if v == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    dq.append(v)
        raise CouplingError(f"no path between {a} and {b}")

    def subgraph_is_valid_layout(self, physical: Iterable[int]) -> bool:
        """True if *physical* induces a connected subgraph (dense-layout check)."""
        nodes = set(physical)
        if not nodes:
            return False
        start = next(iter(nodes))
        seen = {start}
        dq = deque([start])
        while dq:
            u = dq.popleft()
            for v in self.adj[u]:
                if v in nodes and v not in seen:
                    seen.add(v)
                    dq.append(v)
        return seen == nodes


def grid_coupling(rows: int, cols: int, triangular: bool = False) -> CouplingMap:
    """Rectangular (optionally triangular) grid coupling map.

    Triangular adds one diagonal per unit cell, matching the FAA-Triangular
    topology of Geyser [64] used as a baseline in the paper.
    """
    n = rows * cols

    def qid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((qid(r, c), qid(r, c + 1)))
            if r + 1 < rows:
                edges.append((qid(r, c), qid(r + 1, c)))
            if triangular and r + 1 < rows and c + 1 < cols:
                edges.append((qid(r, c), qid(r + 1, c + 1)))
    return CouplingMap(n, edges)


def long_range_grid_coupling(rows: int, cols: int, max_range: float) -> CouplingMap:
    """Grid where any pair within Euclidean distance *max_range* sites couples.

    Models Baker et al.'s long-range FAA interactions (max range = 4 Rydberg
    radii, with unit site pitch = 1 Rydberg-radius-normalized spacing).
    """
    n = rows * cols
    coords = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            dr = coords[i][0] - coords[j][0]
            dc = coords[i][1] - coords[j][1]
            if (dr * dr + dc * dc) ** 0.5 <= max_range + 1e-9:
                edges.append((i, j))
    return CouplingMap(n, edges)
