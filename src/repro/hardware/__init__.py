"""Device models: coupling maps, RAA/FAA/superconducting architectures, Table I parameters."""

from .coupling import (
    CouplingError,
    CouplingMap,
    grid_coupling,
    long_range_grid_coupling,
)
from .faa import FAAArchitecture
from .parameters import (
    raw_neutral_atom_params,
    HardwareParams,
    neutral_atom_params,
    scaled_neutral_atom_params,
    scaled_superconducting_params,
    superconducting_params,
)
from .raa import ArrayShape, AtomLocation, RAAArchitecture, RAAError
from .superconducting import SuperconductingArchitecture, heavy_hex_coupling

__all__ = [
    "ArrayShape",
    "AtomLocation",
    "CouplingError",
    "CouplingMap",
    "FAAArchitecture",
    "HardwareParams",
    "RAAArchitecture",
    "RAAError",
    "SuperconductingArchitecture",
    "grid_coupling",
    "heavy_hex_coupling",
    "long_range_grid_coupling",
    "neutral_atom_params",
    "raw_neutral_atom_params",
    "scaled_neutral_atom_params",
    "scaled_superconducting_params",
    "superconducting_params",
]
