"""Hardware parameters (Table I of the paper) and derived movement constants.

All times are seconds, distances are metres, frequencies are Hz.  The neutral
atom numbers come from Bluvstein et al. (Nature 2022) as cited in the paper;
the superconducting numbers from the IBMQ platform.  The paper scales
coherence time by 10x and gate errors down by 10x "to make evaluation on
large quantum circuits possible" — :func:`scaled_neutral_atom_params` applies
exactly that scaling and is the default for the evaluation harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

PLANCK = 6.62607015e-34  # J*s
ATOM_MASS_RB87 = 1.443e-25  # kg (Rb-87, the species used in [10])


@dataclass(frozen=True)
class HardwareParams:
    """Device-level physical parameters.

    Attributes mirror Table I.  ``f_2q``/``f_1q`` are gate fidelities,
    ``t_2q``/``t_1q`` gate durations, ``t1`` the coherence time,
    ``atom_distance`` the site pitch, ``t_per_move`` the per-stage AOD move
    duration, ``t_transfer``/``p_transfer_loss`` the SLM<->AOD atom-transfer
    cost, and ``xzpf``/``omega0``/``lam`` the heating-model constants.
    """

    f_2q: float = 0.9975
    f_1q: float = 0.99992
    t_2q: float = 380e-9
    t_1q: float = 625e-9
    t1: float = 15.0
    atom_distance: float = 15e-6
    rydberg_radius: float = 2.5e-6
    t_per_move: float = 300e-6
    t_transfer: float = 15e-6
    p_transfer_loss: float = 0.0068
    xzpf: float = 38e-9
    omega0: float = 2 * math.pi * 80e3
    lam: float = 0.109
    n_vib_max: float = 33.0
    n_vib_cooling_threshold: float = 15.0

    def with_overrides(self, **kwargs: float) -> "HardwareParams":
        """Copy with selected fields replaced (sensitivity sweeps)."""
        return replace(self, **kwargs)

    @property
    def avg_move_speed(self) -> float:
        """Mean speed (m/s) of a single-pitch move, Fig. 18(b)'s x-axis."""
        return self.atom_distance / self.t_per_move

    def delta_n_vib(self, distance: float, t_move: float | None = None) -> float:
        """Vibrational quanta added by one constant-jerk move of *distance*.

        Implements Sec. IV: ``delta_n = 0.5 * (6 D / (xzpf * w0^2 * T^2))^2``.
        """
        t = self.t_per_move if t_move is None else t_move
        if distance <= 0.0:
            return 0.0
        val = 6.0 * distance / (self.xzpf * (self.omega0**2) * (t**2))
        return 0.5 * val * val


def raw_neutral_atom_params() -> HardwareParams:
    """Unscaled hardware values quoted in Sec. IV: f2q=0.975, T1=1.5 s.

    The paper's Table I already applies the 10x coherence / 10x error
    evaluation scaling ("We scale up the coherence time ... by 10x and scale
    down their two-qubit and one-qubit gate errors"), so these raw values are
    only used by the Sec. IV break-even analysis.
    """
    return HardwareParams(f_2q=0.975, f_1q=0.9992, t1=1.5)


def neutral_atom_params() -> HardwareParams:
    """Table I neutral-atom parameters (evaluation scaling already applied)."""
    return HardwareParams()


def scaled_neutral_atom_params() -> HardwareParams:
    """Alias of :func:`neutral_atom_params` — Table I is the scaled setting."""
    return neutral_atom_params()


def superconducting_params() -> HardwareParams:
    """Table I superconducting row (IBMQ-derived timing).

    Gate fidelities are equalized with the neutral-atom values "for unbiased
    comparisons"; only timing and coherence differ.  Reproducing the paper's
    reported superconducting fidelities (e.g. BV-70 = 0.002) requires using
    the quoted T1 = 801.2 us directly.
    """
    return HardwareParams(
        f_2q=0.9975,
        f_1q=0.99992,
        t_2q=480e-9,
        t_1q=35.2e-9,
        t1=801.2e-6,
    )


def scaled_superconducting_params() -> HardwareParams:
    """Alias of :func:`superconducting_params` (Table I values)."""
    return superconducting_params()


def delta_n_vib_reference_check() -> dict[int, float]:
    """Reference values from Sec. IV: hops -> delta n_vib.

    The paper quotes 0.0054 for 1 hop (15 um, 300 us), 0.13 for 5 hops and
    0.54 for 10 hops.  Returned for the unit tests that pin the heating model
    to the published numbers.
    """
    p = neutral_atom_params()
    return {hops: p.delta_n_vib(hops * p.atom_distance) for hops in (1, 5, 10)}
