"""Fixed atom array (FAA) device models.

Three FAA baselines from the paper's evaluation:

* **FAA-Rectangular** — nearest-neighbour rectangular grid;
* **FAA-Triangular** — grid plus one diagonal per cell (Geyser's topology);
* **Baker-Long-Range** — rectangular grid where any pair within 4 Rydberg
  radii may interact directly (Baker et al., ISCA'21).

Each provides a coupling map sized to hold the circuit, plus timing metadata
used by the fidelity model (FAA gates need no atom movement; routing is done
with SWAPs inserted by SABRE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .coupling import CouplingMap, grid_coupling, long_range_grid_coupling
from .parameters import HardwareParams, scaled_neutral_atom_params


def _grid_shape_for(num_qubits: int) -> tuple[int, int]:
    """Smallest near-square grid holding *num_qubits*."""
    rows = int(math.isqrt(num_qubits))
    if rows * rows < num_qubits:
        rows += 1
    cols = rows
    while rows * (cols - 1) >= num_qubits:
        cols -= 1
    return rows, cols


@dataclass
class FAAArchitecture:
    """A fixed-atom-array device.

    Parameters
    ----------
    topology:
        ``"rectangular"``, ``"triangular"`` or ``"long_range"``.
    rows, cols:
        Grid dimensions.
    max_interaction_range:
        For ``"long_range"``: maximum Euclidean interaction distance in site
        units.  The paper sets Baker's maximum range to 4 Rydberg radii; FAA
        atoms must sit >= 2.5 r_b apart so that idle neighbours stay outside
        the blockade, giving a range of 4/2.5 = 1.6 site pitches (king's-move
        connectivity).
    params:
        Physical parameters; neutral-atom Table I values by default.
    """

    topology: str
    rows: int
    cols: int
    max_interaction_range: float = 1.6
    params: HardwareParams = field(default_factory=scaled_neutral_atom_params)

    def __post_init__(self) -> None:
        if self.topology not in ("rectangular", "triangular", "long_range"):
            raise ValueError(f"unknown FAA topology {self.topology!r}")

    @classmethod
    def for_circuit(
        cls,
        num_qubits: int,
        topology: str = "rectangular",
        params: HardwareParams | None = None,
        max_interaction_range: float = 1.6,
    ) -> "FAAArchitecture":
        """Smallest near-square FAA holding *num_qubits* (paper: baselines
        "equalize qubit numbers with those reported in Atomique")."""
        rows, cols = _grid_shape_for(num_qubits)
        return cls(
            topology=topology,
            rows=rows,
            cols=cols,
            max_interaction_range=max_interaction_range,
            params=params or scaled_neutral_atom_params(),
        )

    @property
    def num_qubits(self) -> int:
        return self.rows * self.cols

    def coupling_map(self) -> CouplingMap:
        """The device coupling graph (built once per instance, so its
        distance matrix and neighbor lists are computed once too)."""
        cached = getattr(self, "_coupling", None)
        if cached is not None:
            return cached
        if self.topology == "rectangular":
            cached = grid_coupling(self.rows, self.cols, triangular=False)
        elif self.topology == "triangular":
            cached = grid_coupling(self.rows, self.cols, triangular=True)
        else:
            cached = long_range_grid_coupling(
                self.rows, self.cols, self.max_interaction_range
            )
        self._coupling = cached
        return cached
