"""Fig. 20: array-topology sensitivity.

(a) same atom count per array, different row:col aspect ratios;
(b) square arrays from 7x7 to 20x20;
(c) 1-7 AOD arrays.

Benchmarks (paper): 100-qubit arbitrary circuit with 10 gates/qubit, 40-qubit
QSim at p=0.5, 40-qubit 5-regular QAOA.  Metrics: execution time, fidelity,
average moving distance, 2Q gate count.

Expected shapes: square arrays minimize move distance (max fidelity) with a
slight execution-time penalty; larger arrays lengthen moves and hurt
fidelity; more AODs reduce 2Q count and execution time.

Every runner routes its (topology x benchmark) grid through
:func:`~repro.experiments.batch.compile_many`: ``workers=N`` fans the grid
out over a process pool, ``cache=<dir>`` enables the on-disk result cache,
and the serial default shares one pipeline prefix cache (each circuit's
lowering is topology-independent, so it is reused across all of its
topology points).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import random_circuit
from ..generators.qaoa import qaoa_regular
from ..generators.qsim import qsim_random
from ..hardware.raa import ArrayShape, RAAArchitecture
from .common import run_architecture_grid


def default_benchmarks() -> list[QuantumCircuit]:
    """Arb-100Q (10 gates/qubit), QSim-40Q (p=0.5), QAOA-40Q (5-regular)."""
    arb = random_circuit(100, 10.0, 5.0, seed=100)
    arb.name = "Arb-100Q"
    qsim = qsim_random(40, seed=40)
    qsim.name = "QSim-40Q"
    qaoa = qaoa_regular(40, 5, seed=40)
    qaoa.name = "QAOA-40Q"
    return [arb, qsim, qaoa]


@dataclass
class TopologyPoint:
    """One (topology label, benchmark) sample."""

    label: str
    benchmark: str
    metrics: CompiledMetrics


def _run_topology_grid(
    topologies: list[tuple[str, RAAArchitecture]],
    circuits: list[QuantumCircuit],
    seed: int,
    workers: int,
    cache: "str | None",
) -> list[TopologyPoint]:
    """Compile every (topology, benchmark) cell through the batch driver."""
    return [
        TopologyPoint(label, bench, m)
        for label, bench, m in run_architecture_grid(
            topologies, circuits, seed=seed, workers=workers, cache=cache
        )
    ]


def aspect_ratio_shapes(total: int = 48) -> list[tuple[int, int]]:
    """Factor pairs of *total*, wide to tall (paper uses 49 = 7x7 family)."""
    shapes = []
    for rows in range(1, total + 1):
        if total % rows == 0:
            shapes.append((rows, total // rows))
    return shapes


def run_aspect_ratio(
    shapes: list[tuple[int, int]] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    num_aods: int = 2,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[TopologyPoint]:
    """Fig. 20(a): same capacity, varying row:col ratio."""
    shapes = shapes if shapes is not None else [(4, 12), (6, 8), (7, 7), (8, 6), (12, 4)]
    circuits = benchmarks if benchmarks is not None else default_benchmarks()
    topologies = [
        (
            f"{rows}x{cols}",
            RAAArchitecture(
                slm_shape=ArrayShape(rows, cols),
                aod_shapes=[ArrayShape(rows, cols) for _ in range(num_aods)],
            ),
        )
        for rows, cols in shapes
    ]
    return _run_topology_grid(topologies, circuits, seed, workers, cache)


def run_array_size(
    sides: list[int] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    num_aods: int = 2,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[TopologyPoint]:
    """Fig. 20(b): square arrays of growing side."""
    sides = sides if sides is not None else [7, 10, 14, 20]
    circuits = benchmarks if benchmarks is not None else default_benchmarks()
    topologies = [
        (
            f"{side}x{side}",
            RAAArchitecture.default(side=side, num_aods=num_aods),
        )
        for side in sides
    ]
    return _run_topology_grid(topologies, circuits, seed, workers, cache)


def run_num_aods(
    aod_counts: list[int] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    side: int = 10,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[TopologyPoint]:
    """Fig. 20(c): 1-7 AOD arrays."""
    counts = aod_counts if aod_counts is not None else [1, 2, 3, 5, 7]
    circuits = benchmarks if benchmarks is not None else default_benchmarks()
    topologies = [
        (f"{k} AODs", RAAArchitecture.default(side=side, num_aods=k))
        for k in counts
    ]
    return _run_topology_grid(topologies, circuits, seed, workers, cache)
