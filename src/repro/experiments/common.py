"""Shared helpers for the per-figure experiment harnesses."""

from __future__ import annotations

from collections.abc import Callable

from ..analysis.metrics import CompiledMetrics, geometric_mean
from ..baselines import (
    compile_on_atomique,
    compile_on_faa,
    compile_on_superconducting,
)
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueConfig
from ..hardware.raa import RAAArchitecture

#: The five architectures of Fig. 13, in the paper's plotting order.
ARCHITECTURES: list[str] = [
    "Superconducting",
    "Baker-Long-Range",
    "FAA-Rectangular",
    "FAA-Triangular",
    "Atomique",
]


def compile_on(
    arch_name: str,
    circuit: QuantumCircuit,
    raa: RAAArchitecture | None = None,
    config: AtomiqueConfig | None = None,
    seed: int = 7,
) -> CompiledMetrics:
    """Dispatch *circuit* to the named architecture's compiler."""
    if arch_name == "Atomique":
        return compile_on_atomique(circuit, raa, config)
    if arch_name == "Superconducting":
        return compile_on_superconducting(circuit, seed=seed)
    if arch_name == "FAA-Rectangular":
        return compile_on_faa(circuit, "rectangular", seed=seed)
    if arch_name == "FAA-Triangular":
        return compile_on_faa(circuit, "triangular", seed=seed)
    if arch_name == "Baker-Long-Range":
        return compile_on_faa(circuit, "long_range", seed=seed)
    raise ValueError(f"unknown architecture {arch_name!r}")


def raa_for(circuit: QuantumCircuit, num_aods: int = 2) -> RAAArchitecture:
    """RAA sized for *circuit*: the paper's default 10x10 when it fits,
    otherwise the smallest square side that does."""
    side = 10
    while (1 + num_aods) * side * side < circuit.num_qubits:
        side += 1
    return RAAArchitecture.default(side=side, num_aods=num_aods)


def gmean_row(
    results: dict[str, list[CompiledMetrics]],
    metric: Callable[[CompiledMetrics], float],
) -> dict[str, float]:
    """Geometric mean of *metric* per architecture."""
    return {
        arch: geometric_mean([metric(m) for m in ms])
        for arch, ms in results.items()
    }
