"""Shared helpers for the per-figure experiment harnesses."""

from __future__ import annotations

import math
from collections.abc import Callable

from ..analysis.metrics import CompiledMetrics, geometric_mean
from ..baselines.registry import CompileOptions, get_backend
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueConfig
from ..hardware.parameters import HardwareParams
from ..hardware.raa import RAAArchitecture

#: The five architectures of Fig. 13, in the paper's plotting order.
ARCHITECTURES: list[str] = [
    "Superconducting",
    "Baker-Long-Range",
    "FAA-Rectangular",
    "FAA-Triangular",
    "Atomique",
]


def compile_on(
    arch_name: str,
    circuit: QuantumCircuit,
    raa: RAAArchitecture | None = None,
    config: AtomiqueConfig | None = None,
    seed: int = 7,
    params: HardwareParams | None = None,
) -> CompiledMetrics:
    """Dispatch *circuit* to the named backend via the registry."""
    options = CompileOptions(raa=raa, config=config, params=params, seed=seed)
    return get_backend(arch_name).compile(circuit, options)


def raa_for(circuit: QuantumCircuit, num_aods: int = 2) -> RAAArchitecture:
    """RAA sized for *circuit*: the paper's default 10x10 when it fits,
    otherwise the smallest square side that does."""
    per_cell = 1 + num_aods
    need = -(-circuit.num_qubits // per_cell)  # ceil division
    side = math.isqrt(need)
    if side * side < need:
        side += 1
    return RAAArchitecture.default(side=max(10, side), num_aods=num_aods)


def gmean_row(
    results: dict[str, list[CompiledMetrics]],
    metric: Callable[[CompiledMetrics], float],
) -> dict[str, float]:
    """Geometric mean of *metric* per architecture."""
    return {
        arch: geometric_mean([metric(m) for m in ms])
        for arch, ms in results.items()
    }


def run_architecture_grid(
    configurations: list[tuple[str, RAAArchitecture]],
    circuits: list[QuantumCircuit],
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[tuple[str, str, CompiledMetrics]]:
    """Compile every (labelled architecture, benchmark) cell on Atomique.

    The shared bridge behind the fig20/fig23/fig24 topology harnesses:
    circuits exceeding an architecture's capacity are skipped, jobs route
    through :func:`~repro.experiments.batch.compile_many` (``workers=N``
    fans out, ``cache=<dir>`` enables the on-disk result cache), and the
    serial default shares one pipeline prefix cache (each circuit's
    lowering is architecture-independent, so it is reused across all of
    its configuration points).  Returns ``(label, benchmark, metrics)``
    rows in grid order.
    """
    from ..core.pipeline import PipelineCache
    from .batch import CompileJob, compile_many

    prefix_cache = PipelineCache() if workers <= 1 else None
    jobs: list[CompileJob] = []
    labels: list[tuple[str, str]] = []
    for label, arch in configurations:
        for circ in circuits:
            if circ.num_qubits > arch.total_capacity:
                continue
            jobs.append(
                CompileJob(
                    "Atomique",
                    circ,
                    CompileOptions(
                        raa=arch, seed=seed, pipeline_cache=prefix_cache
                    ),
                )
            )
            labels.append((label, circ.name))
    metrics = compile_many(jobs, workers=workers, cache=cache)
    return [
        (label, bench, m) for (label, bench), m in zip(labels, metrics)
    ]
