"""Figs. 15-17: circuit-characteristic sweeps.

* Fig. 15 — random generic circuits at 40 qubits, sweeping *2Q gates per
  qubit* x *degree per qubit*;
* Fig. 16 — regular-graph QAOA, sweeping qubit number x graph degree;
* Fig. 17 — random QSim, sweeping qubit number x non-I probability.

Each cell compiles on Atomique, FAA-Rectangular, and FAA-Triangular and
reports 2Q count plus the *fidelity improvement* of Atomique over each FAA.
Expected shape: Atomique's advantage grows with degree (locality loss) and
with circuit volume; FAA wins slightly on small local circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..circuits.random_circuits import random_circuit
from ..generators.qaoa import qaoa_regular
from ..generators.qsim import qsim_random
from .common import compile_on, raa_for

SWEEP_ARCHS = ["FAA-Rectangular", "FAA-Triangular", "Atomique"]


@dataclass
class SweepCell:
    """One (x, y) grid point of a sweep figure."""

    x: float
    y: float
    metrics: dict[str, CompiledMetrics]

    def fidelity_improvement(self, baseline: str) -> float:
        """Atomique fidelity / baseline fidelity (Z axis of row 2)."""
        ours = self.metrics["Atomique"].total_fidelity
        theirs = self.metrics[baseline].total_fidelity
        return max(ours, 1e-12) / max(theirs, 1e-12)


def _evaluate(circuit, seed: int) -> dict[str, CompiledMetrics]:
    out: dict[str, CompiledMetrics] = {}
    for arch in SWEEP_ARCHS:
        raa = raa_for(circuit) if arch == "Atomique" else None
        out[arch] = compile_on(arch, circuit, raa=raa, seed=seed)
    return out


def run_generic_sweep(
    num_qubits: int = 40,
    gates_per_qubit: list[float] | None = None,
    degrees: list[float] | None = None,
    seed: int = 7,
) -> list[SweepCell]:
    """Fig. 15 grid (paper: gates/qubit 2-26, degree 1-7)."""
    gpqs = gates_per_qubit if gates_per_qubit is not None else [2, 10, 18, 26]
    degs = degrees if degrees is not None else [1, 3, 5, 7]
    cells: list[SweepCell] = []
    for g in gpqs:
        for d in degs:
            circ = random_circuit(num_qubits, g, d, seed=seed)
            cells.append(SweepCell(x=g, y=d, metrics=_evaluate(circ, seed)))
    return cells


def run_qaoa_sweep(
    qubit_numbers: list[int] | None = None,
    degrees: list[int] | None = None,
    seed: int = 7,
) -> list[SweepCell]:
    """Fig. 16 grid (paper: 10-100 qubits, degree 1-7)."""
    ns = qubit_numbers if qubit_numbers is not None else [10, 40, 80]
    degs = degrees if degrees is not None else [3, 5, 7]
    cells: list[SweepCell] = []
    for n in ns:
        for d in degs:
            if d >= n or (n * d) % 2:
                continue
            circ = qaoa_regular(n, d, seed=seed)
            cells.append(SweepCell(x=n, y=d, metrics=_evaluate(circ, seed)))
    return cells


def run_qsim_sweep(
    qubit_numbers: list[int] | None = None,
    non_identity_probs: list[float] | None = None,
    seed: int = 7,
) -> list[SweepCell]:
    """Fig. 17 grid (paper: 10-100 qubits, p(non-I) 0.1-0.7)."""
    ns = qubit_numbers if qubit_numbers is not None else [10, 40, 80]
    ps = non_identity_probs if non_identity_probs is not None else [0.1, 0.4, 0.7]
    cells: list[SweepCell] = []
    for n in ns:
        for p in ps:
            circ = qsim_random(n, non_identity_prob=p, seed=seed)
            cells.append(SweepCell(x=n, y=p, metrics=_evaluate(circ, seed)))
    return cells
