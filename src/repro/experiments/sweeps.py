"""Figs. 15-17: circuit-characteristic sweeps.

* Fig. 15 — random generic circuits at 40 qubits, sweeping *2Q gates per
  qubit* x *degree per qubit*;
* Fig. 16 — regular-graph QAOA, sweeping qubit number x graph degree;
* Fig. 17 — random QSim, sweeping qubit number x non-I probability.

Each cell compiles on Atomique, FAA-Rectangular, and FAA-Triangular and
reports 2Q count plus the *fidelity improvement* of Atomique over each FAA.
Expected shape: Atomique's advantage grows with degree (locality loss) and
with circuit volume; FAA wins slightly on small local circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import random_circuit
from ..generators.qaoa import qaoa_regular
from ..generators.qsim import qsim_random
from .batch import CompileJob, compile_many
from .common import raa_for

SWEEP_ARCHS = ["FAA-Rectangular", "FAA-Triangular", "Atomique"]


@dataclass
class SweepCell:
    """One (x, y) grid point of a sweep figure."""

    x: float
    y: float
    metrics: dict[str, CompiledMetrics]

    def fidelity_improvement(self, baseline: str) -> float:
        """Atomique fidelity / baseline fidelity (Z axis of row 2)."""
        ours = self.metrics["Atomique"].total_fidelity
        theirs = self.metrics[baseline].total_fidelity
        return max(ours, 1e-12) / max(theirs, 1e-12)


def _evaluate_grid(
    grid: list[tuple[float, float, QuantumCircuit]], seed: int, workers: int
) -> list[SweepCell]:
    """Compile every (cell, architecture) pair through the batch driver."""
    jobs = [
        CompileJob(
            arch,
            circ,
            CompileOptions(
                raa=raa_for(circ) if arch == "Atomique" else None, seed=seed
            ),
        )
        for _, _, circ in grid
        for arch in SWEEP_ARCHS
    ]
    metrics = compile_many(jobs, workers=workers)
    cells: list[SweepCell] = []
    for i, (x, y, _) in enumerate(grid):
        base = i * len(SWEEP_ARCHS)
        cells.append(
            SweepCell(
                x=x,
                y=y,
                metrics={
                    arch: metrics[base + j]
                    for j, arch in enumerate(SWEEP_ARCHS)
                },
            )
        )
    return cells


def run_generic_sweep(
    num_qubits: int = 40,
    gates_per_qubit: list[float] | None = None,
    degrees: list[float] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> list[SweepCell]:
    """Fig. 15 grid (paper: gates/qubit 2-26, degree 1-7)."""
    gpqs = gates_per_qubit if gates_per_qubit is not None else [2, 10, 18, 26]
    degs = degrees if degrees is not None else [1, 3, 5, 7]
    grid = [
        (g, d, random_circuit(num_qubits, g, d, seed=seed))
        for g in gpqs
        for d in degs
    ]
    return _evaluate_grid(grid, seed, workers)


def run_qaoa_sweep(
    qubit_numbers: list[int] | None = None,
    degrees: list[int] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> list[SweepCell]:
    """Fig. 16 grid (paper: 10-100 qubits, degree 1-7)."""
    ns = qubit_numbers if qubit_numbers is not None else [10, 40, 80]
    degs = degrees if degrees is not None else [3, 5, 7]
    grid = [
        (n, d, qaoa_regular(n, d, seed=seed))
        for n in ns
        for d in degs
        if d < n and not (n * d) % 2
    ]
    return _evaluate_grid(grid, seed, workers)


def run_qsim_sweep(
    qubit_numbers: list[int] | None = None,
    non_identity_probs: list[float] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> list[SweepCell]:
    """Fig. 17 grid (paper: 10-100 qubits, p(non-I) 0.1-0.7)."""
    ns = qubit_numbers if qubit_numbers is not None else [10, 40, 80]
    ps = non_identity_probs if non_identity_probs is not None else [0.1, 0.4, 0.7]
    grid = [
        (n, p, qsim_random(n, non_identity_prob=p, seed=seed))
        for n in ns
        for p in ps
    ]
    return _evaluate_grid(grid, seed, workers)
