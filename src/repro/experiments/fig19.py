"""Fig. 19: Atomique vs Q-Pilot on QAOA and QSim workloads.

Expected shape: Q-Pilot achieves lower depth (flying ancillas parallelize
commuting interactions) but spends ~2-3x the two-qubit gates, and Atomique
ends up with higher overall fidelity — the better balance the paper claims.

Both compilers run through the registry/batch driver: the QSim workloads
use the ``Q-Pilot-QSim`` backend with the Pauli strings carried in
``CompileOptions.extra``, so the whole workload set is one job list with
``workers=N`` fan-out and the optional on-disk result cache.
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..generators.qaoa import qaoa_random, qaoa_regular
from ..generators.qsim import qsim_random, qsim_random_strings
from .batch import CompileJob, compile_many
from .common import raa_for


def run_qpilot_comparison(
    include_large: bool = False,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> dict[str, list[CompiledMetrics]]:
    """The Fig. 19 workload set (QSim-rand-100 only with ``include_large``)."""
    qaoa_jobs = [
        qaoa_random(10, seed=10),
        qaoa_random(20, seed=20),
        qaoa_regular(40, 5, seed=40),
    ]
    if include_large:
        qaoa_jobs.append(qaoa_regular(100, 6, seed=100))
    qsim_sizes = [10, 20] + ([40, 100] if include_large else [40])

    jobs: list[CompileJob] = []
    slots: list[str] = []
    for circ in qaoa_jobs:
        jobs.append(
            CompileJob("Atomique", circ, CompileOptions(raa=raa_for(circ)))
        )
        slots.append("Atomique")
        jobs.append(CompileJob("Q-Pilot", circ, CompileOptions(seed=seed)))
        slots.append("Q-Pilot")
    for n in qsim_sizes:
        circ = qsim_random(n, seed=n)
        jobs.append(
            CompileJob("Atomique", circ, CompileOptions(raa=raa_for(circ)))
        )
        slots.append("Atomique")
        jobs.append(
            CompileJob(
                "Q-Pilot-QSim",
                circ,
                CompileOptions(
                    seed=seed,
                    extra=(
                        ("qsim_strings", tuple(qsim_random_strings(n, seed=n))),
                    ),
                ),
            )
        )
        slots.append("Q-Pilot")

    metrics = compile_many(jobs, workers=workers, cache=cache)
    results: dict[str, list[CompiledMetrics]] = {"Atomique": [], "Q-Pilot": []}
    for slot, m in zip(slots, metrics):
        results[slot].append(m)
    return results
