"""Fig. 19: Atomique vs Q-Pilot on QAOA and QSim workloads.

Expected shape: Q-Pilot achieves lower depth (flying ancillas parallelize
commuting interactions) but spends ~2-3x the two-qubit gates, and Atomique
ends up with higher overall fidelity — the better balance the paper claims.
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..baselines import (
    compile_on_atomique,
    compile_on_qpilot,
    compile_qsim_on_qpilot,
)
from ..generators.qaoa import qaoa_random, qaoa_regular
from ..generators.qsim import qsim_random, qsim_random_strings
from .common import raa_for


def run_qpilot_comparison(
    include_large: bool = False, seed: int = 7
) -> dict[str, list[CompiledMetrics]]:
    """The Fig. 19 workload set (QSim-rand-100 only with ``include_large``)."""
    qaoa_jobs = [
        qaoa_random(10, seed=10),
        qaoa_random(20, seed=20),
        qaoa_regular(40, 5, seed=40),
    ]
    if include_large:
        qaoa_jobs.append(qaoa_regular(100, 6, seed=100))
    qsim_sizes = [10, 20] + ([40, 100] if include_large else [40])

    results: dict[str, list[CompiledMetrics]] = {"Atomique": [], "Q-Pilot": []}
    for circ in qaoa_jobs:
        results["Atomique"].append(compile_on_atomique(circ, raa_for(circ)))
        results["Q-Pilot"].append(compile_on_qpilot(circ, seed=seed))
    for n in qsim_sizes:
        circ = qsim_random(n, seed=n)
        results["Atomique"].append(compile_on_atomique(circ, raa_for(circ)))
        results["Q-Pilot"].append(
            compile_qsim_on_qpilot(
                n, qsim_random_strings(n, seed=n), name=circ.name, seed=seed
            )
        )
    return results
