"""Fig. 23 (heterogeneous AOD sizes) and Fig. 24 (overlap under pressure).

Fig. 23: uniform 8x8 arrays vs a 10x10 SLM with 8x8 + 6x6 AODs.  Expected:
varied sizes give the mapper more freedom — fewer 2Q gates, less depth and
time, longer moves.

Fig. 24: 100 logical qubits on arrays from 6x6 (108 traps — nearly full) up
to 10x10 (300 traps).  Expected: smaller arrays force many constraint-3
(overlap) rejections, inflating depth and execution time; larger AODs
reduce overlaps; the effect is application-dependent.

Both runners route through :func:`~repro.experiments.batch.compile_many`
(``workers=N`` fans out over a process pool, ``cache=<dir>`` enables the
on-disk result cache; the serial default shares a pipeline prefix cache
across each circuit's configuration points).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..generators.algorithms import phase_code
from ..generators.qaoa import qaoa_random
from ..generators.qsim import qsim_random
from ..hardware.raa import ArrayShape, RAAArchitecture
from .common import run_architecture_grid


def default_benchmarks_100q() -> list[QuantumCircuit]:
    """QAOA-rand-100, QSim-rand-100, Phase-Code-100 (Figs. 23-24 set)."""
    qaoa = qaoa_random(100, edge_prob=0.05, seed=100)
    qaoa.name = "QAOA-rand-100"
    qsim = qsim_random(100, seed=100)
    qsim.name = "QSim-rand-100"
    pc = phase_code(100, rounds=2)
    pc.name = "Phase-Code-100"
    return [qaoa, qsim, pc]


@dataclass
class ConfigPoint:
    """One (configuration label, benchmark) sample."""

    label: str
    benchmark: str
    metrics: CompiledMetrics

    @property
    def overlaps(self) -> float:
        return self.metrics.extras.get("overlap_rejections", 0.0)


def _run_config_grid(
    configs: list[tuple[str, RAAArchitecture]],
    circuits: list[QuantumCircuit],
    seed: int,
    workers: int,
    cache: "str | None",
) -> list[ConfigPoint]:
    """Compile every (configuration, benchmark) cell via the batch driver."""
    return [
        ConfigPoint(label, bench, m)
        for label, bench, m in run_architecture_grid(
            configs, circuits, seed=seed, workers=workers, cache=cache
        )
    ]


def run_aod_sizes(
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[ConfigPoint]:
    """Fig. 23: uniform vs heterogeneous array sizes."""
    circuits = benchmarks if benchmarks is not None else default_benchmarks_100q()
    configs = [
        (
            "SLM 8x8, AODs 8x8+8x8",
            RAAArchitecture(
                slm_shape=ArrayShape(8, 8),
                aod_shapes=[ArrayShape(8, 8), ArrayShape(8, 8)],
            ),
        ),
        (
            "SLM 10x10, AODs 8x8+6x6",
            RAAArchitecture(
                slm_shape=ArrayShape(10, 10),
                aod_shapes=[ArrayShape(8, 8), ArrayShape(6, 6)],
            ),
        ),
    ]
    return _run_config_grid(configs, circuits, seed, workers, cache)


def run_overlap_pressure(
    sides: list[int] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[ConfigPoint]:
    """Fig. 24: logical qubits approaching physical capacity."""
    sides = sides if sides is not None else [6, 8, 10]
    circuits = benchmarks if benchmarks is not None else default_benchmarks_100q()
    configs = [
        (
            f"AOD {side}x{side}",
            RAAArchitecture.default(side=side, num_aods=2),
        )
        for side in sides
    ]
    return _run_config_grid(configs, circuits, seed, workers, cache)
