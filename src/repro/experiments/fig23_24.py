"""Fig. 23 (heterogeneous AOD sizes) and Fig. 24 (overlap under pressure).

Fig. 23: uniform 8x8 arrays vs a 10x10 SLM with 8x8 + 6x6 AODs.  Expected:
varied sizes give the mapper more freedom — fewer 2Q gates, less depth and
time, longer moves.

Fig. 24: 100 logical qubits on arrays from 6x6 (108 traps — nearly full) up
to 10x10 (300 traps).  Expected: smaller arrays force many constraint-3
(overlap) rejections, inflating depth and execution time; larger AODs
reduce overlaps; the effect is application-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..baselines import compile_on_atomique
from ..circuits.circuit import QuantumCircuit
from ..generators.algorithms import phase_code
from ..generators.qaoa import qaoa_random
from ..generators.qsim import qsim_random
from ..hardware.raa import ArrayShape, RAAArchitecture


def default_benchmarks_100q() -> list[QuantumCircuit]:
    """QAOA-rand-100, QSim-rand-100, Phase-Code-100 (Figs. 23-24 set)."""
    qaoa = qaoa_random(100, edge_prob=0.05, seed=100)
    qaoa.name = "QAOA-rand-100"
    qsim = qsim_random(100, seed=100)
    qsim.name = "QSim-rand-100"
    pc = phase_code(100, rounds=2)
    pc.name = "Phase-Code-100"
    return [qaoa, qsim, pc]


@dataclass
class ConfigPoint:
    """One (configuration label, benchmark) sample."""

    label: str
    benchmark: str
    metrics: CompiledMetrics

    @property
    def overlaps(self) -> float:
        return self.metrics.extras.get("overlap_rejections", 0.0)


def run_aod_sizes(
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
) -> list[ConfigPoint]:
    """Fig. 23: uniform vs heterogeneous array sizes."""
    circuits = benchmarks if benchmarks is not None else default_benchmarks_100q()
    configs = [
        (
            "SLM 8x8, AODs 8x8+8x8",
            RAAArchitecture(
                slm_shape=ArrayShape(8, 8),
                aod_shapes=[ArrayShape(8, 8), ArrayShape(8, 8)],
            ),
        ),
        (
            "SLM 10x10, AODs 8x8+6x6",
            RAAArchitecture(
                slm_shape=ArrayShape(10, 10),
                aod_shapes=[ArrayShape(8, 8), ArrayShape(6, 6)],
            ),
        ),
    ]
    points: list[ConfigPoint] = []
    for label, arch in configs:
        for circ in circuits:
            if circ.num_qubits > arch.total_capacity:
                continue
            m = compile_on_atomique(circ, arch)
            points.append(ConfigPoint(label, circ.name, m))
    return points


def run_overlap_pressure(
    sides: list[int] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
) -> list[ConfigPoint]:
    """Fig. 24: logical qubits approaching physical capacity."""
    sides = sides if sides is not None else [6, 8, 10]
    circuits = benchmarks if benchmarks is not None else default_benchmarks_100q()
    points: list[ConfigPoint] = []
    for side in sides:
        arch = RAAArchitecture.default(side=side, num_aods=2)
        for circ in circuits:
            if circ.num_qubits > arch.total_capacity:
                continue
            m = compile_on_atomique(circ, arch)
            points.append(ConfigPoint(f"AOD {side}x{side}", circ.name, m))
    return points
