"""Fig. 21 (technique breakdown) and Fig. 22 (constraint relaxation).

Fig. 21: replace each Atomique technique with a naive baseline and add them
back cumulatively on dense random circuits (26 gates/qubit).  Expected:
each technique improves fidelity; the array mapper and the high-parallelism
router contribute the most.

Fig. 22: relax each of the three hardware constraints independently on
QAOA-rand-100, QSim-rand-100, Phase-Code-200.  Expected: 2Q count unchanged
(constraints only affect scheduling); depth and execution time drop; move
distance rises; relaxing constraint 3 (overlap) helps the most.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..baselines import compile_on_atomique, run_ablation
from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import random_circuit
from ..core.compiler import AtomiqueConfig
from ..core.constraints import ConstraintToggles
from ..core.router import RouterConfig
from ..generators.algorithms import phase_code
from ..generators.qaoa import qaoa_random
from ..generators.qsim import qsim_random
from ..hardware.raa import RAAArchitecture
from .common import raa_for


def run_breakdown(
    num_qubits: int = 40,
    gates_per_qubit: float = 26.0,
    degree: float = 5.0,
    seed: int = 7,
) -> list[CompiledMetrics]:
    """Fig. 21: cumulative technique ablation on a dense random circuit."""
    circ = random_circuit(num_qubits, gates_per_qubit, degree, seed=seed)
    circ.name = f"arb-{num_qubits}q-{gates_per_qubit:g}gpq"
    return run_ablation(circ, raa_for(circ))


def pass_timing_rows(results: list[CompiledMetrics]) -> list[dict[str, object]]:
    """Compile-time companion to Fig. 21: per-pass wall-time per config.

    Reads the pipeline's own instrumentation (``extras['pass_seconds.*']``,
    recorded by :class:`~repro.core.pipeline.PassPipeline`) instead of
    re-deriving stage times from totals.
    """
    rows: list[dict[str, object]] = []
    prefix = "pass_seconds."
    for m in results:
        row: dict[str, object] = {"arch": m.architecture}
        for key, seconds in m.extras.items():
            if key.startswith(prefix):
                row[key[len(prefix):]] = round(seconds, 6)
        row["total_s"] = round(m.compile_seconds, 6)
        rows.append(row)
    return rows


RELAXATIONS: list[tuple[str, ConstraintToggles]] = [
    ("All Constraints", ConstraintToggles()),
    (
        "Relax C1 (individual addressing)",
        ConstraintToggles(no_unintended_interaction=False),
    ),
    ("Relax C2 (ordering)", ConstraintToggles(preserve_order=False)),
    ("Relax C3 (overlap)", ConstraintToggles(no_overlap=False)),
]


@dataclass
class RelaxationPoint:
    """One (relaxation, benchmark) sample."""

    relaxation: str
    benchmark: str
    metrics: CompiledMetrics


def default_relaxation_benchmarks() -> list[QuantumCircuit]:
    """QAOA-rand-100, QSim-rand-100, Phase-Code-200 (paper's Fig. 22 set)."""
    qaoa = qaoa_random(100, edge_prob=0.05, seed=100)
    qaoa.name = "QAOA-rand-100"
    qsim = qsim_random(100, seed=100)
    qsim.name = "QSim-rand-100"
    pc = phase_code(200, rounds=2)
    pc.name = "Phase-Code-200"
    return [qaoa, qsim, pc]


def run_constraint_relaxation(
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
) -> list[RelaxationPoint]:
    """Fig. 22: toggle each constraint off, one at a time."""
    circuits = (
        benchmarks if benchmarks is not None else default_relaxation_benchmarks()
    )
    points: list[RelaxationPoint] = []
    for circ in circuits:
        arch = raa_for(circ)
        for label, toggles in RELAXATIONS:
            cfg = AtomiqueConfig(seed=seed, router=RouterConfig(toggles=toggles))
            m = compile_on_atomique(circ, arch, cfg, label=label)
            points.append(RelaxationPoint(label, circ.name, m))
    return points
