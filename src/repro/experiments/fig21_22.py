"""Fig. 21 (technique breakdown) and Fig. 22 (constraint relaxation).

Fig. 21: replace each Atomique technique with a naive baseline and add them
back cumulatively on dense random circuits (26 gates/qubit).  Expected:
each technique improves fidelity; the array mapper and the high-parallelism
router contribute the most.

Fig. 22: relax each of the three hardware constraints independently on
QAOA-rand-100, QSim-rand-100, Phase-Code-200.  Expected: 2Q count unchanged
(constraints only affect scheduling); depth and execution time drop; move
distance rises; relaxing constraint 3 (overlap) helps the most.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..baselines import run_ablation
from ..baselines.registry import CompileOptions
from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import random_circuit
from ..core.compiler import AtomiqueConfig
from ..core.constraints import ConstraintToggles
from ..core.router import RouterConfig
from ..generators.algorithms import phase_code
from ..generators.qaoa import qaoa_random
from ..generators.qsim import qsim_random
from ..hardware.raa import RAAArchitecture
from .common import raa_for


def run_breakdown(
    num_qubits: int = 40,
    gates_per_qubit: float = 26.0,
    degree: float = 5.0,
    seed: int = 7,
    workers: int = 1,
) -> list[CompiledMetrics]:
    """Fig. 21: cumulative technique ablation on a dense random circuit."""
    circ = random_circuit(num_qubits, gates_per_qubit, degree, seed=seed)
    circ.name = f"arb-{num_qubits}q-{gates_per_qubit:g}gpq"
    return run_ablation(circ, raa_for(circ), workers=workers)


def pass_timing_rows(results: list[CompiledMetrics]) -> list[dict[str, object]]:
    """Compile-time companion to Fig. 21: per-pass wall-time per config.

    Reads the pipeline's own instrumentation (``extras['pass_seconds.*']``,
    recorded by :class:`~repro.core.pipeline.PassPipeline`) instead of
    re-deriving stage times from totals.
    """
    rows: list[dict[str, object]] = []
    prefix = "pass_seconds."
    for m in results:
        row: dict[str, object] = {"arch": m.architecture}
        for key, seconds in m.extras.items():
            if key.startswith(prefix):
                row[key[len(prefix):]] = round(seconds, 6)
        row["total_s"] = round(m.compile_seconds, 6)
        rows.append(row)
    return rows


RELAXATIONS: list[tuple[str, ConstraintToggles]] = [
    ("All Constraints", ConstraintToggles()),
    (
        "Relax C1 (individual addressing)",
        ConstraintToggles(no_unintended_interaction=False),
    ),
    ("Relax C2 (ordering)", ConstraintToggles(preserve_order=False)),
    ("Relax C3 (overlap)", ConstraintToggles(no_overlap=False)),
]


@dataclass
class RelaxationPoint:
    """One (relaxation, benchmark) sample."""

    relaxation: str
    benchmark: str
    metrics: CompiledMetrics


def default_relaxation_benchmarks() -> list[QuantumCircuit]:
    """QAOA-rand-100, QSim-rand-100, Phase-Code-200 (paper's Fig. 22 set)."""
    qaoa = qaoa_random(100, edge_prob=0.05, seed=100)
    qaoa.name = "QAOA-rand-100"
    qsim = qsim_random(100, seed=100)
    qsim.name = "QSim-rand-100"
    pc = phase_code(200, rounds=2)
    pc.name = "Phase-Code-200"
    return [qaoa, qsim, pc]


def run_constraint_relaxation(
    benchmarks: list[QuantumCircuit] | None = None,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> list[RelaxationPoint]:
    """Fig. 22: toggle each constraint off, one at a time.

    Jobs route through :func:`~repro.experiments.batch.compile_many`
    (``workers=N`` fans out, ``cache=<dir>`` enables the on-disk result
    cache).  In the serial default every benchmark's four relaxations share
    one :class:`~repro.core.pipeline.PipelineCache`: the router toggles sit
    *after* SWAP insertion in the pipeline, so SABRE runs once per circuit
    instead of once per relaxation.
    """
    from ..core.pipeline import PipelineCache
    from .batch import CompileJob, compile_many

    circuits = (
        benchmarks if benchmarks is not None else default_relaxation_benchmarks()
    )
    jobs: list[CompileJob] = []
    labels: list[tuple[str, str]] = []
    # One cache for the whole sweep: keys include the circuit fingerprint,
    # so sharing across benchmarks is safe and each still hits its prefix.
    prefix_cache = PipelineCache() if workers <= 1 else None
    for circ in circuits:
        arch = raa_for(circ)
        for label, toggles in RELAXATIONS:
            cfg = AtomiqueConfig(seed=seed, router=RouterConfig(toggles=toggles))
            jobs.append(
                CompileJob(
                    "Atomique",
                    circ,
                    CompileOptions(
                        raa=arch,
                        config=cfg,
                        seed=seed,
                        label=label,
                        pipeline_cache=prefix_cache,
                    ),
                )
            )
            labels.append((label, circ.name))
    metrics = compile_many(jobs, workers=workers, cache=cache)
    return [
        RelaxationPoint(label, bench, m)
        for (label, bench), m in zip(labels, metrics)
    ]
