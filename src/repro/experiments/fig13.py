"""Fig. 13 + Fig. 25: the main architecture comparison.

Compiles every benchmark of the main suite on all five architectures and
reports circuit depth (parallel 2Q layers), two-qubit gate count, fidelity —
and, for Fig. 25, the additional CNOTs caused by SWAP insertion.

Expected shape (paper): Atomique wins the geometric means of all three
metrics, with the largest margins on deep high-connectivity circuits
(QSim-rand, QAOA-rand) and near-parity on small local circuits (H2).
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics, geometric_mean
from ..baselines.registry import CompileOptions
from ..generators.suite import BenchmarkSpec, main_suite
from .batch import CompileJob, ResultCache, compile_many
from .common import ARCHITECTURES, raa_for


def run_main_comparison(
    benchmarks: list[BenchmarkSpec] | None = None,
    architectures: list[str] | None = None,
    seed: int = 7,
    workers: int = 1,
    cache: ResultCache | str | None = None,
) -> dict[str, list[CompiledMetrics]]:
    """Compile the suite everywhere; returns arch -> per-benchmark metrics.

    ``workers > 1`` fans the (benchmark x architecture) job list out over a
    process pool; all deterministic metrics are identical to the serial
    path (wall-clock timing fields vary with contention).
    """
    specs = benchmarks if benchmarks is not None else main_suite()
    archs = architectures if architectures is not None else list(ARCHITECTURES)
    jobs: list[CompileJob] = []
    for spec in specs:
        circuit = spec.build()
        for arch in archs:
            raa = raa_for(circuit) if arch == "Atomique" else None
            jobs.append(
                CompileJob(arch, circuit, CompileOptions(raa=raa, seed=seed))
            )
    metrics = compile_many(jobs, workers=workers, cache=cache)
    results: dict[str, list[CompiledMetrics]] = {a: [] for a in archs}
    for job, m in zip(jobs, metrics):
        results[job.backend].append(m)
    return results


def summarize(results: dict[str, list[CompiledMetrics]]) -> list[dict[str, object]]:
    """Per-architecture geometric means of the three headline metrics."""
    rows: list[dict[str, object]] = []
    for arch, ms in results.items():
        rows.append(
            {
                "arch": arch,
                "gmean_depth": round(geometric_mean([m.depth for m in ms]), 1),
                "gmean_2q": round(
                    geometric_mean([m.num_2q_gates for m in ms]), 1
                ),
                "gmean_fidelity": round(
                    geometric_mean([m.total_fidelity for m in ms], floor=1e-6), 4
                ),
                "gmean_add_cnot": round(
                    geometric_mean(
                        [max(m.additional_cnots, 1) for m in ms]
                    ),
                    1,
                ),
            }
        )
    return rows


def improvement_over(
    results: dict[str, list[CompiledMetrics]], ours: str = "Atomique"
) -> dict[str, dict[str, float]]:
    """Per-baseline reduction factors: baseline_gmean / atomique_gmean."""
    our = results[ours]
    out: dict[str, dict[str, float]] = {}
    g2q = geometric_mean([m.num_2q_gates for m in our])
    gdepth = geometric_mean([m.depth for m in our])
    for arch, ms in results.items():
        if arch == ours:
            continue
        out[arch] = {
            "2q_reduction": geometric_mean([m.num_2q_gates for m in ms]) / g2q,
            "depth_reduction": geometric_mean([m.depth for m in ms]) / gdepth,
        }
    return out
