"""Fig. 18: sensitivity analysis over six hardware parameters.

Top row: fidelity of BV-70, QSim-rand-20, QAOA-regu5-40 on Atomique,
FAA-Rectangular, FAA-Triangular as one parameter varies.
Bottom row: ``-log(fidelity)`` error breakdown for BV-70 on Atomique.

Expected shapes (paper):
(a) time-per-move — too fast heats/loses atoms, too slow decoheres;
    optimum near 300 us;
(b) move speed — the same data on an inverted axis;
(c) atom distance — heating grows with D^2; cooling caps it but costs;
(d) n_vib cooling threshold — low thresholds over-cool (2Q cost), high
    thresholds lose atoms; a 12-25 window is optimal;
(e) coherence time — RAA gains more from longer T1 than FAA (movement time
    dominates); crossover around T1 ~ 1 s;
(f) 2Q gate fidelity — above ~0.9999 the FAAs win (SWAPs become cheap
    relative to movement decoherence).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..circuits.circuit import QuantumCircuit
from ..generators import bernstein_vazirani, qaoa_regular, qsim_random
from ..hardware.parameters import HardwareParams, neutral_atom_params
from .batch import CompileJob, compile_many
from .common import raa_for

SENSITIVITY_PARAMETERS = (
    "t_per_move",
    "atom_distance",
    "n_vib_cooling_threshold",
    "t1",
    "f_2q",
)

#: Paper sweep ranges per panel.
DEFAULT_VALUES: dict[str, list[float]] = {
    "t_per_move": [100e-6, 200e-6, 300e-6, 500e-6, 1000e-6],
    "atom_distance": [5e-6, 15e-6, 30e-6, 60e-6],
    "n_vib_cooling_threshold": [5, 10, 15, 20, 25, 30],
    "t1": [0.1, 1.0, 15.0, 100.0],
    "f_2q": [0.99, 0.9975, 0.999, 0.9999],
}


def default_benchmarks() -> list[QuantumCircuit]:
    """The three Fig. 18 circuits."""
    return [
        bernstein_vazirani(70),
        qsim_random(20, seed=20),
        qaoa_regular(40, 5, seed=40),
    ]


def params_for(parameter: str, value: float) -> HardwareParams:
    """Table I parameters with one knob overridden.

    ``atom_distance`` below 6 Rydberg radii also shrinks the Rydberg radius
    proportionally so the parking geometry stays valid (the paper's sweep
    only exercises the heating D^2 scaling).
    """
    base = neutral_atom_params()
    if parameter == "atom_distance":
        overrides: dict[str, float] = {"atom_distance": value}
        if value < 6.0 * base.rydberg_radius:
            overrides["rydberg_radius"] = value / 6.0
        return base.with_overrides(**overrides)
    if parameter not in SENSITIVITY_PARAMETERS:
        raise ValueError(f"unknown sensitivity parameter {parameter!r}")
    return base.with_overrides(**{parameter: value})


@dataclass
class SensitivityPoint:
    """One (parameter value, benchmark, architecture) sample."""

    parameter: str
    value: float
    benchmark: str
    architecture: str
    metrics: CompiledMetrics

    @property
    def fidelity(self) -> float:
        return self.metrics.total_fidelity


def run_sensitivity(
    parameter: str,
    values: list[float] | None = None,
    benchmarks: list[QuantumCircuit] | None = None,
    architectures: list[str] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> list[SensitivityPoint]:
    """Sweep one hardware parameter across benchmarks and architectures."""
    values = values if values is not None else DEFAULT_VALUES[parameter]
    circuits = benchmarks if benchmarks is not None else default_benchmarks()
    archs = architectures or ["FAA-Rectangular", "FAA-Triangular", "Atomique"]
    jobs: list[CompileJob] = []
    meta: list[tuple[float, str, str]] = []
    for value in values:
        params = params_for(parameter, value)
        for circuit in circuits:
            for arch in archs:
                # The Atomique backend rebuilds the RAA (and cooling
                # threshold) from a params override; the fixed-atom
                # baselines consume params directly.
                raa = raa_for(circuit) if arch == "Atomique" else None
                options = CompileOptions(raa=raa, params=params, seed=seed)
                jobs.append(CompileJob(arch, circuit, options))
                meta.append((value, circuit.name, arch))
    metrics = compile_many(jobs, workers=workers)
    return [
        SensitivityPoint(parameter, value, benchmark, arch, m)
        for (value, benchmark, arch), m in zip(meta, metrics)
    ]


def error_breakdown(
    parameter: str,
    values: list[float] | None = None,
    benchmark: QuantumCircuit | None = None,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Fig. 18 bottom row: -log(F) per error source for BV-70 on Atomique."""
    circuit = benchmark if benchmark is not None else bernstein_vazirani(70)
    points = run_sensitivity(
        parameter, values, benchmarks=[circuit], architectures=["Atomique"], seed=seed
    )
    rows: list[dict[str, object]] = []
    for p in points:
        row: dict[str, object] = {"value": p.value}
        row.update(p.metrics.fidelity.breakdown())
        rows.append(row)
    return rows
