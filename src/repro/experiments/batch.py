"""Parallel batch compilation: fan a job list out across worker processes.

``compile_many(jobs, workers=N)`` runs each :class:`CompileJob` through the
backend registry, optionally on a ``concurrent.futures`` process pool.
Results always come back in job order, and every job carries its own seed
inside its :class:`~repro.baselines.registry.CompileOptions`, so every
deterministic metric (gate counts, depth, fidelity, extras) is identical
regardless of worker count or scheduling.  Wall-clock fields
(``compile_seconds``, the ``pass_seconds.*`` extras) are measurements, not
outputs: they vary with CPU contention and come back verbatim from the
run that populated a cache entry.

An optional on-disk :class:`ResultCache` keyed by a circuit/config hash
skips recompiles across runs — handy for the sweep harnesses, which re-hit
the same (circuit, backend, config) cells while iterating on plots.

``prefix_cache`` additionally shares *pipeline prefix* artifacts (lowering,
array mapping, SABRE, atom placement) across the jobs of a run: a
:class:`~repro.core.pipeline.PipelineCache` in the serial path, or a
directory (→ :class:`~repro.core.pipeline.DiskPipelineCache`) that worker
processes — and entirely separate runs — share on disk.  The compile
service (:mod:`repro.service`) builds its sharded workers on the same
initializer/run-job machinery exported here.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, cast

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions, get_backend
from ..circuits.circuit import QuantumCircuit
from ..core.pipeline import DiskPipelineCache, PipelineCache

#: Bump when CompiledMetrics or the key layout changes shape.
CACHE_VERSION = 2


@dataclass(frozen=True)
class CompileJob:
    """One unit of batch work: a backend name, a circuit, and its options."""

    backend: str
    circuit: QuantumCircuit
    options: CompileOptions = field(default_factory=CompileOptions)

    def cache_key(self) -> str:
        """Stable hash over backend, circuit contents, and every option."""
        h = hashlib.sha256()
        h.update(f"v{CACHE_VERSION}|{self.backend}|{self.circuit.name}|".encode())
        h.update(f"{self.circuit.num_qubits}|".encode())
        for g in self.circuit.gates:
            h.update(
                f"{g.name}{tuple(g.qubits)}{tuple(g.params)};".encode()
            )
        opts = self.options
        h.update(
            f"|{opts.seed}|{opts.config!r}|{opts.raa!r}|{opts.params!r}"
            f"|{opts.label!r}|{opts.extra!r}".encode()
        )
        return h.hexdigest()


class ResultCache:
    """Pickle-per-entry on-disk cache of :class:`CompiledMetrics`."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job: CompileJob) -> Path:
        return self.directory / f"{job.cache_key()}.pkl"

    def get(self, job: CompileJob) -> CompiledMetrics | None:
        path = self._path(job)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,  # entry pickled before a module move/rename
        ):
            return None  # corrupt or stale entry: recompile

    def put(self, job: CompileJob, metrics: CompiledMetrics) -> None:
        # Atomic write: concurrent runs sharing the directory must never
        # observe a torn entry.  A write failure (disk full, directory
        # gone read-only) degrades to an uncached entry — the cache must
        # never fail a compile that already succeeded.
        path = self._path(job)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(metrics, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


#: Per-worker-process pipeline prefix cache, installed by the pool
#: initializer.  Module-global so it survives across the jobs a worker runs.
_WORKER_PREFIX_CACHE: PipelineCache | None = None


def init_worker_prefix_cache(
    directory: str | None = None, fault_spec: Any = None
) -> None:
    """Process-pool initializer: build this worker's prefix cache once.

    With a *directory*, the worker gets a :class:`DiskPipelineCache` over
    it — every worker (and every later run pointed at the same directory)
    shares the persisted artifacts.  Without one, jobs run uncached unless
    they carry their own ``pipeline_cache``.

    *fault_spec* (a :meth:`FaultPlan.to_spec` dict) arms the chaos
    harness's fault-injection plan inside the worker process; absent one,
    the ``REPRO_FAULTS`` environment variable (inherited from the parent)
    is honored.  Outside chaos tests both are unset and this is a no-op.
    """
    global _WORKER_PREFIX_CACHE
    _WORKER_PREFIX_CACHE = (
        DiskPipelineCache(directory) if directory is not None else None
    )
    # Imported lazily: batch is a core experiments module and must not pay
    # a service import (or create a cycle) outside worker-pool boots.
    from ..service import faults

    if fault_spec is not None:
        faults.install(fault_spec)
    else:
        faults.install_from_env()


def with_worker_prefix_cache(job: CompileJob) -> CompileJob:
    """Inject the worker's prefix cache into a job that has none."""
    if _WORKER_PREFIX_CACHE is not None and job.options.pipeline_cache is None:
        return replace(
            job,
            options=replace(job.options, pipeline_cache=_WORKER_PREFIX_CACHE),
        )
    return job


def _run_job(job: CompileJob) -> CompiledMetrics:
    # Module-level so ProcessPoolExecutor can pickle it into workers.
    job = with_worker_prefix_cache(job)
    return get_backend(job.backend).compile(job.circuit, job.options)


def compile_many(
    jobs: Iterable[CompileJob],
    workers: int = 1,
    cache: ResultCache | str | Path | None = None,
    prefix_cache: PipelineCache | str | Path | None = None,
) -> list[CompiledMetrics]:
    """Compile every job, in order; ``workers > 1`` uses a process pool.

    ``prefix_cache`` shares pipeline prefix artifacts across jobs (and, for
    a directory or :class:`DiskPipelineCache`, across runs).  Jobs that
    already carry their own ``options.pipeline_cache`` keep it.  Like
    per-job caches, a plain in-memory :class:`PipelineCache` cannot cross
    a process boundary: with ``workers > 1`` it is ignored — pass a
    directory (or :class:`DiskPipelineCache`) to share prefixes with
    worker processes.
    """
    jobs = list(jobs)
    store = (
        cache
        if isinstance(cache, ResultCache) or cache is None
        else ResultCache(cache)
    )
    prefix_dir: str | None = None
    if isinstance(prefix_cache, (str, Path)):
        prefix_cache = DiskPipelineCache(prefix_cache)
    if isinstance(prefix_cache, DiskPipelineCache):
        prefix_dir = str(prefix_cache.directory)

    results: list[CompiledMetrics | None] = [None] * len(jobs)
    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = store.get(job) if store is not None else None
        if hit is not None:
            results[i] = hit
        else:
            pending.append(i)

    if workers <= 1 or len(pending) <= 1:
        for i in pending:
            job = jobs[i]
            if (
                isinstance(prefix_cache, PipelineCache)
                and job.options.pipeline_cache is None
            ):
                job = replace(
                    job,
                    options=replace(job.options, pipeline_cache=prefix_cache),
                )
            results[i] = _run_job(job)
    else:
        # An in-process PipelineCache cannot cross a process boundary (and
        # shipping its contents would defeat the point); strip it so the
        # jobs stay picklable.  Serial runs above keep it and share hits.
        # A disk-backed prefix cache *can* cross: each worker rebuilds its
        # own DiskPipelineCache over the shared directory (atomic writes
        # make concurrent sharing safe).
        shipped = [
            replace(jobs[i], options=replace(jobs[i].options, pipeline_cache=None))
            if jobs[i].options.pipeline_cache is not None
            else jobs[i]
            for i in pending
        ]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=init_worker_prefix_cache,
            initargs=(prefix_dir,),
        ) as pool:
            computed = pool.map(_run_job, shipped)
            for i, metrics in zip(pending, computed):
                results[i] = metrics

    if store is not None:
        for i in pending:
            store.put(jobs[i], results[i])
    return cast("list[CompiledMetrics]", results)  # every slot is filled
