"""Table II (benchmark statistics) and Table III (Geyser pulse counts)."""

from __future__ import annotations

from ..baselines.atomique_adapter import compile_on_atomique
from ..baselines.geyser import atomique_pulse_count, geyser_pulse_count
from ..generators.suite import BenchmarkSpec, main_suite, small_suite
from .common import raa_for


def benchmark_statistics(
    specs: list[BenchmarkSpec] | None = None,
) -> list[dict[str, object]]:
    """Table II rows: qubits, gate counts, 2Q-per-qubit, degree-per-qubit."""
    specs = specs if specs is not None else main_suite() + small_suite()
    rows: list[dict[str, object]] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.name in seen:
            continue
        seen.add(spec.name)
        circ = spec.build()
        rows.append(
            {
                "name": spec.name,
                "type": spec.category,
                "qubits": circ.num_qubits,
                "2q_gates": circ.num_2q_gates,
                "1q_gates": circ.num_1q_gates,
                "2q_per_q": round(circ.two_qubit_gates_per_qubit(), 1),
                "degree_per_q": round(circ.degree_per_qubit(), 1),
            }
        )
    return rows


#: Table III benchmark names.
TABLE3_BENCHMARKS = ["HHL-7", "Mermin-Bell-10", "QV-32", "BV-50", "BV-70"]


def pulse_comparison(
    benchmark_names: list[str] | None = None,
) -> list[dict[str, object]]:
    """Table III rows: Geyser pulse count vs Atomique pulse count.

    Expected shape: Atomique uses up to ~6.5x fewer pulses, with the
    largest wins on sparse circuits (BV) where Geyser still pays a full
    3-qubit block per neighbourhood.
    """
    from ..generators.suite import find

    names = benchmark_names if benchmark_names is not None else TABLE3_BENCHMARKS
    rows: list[dict[str, object]] = []
    for name in names:
        circ = find(name).build()
        geyser = geyser_pulse_count(circ)
        m = compile_on_atomique(circ, raa_for(circ))
        atomique = atomique_pulse_count(m.num_2q_gates)
        rows.append(
            {
                "benchmark": name,
                "geyser_pulses": geyser,
                "atomique_pulses": atomique,
                "reduction": round(geyser / max(atomique, 1), 2),
            }
        )
    return rows
