"""Per-figure/table experiment harnesses reproducing the paper's evaluation."""

from .batch import CompileJob, ResultCache, compile_many
from .common import ARCHITECTURES, compile_on, gmean_row, raa_for
from .fig13 import improvement_over, run_main_comparison, summarize
from .fig14 import run_solver_comparison, speedup_summary
from .fig18 import (
    DEFAULT_VALUES,
    SENSITIVITY_PARAMETERS,
    error_breakdown,
    params_for,
    run_sensitivity,
)
from .fig19 import run_qpilot_comparison
from .fig20 import run_array_size, run_aspect_ratio, run_num_aods
from .fig21_22 import pass_timing_rows, run_breakdown, run_constraint_relaxation
from .fig23_24 import run_aod_sizes, run_overlap_pressure
from .sweeps import run_generic_sweep, run_qaoa_sweep, run_qsim_sweep
from .tables import benchmark_statistics, pulse_comparison

__all__ = [
    "ARCHITECTURES",
    "CompileJob",
    "DEFAULT_VALUES",
    "ResultCache",
    "SENSITIVITY_PARAMETERS",
    "benchmark_statistics",
    "compile_many",
    "compile_on",
    "error_breakdown",
    "gmean_row",
    "improvement_over",
    "params_for",
    "pass_timing_rows",
    "pulse_comparison",
    "raa_for",
    "run_aod_sizes",
    "run_array_size",
    "run_aspect_ratio",
    "run_breakdown",
    "run_constraint_relaxation",
    "run_generic_sweep",
    "run_main_comparison",
    "run_num_aods",
    "run_overlap_pressure",
    "run_qaoa_sweep",
    "run_qpilot_comparison",
    "run_qsim_sweep",
    "run_sensitivity",
    "run_solver_comparison",
    "speedup_summary",
    "summarize",
]
