"""Fig. 14: Atomique vs the solver-based compilers (Tan-Solver, Tan-IterP).

Small circuits only (the solver is exponential).  Expected shape: all three
reach similar fidelity; Atomique compiles orders of magnitude faster, with
the gap widening with qubit count (exhaustive enumeration is Theta(2^n)).

All three compilers run through the registry/batch driver
(:func:`~repro.experiments.batch.compile_many`), so the harness takes
``workers=N`` for process-pool fan-out and ``cache=<dir>`` for the on-disk
result cache.  Tan-Solver's qubit budget is deterministic, so jobs past it
are filtered up front (matching the paper's Table II timeout column)
instead of raising mid-pool.
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..baselines.solver import solver_architecture, solver_times_out
from ..core.compiler import AtomiqueConfig
from ..generators.suite import BenchmarkSpec, small_suite
from .batch import CompileJob, compile_many


def run_solver_comparison(
    benchmarks: list[BenchmarkSpec] | None = None,
    solver_qubit_limit: int = 14,
    seed: int = 7,
    workers: int = 1,
    cache: "str | None" = None,
) -> dict[str, list[CompiledMetrics]]:
    """Compile the small suite with all three compilers.

    ``solver_qubit_limit`` bounds Tan-Solver's exhaustive search (the paper
    imposed a 24 h timeout; we default to 14 qubits so the harness finishes
    in seconds — raise it to 20 to reproduce the full figure).  Circuits
    past the limit are recorded as timeouts by omission, exactly as the
    exception path used to.

    Atomique runs with a single AOD on the same 16x16 arrays, matching the
    paper's "for a fair comparison, Atomique employs a single AOD".
    """
    specs = benchmarks if benchmarks is not None else small_suite()
    circuits = [spec.build() for spec in specs]

    jobs: list[CompileJob] = []
    slots: list[str] = []
    for circuit in circuits:
        if not solver_times_out(circuit, solver_qubit_limit):
            jobs.append(
                CompileJob(
                    "Tan-Solver",
                    circuit,
                    CompileOptions(
                        raa=solver_architecture(),
                        seed=seed,
                        extra=(("solver_qubit_limit", solver_qubit_limit),),
                    ),
                )
            )
            slots.append("Tan-Solver")
        jobs.append(
            CompileJob(
                "Tan-IterP",
                circuit,
                CompileOptions(raa=solver_architecture(), seed=seed),
            )
        )
        slots.append("Tan-IterP")
        jobs.append(
            CompileJob(
                "Atomique",
                circuit,
                CompileOptions(
                    raa=solver_architecture(),
                    config=AtomiqueConfig(seed=seed),
                    seed=seed,
                ),
            )
        )
        slots.append("Atomique")

    metrics = compile_many(jobs, workers=workers, cache=cache)
    results: dict[str, list[CompiledMetrics]] = {
        "Tan-Solver": [],
        "Tan-IterP": [],
        "Atomique": [],
    }
    for slot, m in zip(slots, metrics):
        results[slot].append(m)
    return results


def speedup_summary(results: dict[str, list[CompiledMetrics]]) -> dict[str, float]:
    """Mean compile-time ratio of each solver vs Atomique on shared rows."""
    out: dict[str, float] = {}
    atom = {m.benchmark: m for m in results["Atomique"]}
    for name in ("Tan-Solver", "Tan-IterP"):
        ratios = [
            m.compile_seconds / max(atom[m.benchmark].compile_seconds, 1e-9)
            for m in results[name]
            if m.benchmark in atom
        ]
        out[name] = sum(ratios) / len(ratios) if ratios else float("nan")
    return out
