"""Fig. 14: Atomique vs the solver-based compilers (Tan-Solver, Tan-IterP).

Small circuits only (the solver is exponential).  Expected shape: all three
reach similar fidelity; Atomique compiles orders of magnitude faster, with
the gap widening with qubit count (exhaustive enumeration is Theta(2^n)).
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..baselines.atomique_adapter import compile_on_atomique
from ..baselines.solver import (
    SolverTimeout,
    solver_architecture,
    tan_iterp_compile,
    tan_solver_compile,
)
from ..core.compiler import AtomiqueConfig
from ..generators.suite import BenchmarkSpec, small_suite


def run_solver_comparison(
    benchmarks: list[BenchmarkSpec] | None = None,
    solver_qubit_limit: int = 14,
    seed: int = 7,
) -> dict[str, list[CompiledMetrics]]:
    """Compile the small suite with all three compilers.

    ``solver_qubit_limit`` bounds Tan-Solver's exhaustive search (the paper
    imposed a 24 h timeout; we default to 14 qubits so the harness finishes
    in seconds — raise it to 20 to reproduce the full figure).

    Atomique runs with a single AOD on the same 16x16 arrays, matching the
    paper's "for a fair comparison, Atomique employs a single AOD".
    """
    specs = benchmarks if benchmarks is not None else small_suite()
    results: dict[str, list[CompiledMetrics]] = {
        "Tan-Solver": [],
        "Tan-IterP": [],
        "Atomique": [],
    }
    for spec in specs:
        circuit = spec.build()
        arch = solver_architecture()
        try:
            results["Tan-Solver"].append(
                tan_solver_compile(
                    circuit, arch, timeout_qubits=solver_qubit_limit, seed=seed
                )
            )
        except SolverTimeout:
            pass  # recorded as a timeout, matching Table II's last column
        results["Tan-IterP"].append(tan_iterp_compile(circuit, arch, seed=seed))
        results["Atomique"].append(
            compile_on_atomique(
                circuit,
                solver_architecture(),
                AtomiqueConfig(seed=seed),
            )
        )
    return results


def speedup_summary(results: dict[str, list[CompiledMetrics]]) -> dict[str, float]:
    """Mean compile-time ratio of each solver vs Atomique on shared rows."""
    out: dict[str, float] = {}
    atom = {m.benchmark: m for m in results["Atomique"]}
    for name in ("Tan-Solver", "Tan-IterP"):
        ratios = [
            m.compile_seconds / max(atom[m.benchmark].compile_seconds, 1e-9)
            for m in results[name]
            if m.benchmark in atom
        ]
        out[name] = sum(ratios) / len(ratios) if ratios else float("nan")
    return out
