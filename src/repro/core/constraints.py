"""The three RAA movement constraints (Figs. 9-11) and the stage model.

During one routing stage each AOD array carries a *partial* map from its
rows/columns onto interaction coordinates expressed in site units (the SLM
grid has pitch = ``atom_distance`` and its traps sit at integer coordinates).
An AOD atom is **engaged** when both its row and its column are mapped; it
then lands at ``(rowmap[r], colmap[c])``.

Interaction coordinates live on the half-integer lattice: AOD-SLM gates meet
at the SLM atom's integer position; AOD-AOD gates may also meet at
half-offset points, which are 3 Rydberg radii from the nearest SLM trap
(pitch >= 6 r_b, Sec. IV) and therefore safely out of blockade range of any
fixed atom.

Disengaged lines park at per-AOD fractional offsets strictly between 0 and
0.5 (mod 1), so a parked atom can never coincide with an SLM trap, a
half-offset meeting point, or a parked atom of a different AOD; parked atoms
of the *same* AOD are separated by the array's own row/col pitch.  Hence
only *engaged* atoms can collide, and the constraint checks reduce to:

* **C1 (no unintended interaction, Fig. 9)** — every interaction point
  hosting two atoms hosts exactly one *scheduled* gate pair, and no point
  hosts three atoms.  SLM atoms always sit on their integer sites.
* **C2 (order preservation, Fig. 10)** — each AOD's row map and column map
  must be strictly increasing.
* **C3 (no overlap, Fig. 11)** — each AOD's row map and column map must be
  injective.

Each check can be relaxed independently (Fig. 22's ablation).

The constraint engine is **incremental**: every mutation goes through
:meth:`StagePlan.add`, which journals the entries it touched (so
:meth:`StagePlan.restore` pops the journal instead of deep-copying the whole
plan), keeps per-line sorted indices for O(log n) C2/C3 checks, and updates
a site-occupancy index so :meth:`StagePlan.is_legal` is an O(1) lookup
rather than a full :meth:`engaged_atoms` rebuild.  Mutating ``row_maps`` /
``col_maps`` directly bypasses these indexes; the authoritative full scans
(:meth:`engaged_atoms`, :meth:`violates_c1`) still see such edits.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..hardware.raa import AtomLocation, RAAArchitecture

#: Coordinates are snapped to this resolution before comparison.
_EPS = 1e-6

Site = tuple[float, float]


def parking_offset(aod: int) -> float:
    """Fractional parking offset of AOD *aod* (distinct per AOD, never 0/0.5)."""
    return 0.07 + 0.06 * aod


@dataclass(frozen=True)
class ConstraintToggles:
    """Which hardware constraints the router enforces (all on by default)."""

    no_unintended_interaction: bool = True  # constraint 1
    preserve_order: bool = True  # constraint 2
    no_overlap: bool = True  # constraint 3


def _snap(x: float) -> float:
    """Round to the comparison resolution."""
    return round(x / _EPS) * _EPS


def _snap_site(r: float, c: float) -> Site:
    """Snap both coordinates of a site to the comparison resolution.

    The single definition of the float-snapping discipline shared by
    :meth:`StagePlan.can_add`, :meth:`StagePlan.add`, and both
    :meth:`StagePlan.place_pair` paths, so occupancy keys cannot drift
    between them.
    """
    return (round(r / _EPS) * _EPS, round(c / _EPS) * _EPS)


#: Below this candidate count the scalar probe loop wins outright (PR 3
#: measured numpy slower than scalars at 2–8 entries), so the vectorized
#: batch probe only engages at or above it.
_VEC_MIN = 12

#: A per-axis digest run at most this long is probed by the exact scalar
#: loop directly — cheaper than building a numpy mask over all candidates.
_RUN_MAX = 8

#: memo-miss sentinel (``None`` is a valid cached probe result)
_MISS = object()


class _ProbeIndex:
    """Per-:class:`CandidateSet` feasibility digest over the snapped sites.

    Holds, per axis, the candidate coordinates sorted by value alongside
    the candidate indices in that order, plus (lazily) columnar numpy
    arrays in best-first order.  :meth:`StagePlan.place_pair` uses these to
    answer "can any site in this coordinate range satisfy this line
    requirement?" without touching the plan, and to select a sound
    *superset* of the candidates that can survive its silent
    pinned/C2-window rejects.  Selection never drops a candidate that
    could reach the C3 equality test (the ``overlap_blocked`` statistic)
    or the commit attempt: every pruned candidate fails a check the
    scalar loop rejects with a plain ``continue``.
    """

    __slots__ = ("vals", "order", "_rs", "_cs", "_coords", "_memo")

    def __init__(self, pairs: list[tuple[Site, Site]]) -> None:
        rs = [s[0] for _raw, s in pairs]
        cs = [s[1] for _raw, s in pairs]
        r_order = sorted(range(len(rs)), key=rs.__getitem__)
        c_order = sorted(range(len(cs)), key=cs.__getitem__)
        #: per-axis candidate coordinates sorted ascending
        self.vals = ([rs[i] for i in r_order], [cs[i] for i in c_order])
        #: per-axis candidate indices, parallel to ``vals``
        self.order = (r_order, c_order)
        self._rs = rs
        self._cs = cs
        self._coords: tuple[np.ndarray, np.ndarray] | None = None
        #: query -> selection memo.  The probes are pure functions of the
        #: digest, and their float inputs are quantized (committed line
        #: targets and the windows derived from them), so the same handful
        #: of queries recur across the whole route; capped as a safety
        #: valve.  Entries are immutable (tuples/arrays callers only read).
        self._memo: dict[tuple, tuple | np.ndarray | None] = {}

    @property
    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar (rows, cols) float64 arrays in best-first order."""
        if self._coords is None:
            self._coords = (np.asarray(self._rs), np.asarray(self._cs))
        return self._coords

    def pin_run(self, coord: int, bound: float) -> tuple:
        """Candidate indices within the snap tolerance of a pinned *bound*.

        Exact complement of the scalar ``abs(bound - x) >= _EPS`` reject
        (same subtraction, same tolerance), found as a contiguous run of
        the sorted digest; the run scans terminate because the distance to
        *bound* is monotone away from the bisect point.  Returned in
        candidate (best-first) order.
        """
        memo = self._memo
        key = (coord, bound)
        run = memo.get(key, _MISS)
        if run is not _MISS:
            return run
        vals = self.vals[coord]
        order = self.order[coord]
        j = bisect_left(vals, bound)
        lo = j
        while lo > 0 and abs(bound - vals[lo - 1]) < _EPS:
            lo -= 1
        hi = j
        n = len(vals)
        while hi < n and abs(bound - vals[hi]) < _EPS:
            hi += 1
        run = tuple(sorted(order[lo:hi]))
        if len(memo) > 1024:
            memo.clear()
        memo[key] = run
        return run

    def window_run(
        self, rpred: float, rsucc: float, cpred: float, csucc: float
    ) -> tuple | None:
        """Digest probe of the combined C2 windows.

        Returns ``()`` when either axis window misses every candidate
        coordinate (the whole scan is decided: all rejects are silent),
        a short candidate-index run when one axis narrows the scan to at
        most ``_RUN_MAX`` sites, or ``None`` when both runs are wide and
        the caller should fall through to the batch/scalar probe.  The
        2×``_EPS`` margin keeps the range a conservative superset of the
        scalar ``pred > x + _EPS or succ < x - _EPS`` accept region.
        """
        memo = self._memo
        key = (rpred, rsucc, cpred, csucc)
        run = memo.get(key, _MISS)
        if run is not _MISS:
            return run
        two = _EPS + _EPS
        rv, cv = self.vals
        a = bisect_left(rv, rpred - two)
        b = bisect_right(rv, rsucc + two)
        if a >= b:
            run = ()
        else:
            a2 = bisect_left(cv, cpred - two)
            b2 = bisect_right(cv, csucc + two)
            if a2 >= b2:
                run = ()
            elif b - a <= b2 - a2:
                run = (
                    tuple(sorted(self.order[0][a:b]))
                    if b - a <= _RUN_MAX
                    else None
                )
            elif b2 - a2 <= _RUN_MAX:
                run = tuple(sorted(self.order[1][a2:b2]))
            else:
                run = None
        if len(memo) > 1024:
            memo.clear()
        memo[key] = run
        return run

    def vec_run(
        self,
        rpred: float,
        rsucc: float,
        cpred: float,
        csucc: float,
        max_r: float,
        max_c: float,
    ) -> np.ndarray:
        """Vectorized batch probe: columnar bounds + C2 window masks over
        all candidates in one shot.  Elementwise float64 ops are
        IEEE-identical to the scalar expressions, so the kept set is
        exactly the candidates the scalar loop would not silently reject
        on these checks; ``flatnonzero`` preserves best-first order."""
        memo = self._memo
        key = (rpred, rsucc, cpred, csucc, max_r, max_c)
        run = memo.get(key)
        if run is not None:
            return run
        rs, cs = self.coords
        keep = (rs >= -0.5) & (rs <= max_r)
        keep &= (cs >= -0.5) & (cs <= max_c)
        keep &= rs + _EPS >= rpred
        keep &= rs - _EPS <= rsucc
        keep &= cs + _EPS >= cpred
        keep &= cs - _EPS <= csucc
        run = np.flatnonzero(keep)
        if len(memo) > 1024:
            memo.clear()
        memo[key] = run
        return run


class CandidateSet(NamedTuple):
    """Candidate interaction sites for one qubit pair, plus their
    coordinate extremes (over the snapped values) so the placement engine
    can reject a whole scan when a gate's feasibility window cannot touch
    any candidate, and a :class:`_ProbeIndex` digest for index-side
    candidate pruning (built for multi-candidate sets only)."""

    sites: list[tuple[Site, Site]]  # (raw, snapped), best-first
    min_r: float
    max_r: float
    min_c: float
    max_c: float
    probe: _ProbeIndex | None = None

    @classmethod
    def from_pairs(cls, pairs: list[tuple[Site, Site]]) -> "CandidateSet":
        """Build a set (extremes + probe digest) from ``(raw, snapped)``
        pairs — the one constructor both the router and direct
        list-of-pairs callers go through."""
        if not pairs:
            return cls(pairs, 0.0, 0.0, 0.0, 0.0, None)
        rs = [s[0] for _raw, s in pairs]
        cs = [s[1] for _raw, s in pairs]
        probe = _ProbeIndex(pairs) if len(pairs) > 1 else None
        return cls(pairs, min(rs), max(rs), min(cs), max(cs), probe)


class LocationIndex:
    """Static lookup tables for one ``(architecture, locations)`` pair.

    Everything here depends only on where atoms *live*, not on any stage
    plan, so the router builds one instance per :meth:`route` call and
    shares it across every speculative :class:`StagePlan` instead of
    rebuilding the dictionaries per stage.
    """

    __slots__ = ("slm_site_to_qubit", "aod_atoms", "atoms_by_row", "atoms_by_col")

    def __init__(self, locations: dict[int, AtomLocation]) -> None:
        self.slm_site_to_qubit: dict[Site, int] = {
            (float(loc.row), float(loc.col)): q
            for q, loc in locations.items()
            if loc.is_slm
        }
        self.aod_atoms: dict[int, list[tuple[int, AtomLocation]]] = {}
        #: (aod, row) -> [(qubit, its col)] — the atoms a row-map entry can engage
        self.atoms_by_row: dict[tuple[int, int], list[tuple[int, int]]] = {}
        #: (aod, col) -> [(qubit, its row)]
        self.atoms_by_col: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for q, loc in locations.items():
            if loc.is_aod:
                self.aod_atoms.setdefault(loc.array, []).append((q, loc))
                self.atoms_by_row.setdefault((loc.array, loc.row), []).append(
                    (q, loc.col)
                )
                self.atoms_by_col.setdefault((loc.array, loc.col), []).append(
                    (q, loc.row)
                )


class _SortedLine:
    """Sorted mirror of one AOD line map for O(log n) constraint checks.

    ``idx``/``tgt`` are parallel arrays sorted by line index; ``tsorted``
    holds the same targets sorted by value (for the C3 equality probe).
    ``monotone`` stays True while the targets are weakly increasing in line
    index — guaranteed when C2 was enforced on every insertion — enabling
    the neighbour-only C2 check; it turns sticky-False otherwise and the
    check falls back to a linear scan.
    """

    __slots__ = ("idx", "tgt", "tsorted", "monotone")

    def __init__(self) -> None:
        self.idx: list[int] = []
        self.tgt: list[float] = []
        self.tsorted: list[float] = []
        self.monotone = True

    def insert(self, index: int, target: float) -> None:
        p = bisect_left(self.idx, index)
        self.idx.insert(p, index)
        self.tgt.insert(p, target)
        if p > 0 and self.tgt[p - 1] > target + _EPS:
            self.monotone = False
        if p + 1 < len(self.tgt) and self.tgt[p + 1] < target - _EPS:
            self.monotone = False
        insort(self.tsorted, target)

    def remove(self, index: int, target: float) -> None:
        p = bisect_left(self.idx, index)
        del self.idx[p]
        del self.tgt[p]
        del self.tsorted[bisect_left(self.tsorted, target)]


# journal record tags
_ROW, _COL, _SCHED, _BUSY = 0, 1, 2, 3


@dataclass
class StagePlan:
    """Mutable plan for one stage: per-AOD row/col maps + scheduled gates.

    ``row_maps[aod]`` maps AOD row index -> target coordinate (site units);
    likewise for columns.  ``scheduled`` maps an interaction point to the
    qubit pair gated there.

    ``index`` may be a precomputed :class:`LocationIndex` for these
    locations; passing one lets the router skip rebuilding the static
    lookup tables for every speculative plan.
    """

    architecture: RAAArchitecture
    locations: dict[int, AtomLocation]
    toggles: ConstraintToggles = field(default_factory=ConstraintToggles)
    row_maps: dict[int, dict[int, float]] = field(default_factory=dict)
    col_maps: dict[int, dict[int, float]] = field(default_factory=dict)
    scheduled: dict[Site, tuple[int, int]] = field(default_factory=dict)
    busy_qubits: set[int] = field(default_factory=set)
    index: LocationIndex | None = None

    def __post_init__(self) -> None:
        for a in range(1, self.architecture.num_arrays):
            self.row_maps.setdefault(a, {})
            self.col_maps.setdefault(a, {})
        if self.index is None:
            self.index = LocationIndex(self.locations)
        self._slm_site_to_qubit = self.index.slm_site_to_qubit
        self._aod_atoms = self.index.aod_atoms
        self._lines: tuple[dict[int, _SortedLine], dict[int, _SortedLine]] = ({}, {})
        #: per-pair requirement templates for :meth:`place_pair` — static
        #: for the plan's lifetime (locations and toggles are fixed, and
        #: :meth:`reset` clears maps/lines *in place* so the cached object
        #: references stay valid across the router's scratch-plan reuse)
        self._pair_templates: dict[tuple[int, int], tuple] = {}
        self._atom_halves: dict[int, tuple] = {}
        self._max_r: float = self.architecture.site_rows - 0.5
        self._max_c: float = self.architecture.site_cols - 0.5
        #: engaged AOD atoms per interaction point (incremental occupancy)
        self._occupancy: dict[Site, list[int]] = {}
        #: interaction points currently violating C1
        self._bad_sites: set[Site] = set()
        self._journal: list[tuple] = []
        self._num_line_entries = 0
        # Replay any prefilled maps through the incremental indexes.
        for axis, maps in ((_ROW, self.row_maps), (_COL, self.col_maps)):
            for aod, m in maps.items():
                for idx, target in m.items():
                    self._line(axis, aod).insert(idx, target)
                    self._engage(axis, aod, idx, target, add=True)
                    self._num_line_entries += 1
        self._journal.clear()

    def _line(self, axis: int, aod: int) -> _SortedLine:
        per_axis = self._lines[axis]
        line = per_axis.get(aod)
        if line is None:
            line = per_axis[aod] = _SortedLine()
        return line

    def _atom_half(self, qubit: int) -> tuple:
        """Cached per-atom contribution to pair templates.

        ``(loc, is_aod, reqs, deduped, home)`` — an SLM atom contributes
        its home coordinate, an AOD atom its two line requirements (map
        dict and sorted mirror resolved up front; (axis, aod) identity ==
        line identity) with the C1 mate lists pre-resolved.  Pair
        templates are assembled from two halves, so the per-line lookups
        happen once per *atom* instead of once per pair.
        """
        half = self._atom_halves.get(qubit)
        if half is not None:
            return half
        loc = self.locations[qubit]
        aod = loc.array
        if aod == 0:
            half = (loc, False, (), (), ((loc.row, loc.col),))
        else:
            row_map = self.row_maps[aod]
            col_map = self.col_maps[aod]
            row_line = self._line(_ROW, aod)
            col_line = self._line(_COL, aod)
            atom_index = self.index
            reqs = (
                (row_map, row_line, loc.row, 0, _ROW, aod),
                (col_map, col_line, loc.col, 1, _COL, aod),
            )
            deduped = (
                (
                    row_map,
                    row_line,
                    loc.row,
                    0,
                    atom_index.atoms_by_row.get((aod, loc.row)),
                    col_map,
                    True,
                    aod,
                ),
                (
                    col_map,
                    col_line,
                    loc.col,
                    1,
                    atom_index.atoms_by_col.get((aod, loc.col)),
                    row_map,
                    False,
                    aod,
                ),
            )
            half = (loc, True, reqs, deduped, ())
        self._atom_halves[qubit] = half
        return half

    def _pair_template(self, qubit_a: int, qubit_b: int) -> tuple:
        """Cached per-pair requirement template for :meth:`place_pair`.

        Everything about a pair that does not depend on the candidate site
        or the plan *state*: the atom locations, the full requirement
        list, the requirements deduped for the fast path, the SLM home
        coordinates, whether the fast path is statically eligible (no two
        *distinct* entries on one physical line), and whether the
        empty-plan fast path is statically eligible (at least one AOD
        atom, not both in the same array).  Assembled from the per-atom
        halves: two atoms only ever share a line when they live in the
        same AOD array — same row/col means the identical entry (deduped),
        any other collision disqualifies the fast path exactly as the
        historical per-requirement scan decided.
        """
        key = (qubit_a, qubit_b)
        tmpl = self._pair_templates.get(key)
        if tmpl is not None:
            return tmpl
        loc_a, a_aod, a_reqs, a_ded, a_home = self._atom_half(qubit_a)
        loc_b, b_aod, b_reqs, b_ded, b_home = self._atom_half(qubit_b)
        empty_ok = (a_aod or b_aod) and not (
            a_aod and b_aod and loc_a.array == loc_b.array
        )
        reqs = a_reqs + b_reqs
        slm_homes = a_home + b_home
        if a_aod and b_aod and loc_a.array == loc_b.array:
            if loc_a.row == loc_b.row and loc_a.col == loc_b.col:
                # the same physical atom twice: identical entries dedupe
                fast_ok = True
                deduped = a_ded
            else:
                # same array, distinct atoms: the shared row or col line
                # would carry two distinct entries — generic path only
                fast_ok = False
                deduped = ()
        else:
            fast_ok = True
            deduped = a_ded + b_ded
        tmpl = (
            reqs,
            deduped,
            slm_homes,
            fast_ok,
            loc_a,
            loc_b,
            a_aod,
            b_aod,
            empty_ok,
        )
        self._pair_templates[key] = tmpl
        return tmpl

    def reset(self) -> None:
        """Return the plan to the empty state in O(structures touched).

        Equivalent to ``restore(0)`` for plans built through
        :meth:`add`/:meth:`place_pair`, but clears wholesale instead of
        popping the journal entry by entry — the router uses this to reuse
        one scratch plan across stages.
        """
        for m in self.row_maps.values():
            m.clear()
        for m in self.col_maps.values():
            m.clear()
        self.scheduled.clear()
        self.busy_qubits.clear()
        for per_axis in self._lines:
            for line in per_axis.values():
                line.idx.clear()
                line.tgt.clear()
                line.tsorted.clear()
                line.monotone = True
        self._occupancy.clear()
        self._bad_sites.clear()
        self._journal.clear()
        self._num_line_entries = 0

    # -- incremental C1 occupancy -------------------------------------------------

    def _engage(
        self, axis: int, aod: int, idx: int, target: float, add: bool
    ) -> None:
        """Engage/disengage the atoms a map entry completes.

        A row entry ``idx -> target`` lands every AOD atom in that row whose
        column is also mapped; symmetrically for column entries.
        """
        if axis == _ROW:
            mates = self.index.atoms_by_row.get((aod, idx))
            other_map = self.col_maps[aod]
        else:
            mates = self.index.atoms_by_col.get((aod, idx))
            other_map = self.row_maps[aod]
        if not mates or not other_map:
            return
        snapped = round(target / _EPS) * _EPS
        occupancy = self._occupancy
        slm_lookup = self._slm_site_to_qubit
        for q, other_idx in mates:
            other_t = other_map.get(other_idx)
            if other_t is None:
                continue
            other_snapped = round(other_t / _EPS) * _EPS
            if axis == _ROW:
                site = (snapped, other_snapped)
            else:
                site = (other_snapped, snapped)
            if add:
                atoms = occupancy.get(site)
                if atoms is None:
                    occupancy[site] = [q]
                    # a lone engaged atom only matters on an SLM trap
                    if site in slm_lookup:
                        self._refresh_site(site)
                else:
                    atoms.append(q)
                    self._refresh_site(site)
            else:
                atoms = occupancy[site]
                if len(atoms) == 1:
                    del occupancy[site]
                    # 0 engaged atoms can never violate C1
                    self._bad_sites.discard(site)
                else:
                    atoms.remove(q)
                    self._refresh_site(site)

    def _refresh_site(self, site: Site) -> None:
        """Recompute whether *site* violates C1 after an occupancy change."""
        atoms = self._occupancy.get(site, ())
        slm_q = self._slm_site_to_qubit.get(site)
        total = len(atoms) + (slm_q is not None)
        if total < 2:
            self._bad_sites.discard(site)
            return
        if total > 2:
            self._bad_sites.add(site)
            return
        pair = self.scheduled.get(site)
        if pair is None:
            self._bad_sites.add(site)
            return
        if slm_q is None:
            first, second = atoms
        else:
            first, second = atoms[0], slm_q
        pa, pb = pair
        if (first == pa and second == pb) or (first == pb and second == pa):
            self._bad_sites.discard(site)
        else:
            self._bad_sites.add(site)

    # -- journaled mutation -------------------------------------------------------

    def _map_set(self, axis: int, aod: int, idx: int, target: float) -> None:
        """Set one line-map entry, journaling the old value for undo."""
        m = (self.row_maps if axis == _ROW else self.col_maps)[aod]
        old = m.get(idx)
        if old is not None and old == target:
            return  # no-op: a second gate reusing an already-set line
        line = self._line(axis, aod)
        if old is not None:
            self._engage(axis, aod, idx, old, add=False)
            line.remove(idx, old)
        else:
            self._num_line_entries += 1
        m[idx] = target
        line.insert(idx, target)
        self._engage(axis, aod, idx, target, add=True)
        self._journal.append((axis, aod, idx, old))

    def _map_unset(self, axis: int, aod: int, idx: int, old: float | None) -> None:
        """Undo one :meth:`_map_set` (restore *old*, or delete if None)."""
        m = (self.row_maps if axis == _ROW else self.col_maps)[aod]
        current = m[idx]
        line = self._line(axis, aod)
        self._engage(axis, aod, idx, current, add=False)
        line.remove(idx, current)
        if old is None:
            del m[idx]
            self._num_line_entries -= 1
        else:
            m[idx] = old
            line.insert(idx, old)
            self._engage(axis, aod, idx, old, add=True)

    # -- map-extension feasibility ------------------------------------------------

    def _line_ok(self, existing: dict[int, float], index: int, target: float) -> bool:
        """Can line *index* map to *target* given the other entries?

        Order preservation (C2) forbids *inversions*; overlap (C3) forbids
        *equal* targets.  With both enforced the map is strictly monotone;
        relaxing C3 alone still requires a weakly monotone map.

        Reference (linear) implementation, kept for arbitrary dicts; the
        hot path uses :meth:`_line_ok_fast` over the sorted mirrors.
        """
        bound = existing.get(index)
        if bound is not None:
            return abs(bound - target) < _EPS
        for other_idx, other_t in existing.items():
            if self.toggles.no_overlap and abs(other_t - target) < _EPS:
                return False
            if self.toggles.preserve_order:
                if other_idx < index and other_t > target + _EPS:
                    return False
                if other_idx > index and other_t < target - _EPS:
                    return False
        return True

    def _line_ok_fast(
        self,
        axis: int,
        aod: int,
        idx: int,
        target: float,
        staged: list[tuple[int, int, int, float]],
    ) -> bool:
        """O(log n) version of :meth:`_line_ok` against the committed map
        plus the (tiny) *staged* requirement list of the current probe."""
        bound = (self.row_maps if axis == _ROW else self.col_maps)[aod].get(idx)
        if bound is None:
            for ax2, aod2, idx2, t2 in staged:
                if ax2 == axis and aod2 == aod and idx2 == idx:
                    bound = t2
        if bound is not None:
            return abs(bound - target) < _EPS
        line = self._lines[axis].get(aod)
        no_overlap = self.toggles.no_overlap
        preserve_order = self.toggles.preserve_order
        if line is not None and line.idx:
            if no_overlap:
                ts = line.tsorted
                j = bisect_left(ts, target)
                if j < len(ts) and ts[j] - target < _EPS:
                    return False
                if j > 0 and target - ts[j - 1] < _EPS:
                    return False
            if preserve_order:
                if line.monotone:
                    # weakly increasing => prefix max / suffix min are the
                    # immediate neighbours of the insertion point
                    p = bisect_left(line.idx, idx)
                    if p > 0 and line.tgt[p - 1] > target + _EPS:
                        return False
                    if p < len(line.idx) and line.tgt[p] < target - _EPS:
                        return False
                else:
                    for other_idx, other_t in zip(line.idx, line.tgt):
                        if other_idx < idx and other_t > target + _EPS:
                            return False
                        if other_idx > idx and other_t < target - _EPS:
                            return False
        for ax2, aod2, idx2, t2 in staged:
            if ax2 != axis or aod2 != aod:
                continue
            if no_overlap and abs(t2 - target) < _EPS:
                return False
            if preserve_order:
                if idx2 < idx and t2 > target + _EPS:
                    return False
                if idx2 > idx and t2 < target - _EPS:
                    return False
        return True

    def line_requirements(
        self, qubit: int, site: Site
    ) -> list[tuple[str, int, int, float]]:
        """Row/col map entries needed to bring *qubit* to *site*."""
        loc = self.locations[qubit]
        if loc.is_slm:
            if abs(loc.row - site[0]) > _EPS or abs(loc.col - site[1]) > _EPS:
                raise ValueError(
                    f"SLM qubit {qubit} at {(loc.row, loc.col)} cannot reach {site}"
                )
            return []
        return [
            ("row", loc.array, loc.row, site[0]),
            ("col", loc.array, loc.col, site[1]),
        ]

    def can_add(self, qubit_a: int, qubit_b: int, site: Site) -> bool:
        """Check constraints 2 & 3 for scheduling the pair at *site*.

        Constraint 1 needs the global occupancy view, so callers verify
        :meth:`is_legal` after a tentative :meth:`add` (undo via
        :meth:`snapshot`/:meth:`restore`).
        """
        busy = self.busy_qubits
        if qubit_a in busy or qubit_b in busy:
            return False
        site = _snap_site(site[0], site[1])
        if site in self.scheduled:
            return False
        if not (
            -0.5 <= site[0] <= self.architecture.site_rows - 0.5
            and -0.5 <= site[1] <= self.architecture.site_cols - 0.5
        ):
            return False
        slm_here = self._slm_site_to_qubit.get(site)
        if (
            slm_here is not None
            and slm_here not in (qubit_a, qubit_b)
            and self.toggles.no_unintended_interaction
        ):
            return False
        staged: list[tuple[int, int, int, float]] = []
        for q in (qubit_a, qubit_b):
            loc = self.locations[q]
            if loc.is_slm:
                if (
                    abs(loc.row - site[0]) > _EPS
                    or abs(loc.col - site[1]) > _EPS
                ):
                    return False
                continue
            for axis, idx, target in (
                (_ROW, loc.row, site[0]),
                (_COL, loc.col, site[1]),
            ):
                if not self._line_ok_fast(axis, loc.array, idx, target, staged):
                    return False
                staged.append((axis, loc.array, idx, target))
        return True

    def place_pair(
        self,
        qubit_a: int,
        qubit_b: int,
        candidates: CandidateSet | list[tuple[Site, Site]],
    ) -> tuple[Site | None, bool]:
        """Router hot path: try ``(raw, snapped)`` candidate sites best-first.

        Returns ``(raw_site, overlap_blocked)`` where ``raw_site`` is the
        first candidate that passed every constraint (committed into the
        plan) or None, and ``overlap_blocked`` is True when at least one
        rejected candidate would have been feasible with C3 relaxed (the
        Fig. 24 statistic).  Equivalent to looping ``can_add`` + ``add`` +
        ``is_legal`` + ``restore`` per site, with the strict and
        C3-relaxed feasibility evaluated in one pass.
        """
        if type(candidates) is not CandidateSet:
            # Direct list-of-pairs callers (tests, baselines) get extremes
            # and the probe digest computed once at entry, so they hit the
            # identical pruned path as router-built CandidateSets.
            candidates = CandidateSet.from_pairs(candidates)
        extremes = candidates
        candidates = candidates.sites
        busy = self.busy_qubits
        if qubit_a in busy or qubit_b in busy:
            return None, False
        tmpl = self._pair_templates.get((qubit_a, qubit_b))
        if tmpl is None:
            tmpl = self._pair_template(qubit_a, qubit_b)
        (
            reqs,
            deduped,
            slm_homes,
            fast_ok,
            loc_a,
            loc_b,
            a_aod,
            b_aod,
            empty_ok,
        ) = tmpl
        if (
            empty_ok
            and self._num_line_entries == 0
            and not self.scheduled
            and not busy
            and candidates
        ):
            # Empty plan, atoms in different arrays: nothing in the plan can
            # conflict, so the best-ranked *valid* candidate commits
            # immediately (the common case for the first gate of every
            # stage).  Router-built CandidateSets are pre-filtered, so the
            # validity check below only guards direct callers; on any
            # failure we fall through to the general probe loop.  The only
            # atoms the new entries can engage are the pair itself, so the
            # occupancy update is a single direct write and the site cannot
            # be bad.
            raw, site = candidates[0]
            site_ok = (
                -0.5 <= site[0] <= self._max_r and -0.5 <= site[1] <= self._max_c
            )
            if site_ok:
                slm_here = self._slm_site_to_qubit.get(site)
                if (
                    slm_here is not None
                    and slm_here != qubit_a
                    and slm_here != qubit_b
                    and self.toggles.no_unintended_interaction
                ):
                    site_ok = False
            if site_ok:
                for loc, aod_flag in ((loc_a, a_aod), (loc_b, b_aod)):
                    if not aod_flag and (
                        abs(loc.row - site[0]) > _EPS
                        or abs(loc.col - site[1]) > _EPS
                    ):
                        site_ok = False
                        break
            if site_ok:
                journal_append = self._journal.append
                engaged: list[int] = []
                for loc, aod_flag, q in (
                    (loc_a, a_aod, qubit_a),
                    (loc_b, b_aod, qubit_b),
                ):
                    if not aod_flag:
                        continue
                    aod = loc.array
                    for axis, m, idx, target in (
                        (_ROW, self.row_maps[aod], loc.row, site[0]),
                        (_COL, self.col_maps[aod], loc.col, site[1]),
                    ):
                        m[idx] = target
                        self._line(axis, aod).insert(idx, target)
                        self._num_line_entries += 1
                        journal_append((axis, aod, idx, None))
                    engaged.append(q)
                self._occupancy[_snap_site(site[0], site[1])] = engaged
                self.scheduled[site] = (qubit_a, qubit_b)
                journal_append((_SCHED, site))
                busy.add(qubit_a)
                busy.add(qubit_b)
                journal_append((_BUSY, qubit_a))
                journal_append((_BUSY, qubit_b))
                return raw, False
            # fall through: validate every candidate via the general loop
        toggles = self.toggles
        check_c1 = toggles.no_unintended_interaction
        no_overlap = toggles.no_overlap
        preserve_order = toggles.preserve_order
        max_r = self._max_r
        max_c = self._max_c
        scheduled = self.scheduled
        slm_lookup = self._slm_site_to_qubit
        overlap_blocked = False

        # Fast path: default toggles, weakly monotone committed lines, and
        # no two requirements on the same physical line (statically decided
        # in the template after deduping the identical ones).  The plan is
        # frozen for the whole probe loop, so each requirement's committed
        # bound and its idx-space neighbours are computed once and
        # *combined per axis*: committed bounds on an axis must all pin the
        # same coordinate, and C2 windows intersect to (max of
        # predecessors, min of successors).  The committed value nearest
        # the target in value space is always one of those extremes
        # whenever the C2 window admits it, so the C3 probe needs no
        # per-candidate bisect.  Every candidate then costs a handful of
        # float compares against the two axis summaries.
        if no_overlap and preserve_order and fast_ok:
            ok = True
            inf = float("inf")
            rbound: float | None = None  # per-axis pinned coord
            cbound: float | None = None
            rpred = cpred = -inf
            rsucc = csucc = inf
            #: (mates, committed other-axis map, is_row) per *new* line entry —
            #: the atoms that entry could newly engage (C1 pre-check)
            scan_specs: list[tuple[list, dict, bool]] = []
            for m, line, idx, coord, mates, other_map, is_row, _aod in deduped:
                # Untouched lines (the common case mid-sweep) contribute no
                # bound and an infinite window; only their mates matter.
                if line.idx:
                    if not line.monotone:
                        ok = False
                        break
                    bound = m.get(idx)
                    if bound is not None:
                        if coord:
                            if cbound is not None and cbound != bound:
                                # two committed lines pinned to different
                                # coords: no site can satisfy both, with or
                                # without C3
                                return None, False
                            cbound = bound
                        else:
                            if rbound is not None and rbound != bound:
                                return None, False
                            rbound = bound
                        continue
                    p = bisect_left(line.idx, idx)
                    tgt = line.tgt
                    if coord:
                        if p > 0 and tgt[p - 1] > cpred:
                            cpred = tgt[p - 1]
                        if p < len(tgt) and tgt[p] < csucc:
                            csucc = tgt[p]
                    else:
                        if p > 0 and tgt[p - 1] > rpred:
                            rpred = tgt[p - 1]
                        if p < len(tgt) and tgt[p] < rsucc:
                            rsucc = tgt[p]
                elif not line.monotone:
                    ok = False
                    break
                if mates:
                    scan_specs.append((mates, other_map, is_row))
            if ok:
                # Whole-gate shortcuts: if the combined C2 window on either
                # axis is empty, or contradicts a pinned coordinate, no
                # candidate can pass even with C3 relaxed — the entire scan
                # (and the Fig. 24 statistic) is decided without probing.
                two_eps = _EPS + _EPS
                if (
                    rpred > rsucc + two_eps
                    or cpred > csucc + two_eps
                    or (
                        rbound is not None
                        and (rpred > rbound + _EPS or rsucc < rbound - _EPS)
                    )
                    or (
                        cbound is not None
                        and (cpred > cbound + _EPS or csucc < cbound - _EPS)
                    )
                ):
                    return None, False
                if (
                    rpred > extremes.max_r + _EPS
                    or rsucc < extremes.min_r - _EPS
                    or cpred > extremes.max_c + _EPS
                    or csucc < extremes.min_c - _EPS
                    or (
                        rbound is not None
                        and (
                            rbound < extremes.min_r - _EPS
                            or rbound > extremes.max_r + _EPS
                        )
                    )
                    or (
                        cbound is not None
                        and (
                            cbound < extremes.min_c - _EPS
                            or cbound > extremes.max_c + _EPS
                        )
                    )
                ):
                    # The feasibility window cannot touch any candidate:
                    # every probe would fail C2 (or the pinned coordinate),
                    # strict and relaxed alike.
                    return None, False
                # Index-side candidate pruning: select a sound superset of
                # the candidates that can survive the *silent* pinned /
                # C2-window / bounds rejects below, so the best-first loop
                # skips runs of doomed candidates.  Anything that could
                # reach the C3 equality test (Fig. 24 ``overlap_blocked``)
                # or a commit attempt always survives selection, and the
                # scalar body re-applies every exact check, so results are
                # bit-identical to the full scan.
                n = len(candidates)
                probe = extremes.probe
                order = range(n)
                if probe is not None:
                    if rbound is not None:
                        order = probe.pin_run(0, rbound)
                    elif cbound is not None:
                        order = probe.pin_run(1, cbound)
                    else:
                        sel = probe.window_run(rpred, rsucc, cpred, csucc)
                        if sel is not None:
                            order = sel
                        elif n >= _VEC_MIN and (
                            rpred != -inf
                            or rsucc != inf
                            or cpred != -inf
                            or csucc != inf
                        ):
                            order = probe.vec_run(
                                rpred, rsucc, cpred, csucc, max_r, max_c
                            )
                    if not len(order):
                        return None, False
                occupancy = self._occupancy
                eng_mates: list[tuple[bool, float]] | None = None
                for i in order:
                    raw, site = candidates[i]
                    if site in scheduled:
                        continue
                    r, c = site
                    if not (-0.5 <= r <= max_r and -0.5 <= c <= max_c):
                        continue
                    slm_here = slm_lookup.get(site)
                    if (
                        slm_here is not None
                        and check_c1
                        and slm_here != qubit_a
                        and slm_here != qubit_b
                    ):
                        continue
                    feasible = True
                    for hr, hc in slm_homes:
                        if abs(hr - r) > _EPS or abs(hc - c) > _EPS:
                            feasible = False
                            break
                    if not feasible:
                        continue
                    if rbound is not None and abs(rbound - r) >= _EPS:
                        continue
                    if cbound is not None and abs(cbound - c) >= _EPS:
                        continue
                    if (
                        rpred > r + _EPS
                        or rsucc < r - _EPS
                        or cpred > c + _EPS
                        or csucc < c - _EPS
                    ):
                        continue  # C2: fails relaxed too
                    if (
                        abs(r - rpred) < _EPS
                        or abs(r - rsucc) < _EPS
                        or abs(c - cpred) < _EPS
                        or abs(c - csucc) < _EPS
                    ):
                        overlap_blocked = True  # C3 alone blocked this site
                        continue
                    if check_c1:
                        # Exact C1 pre-check: committing would violate C1
                        # iff a stray atom already sits on this site, or an
                        # atom newly engaged by the new line entries lands
                        # on the gate site, an occupied point, an SLM trap,
                        # or the same point as another newly engaged atom.
                        # Skipping the doomed commit+rollback here is what
                        # the old code did via add()/is_legal()/restore().
                        eng_site = _snap_site(r, c)
                        eng_r, eng_c = eng_site
                        viol = False
                        pre = occupancy.get(eng_site)
                        if pre:
                            for x in pre:
                                if x != qubit_a and x != qubit_b:
                                    viol = True
                                    break
                        if not viol and scan_specs:
                            if eng_mates is None:
                                # A mate's landing depends on the candidate
                                # only through eng_r/eng_c; its committed
                                # other-axis coordinate is frozen for the
                                # whole probe loop (commit attempts either
                                # return or roll back), so resolve and snap
                                # each engaged mate once per call instead
                                # of once per candidate.
                                eng_mates = []
                                for mates, other_map, is_row in scan_specs:
                                    for q, other_idx in mates:
                                        if q == qubit_a or q == qubit_b:
                                            continue
                                        other_t = other_map.get(other_idx)
                                        if other_t is None:
                                            continue
                                        eng_mates.append(
                                            (
                                                is_row,
                                                round(other_t / _EPS) * _EPS,
                                            )
                                        )
                            if eng_mates:
                                landings: list[Site] = []
                                for is_row, other_t in eng_mates:
                                    landing = (
                                        (eng_r, other_t)
                                        if is_row
                                        else (other_t, eng_c)
                                    )
                                    if (
                                        landing == eng_site
                                        or occupancy.get(landing)
                                        or landing in slm_lookup
                                        or landing in landings
                                    ):
                                        viol = True
                                        break
                                    landings.append(landing)
                        if viol:
                            continue
                    # Commit: :meth:`_map_set` + the ``add=True`` arm of
                    # :meth:`_engage` inlined over the deduped requirements
                    # (identical to looping ``_map_set`` over ``reqs`` — the
                    # only entries ``deduped`` drops are exact duplicates,
                    # which ``_map_set`` would no-op without journaling).
                    journal = self._journal
                    journal_append = journal.append
                    token = len(journal)
                    for m, line, idx, coord, mates, other_map, is_row, aod in (
                        deduped
                    ):
                        target = site[coord]
                        old = m.get(idx)
                        if old is not None and old == target:
                            continue
                        axis = _ROW if is_row else _COL
                        if old is not None:
                            self._engage(axis, aod, idx, old, add=False)
                            line.remove(idx, old)
                        else:
                            self._num_line_entries += 1
                        m[idx] = target
                        line.insert(idx, target)
                        if mates and other_map:
                            snapped = round(target / _EPS) * _EPS
                            for q2, other_idx in mates:
                                other_t = other_map.get(other_idx)
                                if other_t is None:
                                    continue
                                other_snapped = round(other_t / _EPS) * _EPS
                                if is_row:
                                    esite = (snapped, other_snapped)
                                else:
                                    esite = (other_snapped, snapped)
                                atoms = occupancy.get(esite)
                                if atoms is None:
                                    occupancy[esite] = [q2]
                                    # a lone engaged atom only matters on an
                                    # SLM trap
                                    if esite in slm_lookup:
                                        self._refresh_site(esite)
                                else:
                                    atoms.append(q2)
                                    self._refresh_site(esite)
                        journal_append((axis, aod, idx, old))
                    pair = (qubit_a, qubit_b)
                    scheduled[site] = pair
                    journal_append((_SCHED, site))
                    self._refresh_site(site)
                    for q in pair:
                        if q not in busy:
                            busy.add(q)
                            journal_append((_BUSY, q))
                    if not (check_c1 and self._bad_sites):
                        return raw, overlap_blocked
                    self.restore(token)
                return None, overlap_blocked

        staged: list[tuple[_SortedLine, int, float]] = []
        for raw, site in candidates:
            if site in scheduled:
                continue
            r, c = site
            if not (-0.5 <= r <= max_r and -0.5 <= c <= max_c):
                continue
            slm_here = slm_lookup.get(site)
            if (
                slm_here is not None
                and check_c1
                and slm_here != qubit_a
                and slm_here != qubit_b
            ):
                continue
            feasible = True
            for hr, hc in slm_homes:
                if abs(hr - r) > _EPS or abs(hc - c) > _EPS:
                    feasible = False
                    break
            if not feasible:
                continue
            # Strict (toggles as-is) and C3-relaxed feasibility in one pass.
            del staged[:]
            strict_ok = True
            relaxed_ok = True
            for m, line, idx, coord, _axis, _aod in reqs:
                target = site[coord]
                bound = m.get(idx)
                if bound is None:
                    for line2, idx2, t2 in staged:
                        if line2 is line and idx2 == idx:
                            bound = t2
                            break
                if bound is not None:
                    if abs(bound - target) >= _EPS:
                        strict_ok = relaxed_ok = False
                        break
                    continue
                if line.idx:
                    if no_overlap and strict_ok:
                        ts = line.tsorted
                        j = bisect_left(ts, target)
                        if (j < len(ts) and ts[j] - target < _EPS) or (
                            j > 0 and target - ts[j - 1] < _EPS
                        ):
                            strict_ok = False
                            if overlap_blocked:
                                break  # relaxed outcome no longer matters
                    if preserve_order:
                        if line.monotone:
                            p = bisect_left(line.idx, idx)
                            if (
                                p > 0 and line.tgt[p - 1] > target + _EPS
                            ) or (
                                p < len(line.idx)
                                and line.tgt[p] < target - _EPS
                            ):
                                strict_ok = relaxed_ok = False
                                break
                        else:
                            for other_idx, other_t in zip(line.idx, line.tgt):
                                if other_idx < idx and other_t > target + _EPS:
                                    strict_ok = relaxed_ok = False
                                    break
                                if other_idx > idx and other_t < target - _EPS:
                                    strict_ok = relaxed_ok = False
                                    break
                            if not relaxed_ok:
                                break
                for line2, idx2, t2 in staged:
                    if line2 is not line:
                        continue
                    if no_overlap and strict_ok and abs(t2 - target) < _EPS:
                        strict_ok = False
                        if overlap_blocked:
                            break
                    if preserve_order:
                        if idx2 < idx and t2 > target + _EPS:
                            strict_ok = relaxed_ok = False
                            break
                        if idx2 > idx and t2 < target - _EPS:
                            strict_ok = relaxed_ok = False
                            break
                if not relaxed_ok or (not strict_ok and overlap_blocked):
                    break
                staged.append((line, idx, target))
            if not strict_ok:
                if relaxed_ok and no_overlap:
                    overlap_blocked = True
                continue
            # Constraints 2/3 hold; commit and verify C1 incrementally.
            token = len(self._journal)
            for _m, _line, idx, coord, axis, aod in reqs:
                self._map_set(axis, aod, idx, site[coord])
            pair = (qubit_a, qubit_b)
            scheduled[site] = pair
            self._journal.append((_SCHED, site))
            self._refresh_site(site)
            for q in pair:
                if q not in busy:
                    busy.add(q)
                    self._journal.append((_BUSY, q))
            if not (check_c1 and self._bad_sites):
                return raw, overlap_blocked
            self.restore(token)
        return None, overlap_blocked

    def add(self, qubit_a: int, qubit_b: int, site: Site) -> None:
        """Commit the pair at *site* (must have passed :meth:`can_add`)."""
        site = _snap_site(site[0], site[1])
        for q in (qubit_a, qubit_b):
            for axis, aod, idx, target in self.line_requirements(q, site):
                self._map_set(_ROW if axis == "row" else _COL, aod, idx, target)
        self.scheduled[site] = (qubit_a, qubit_b)
        self._journal.append((_SCHED, site))
        self._refresh_site(site)
        for q in (qubit_a, qubit_b):
            if q not in self.busy_qubits:
                self.busy_qubits.add(q)
                self._journal.append((_BUSY, q))

    def snapshot(self) -> int:
        """O(1) undo token for speculative adds: the journal length."""
        return len(self._journal)

    def restore(self, token: int) -> None:
        """Pop the journal back to *token*, undoing every later mutation."""
        journal = self._journal
        while len(journal) > token:
            rec = journal.pop()
            tag = rec[0]
            if tag == _SCHED:
                site = rec[1]
                del self.scheduled[site]
                self._refresh_site(site)
            elif tag == _BUSY:
                self.busy_qubits.discard(rec[1])
            else:  # _ROW / _COL map entry
                _, aod, idx, old = rec
                self._map_unset(tag, aod, idx, old)

    # -- constraint 1 (global occupancy) ----------------------------------------

    def engaged_atoms(self) -> list[tuple[int, Site]]:
        """All engaged AOD atoms and their landing coordinates (full scan)."""
        out: list[tuple[int, Site]] = []
        for aod, atoms in self._aod_atoms.items():
            rmap = self.row_maps[aod]
            cmap = self.col_maps[aod]
            if not rmap or not cmap:
                continue
            for q, loc in atoms:
                r = rmap.get(loc.row)
                c = cmap.get(loc.col)
                if r is not None and c is not None:
                    out.append((q, _snap_site(r, c)))
        return out

    def violates_c1(self) -> bool:
        """True if any interaction point hosts a non-scheduled pair or >2 atoms.

        Authoritative full scan (sees even direct map edits); the router's
        hot path uses the incremental :meth:`is_legal` instead.
        """
        occupancy: dict[Site, list[int]] = {}
        for q, site in self.engaged_atoms():
            occupancy.setdefault(site, []).append(q)
        for site, aod_atoms in occupancy.items():
            atoms = list(aod_atoms)
            slm_q = self._slm_site_to_qubit.get(site)
            if slm_q is not None:
                atoms.append(slm_q)
            if len(atoms) == 1:
                continue
            if len(atoms) > 2:
                return True
            pair = self.scheduled.get(site)
            if pair is None or set(atoms) != set(pair):
                return True
        return False

    def is_legal(self) -> bool:
        """Full legality under the active toggles (C2/C3 hold by construction).

        O(1): reads the incrementally maintained violating-site set.
        """
        if self.toggles.no_unintended_interaction and self._bad_sites:
            return False
        return True
