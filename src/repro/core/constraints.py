"""The three RAA movement constraints (Figs. 9-11) and the stage model.

During one routing stage each AOD array carries a *partial* map from its
rows/columns onto interaction coordinates expressed in site units (the SLM
grid has pitch = ``atom_distance`` and its traps sit at integer coordinates).
An AOD atom is **engaged** when both its row and its column are mapped; it
then lands at ``(rowmap[r], colmap[c])``.

Interaction coordinates live on the half-integer lattice: AOD-SLM gates meet
at the SLM atom's integer position; AOD-AOD gates may also meet at
half-offset points, which are 3 Rydberg radii from the nearest SLM trap
(pitch >= 6 r_b, Sec. IV) and therefore safely out of blockade range of any
fixed atom.

Disengaged lines park at per-AOD fractional offsets strictly between 0 and
0.5 (mod 1), so a parked atom can never coincide with an SLM trap, a
half-offset meeting point, or a parked atom of a different AOD; parked atoms
of the *same* AOD are separated by the array's own row/col pitch.  Hence
only *engaged* atoms can collide, and the constraint checks reduce to:

* **C1 (no unintended interaction, Fig. 9)** — every interaction point
  hosting two atoms hosts exactly one *scheduled* gate pair, and no point
  hosts three atoms.  SLM atoms always sit on their integer sites.
* **C2 (order preservation, Fig. 10)** — each AOD's row map and column map
  must be strictly increasing.
* **C3 (no overlap, Fig. 11)** — each AOD's row map and column map must be
  injective.

Each check can be relaxed independently (Fig. 22's ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.raa import AtomLocation, RAAArchitecture

#: Coordinates are snapped to this resolution before comparison.
_EPS = 1e-6

Site = tuple[float, float]


def parking_offset(aod: int) -> float:
    """Fractional parking offset of AOD *aod* (distinct per AOD, never 0/0.5)."""
    return 0.07 + 0.06 * aod


@dataclass(frozen=True)
class ConstraintToggles:
    """Which hardware constraints the router enforces (all on by default)."""

    no_unintended_interaction: bool = True  # constraint 1
    preserve_order: bool = True  # constraint 2
    no_overlap: bool = True  # constraint 3


def _snap(x: float) -> float:
    """Round to the comparison resolution."""
    return round(x / _EPS) * _EPS


@dataclass
class StagePlan:
    """Mutable plan for one stage: per-AOD row/col maps + scheduled gates.

    ``row_maps[aod]`` maps AOD row index -> target coordinate (site units);
    likewise for columns.  ``scheduled`` maps an interaction point to the
    qubit pair gated there.
    """

    architecture: RAAArchitecture
    locations: dict[int, AtomLocation]
    toggles: ConstraintToggles = field(default_factory=ConstraintToggles)
    row_maps: dict[int, dict[int, float]] = field(default_factory=dict)
    col_maps: dict[int, dict[int, float]] = field(default_factory=dict)
    scheduled: dict[Site, tuple[int, int]] = field(default_factory=dict)
    busy_qubits: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        for a in range(1, self.architecture.num_arrays):
            self.row_maps.setdefault(a, {})
            self.col_maps.setdefault(a, {})
        self._slm_site_to_qubit: dict[Site, int] = {
            (float(loc.row), float(loc.col)): q
            for q, loc in self.locations.items()
            if loc.is_slm
        }
        self._aod_atoms: dict[int, list[tuple[int, AtomLocation]]] = {}
        for q, loc in self.locations.items():
            if loc.is_aod:
                self._aod_atoms.setdefault(loc.array, []).append((q, loc))

    # -- map-extension feasibility ------------------------------------------------

    def _line_ok(self, existing: dict[int, float], index: int, target: float) -> bool:
        """Can line *index* map to *target* given the other entries?

        Order preservation (C2) forbids *inversions*; overlap (C3) forbids
        *equal* targets.  With both enforced the map is strictly monotone;
        relaxing C3 alone still requires a weakly monotone map.
        """
        bound = existing.get(index)
        if bound is not None:
            return abs(bound - target) < _EPS
        for other_idx, other_t in existing.items():
            if self.toggles.no_overlap and abs(other_t - target) < _EPS:
                return False
            if self.toggles.preserve_order:
                if other_idx < index and other_t > target + _EPS:
                    return False
                if other_idx > index and other_t < target - _EPS:
                    return False
        return True

    def line_requirements(
        self, qubit: int, site: Site
    ) -> list[tuple[str, int, int, float]]:
        """Row/col map entries needed to bring *qubit* to *site*."""
        loc = self.locations[qubit]
        if loc.is_slm:
            if abs(loc.row - site[0]) > _EPS or abs(loc.col - site[1]) > _EPS:
                raise ValueError(
                    f"SLM qubit {qubit} at {(loc.row, loc.col)} cannot reach {site}"
                )
            return []
        return [
            ("row", loc.array, loc.row, site[0]),
            ("col", loc.array, loc.col, site[1]),
        ]

    def can_add(self, qubit_a: int, qubit_b: int, site: Site) -> bool:
        """Check constraints 2 & 3 for scheduling the pair at *site*.

        Constraint 1 needs the global occupancy view, so callers verify
        :meth:`is_legal` after a tentative :meth:`add` (undo via snapshot).
        """
        if qubit_a in self.busy_qubits or qubit_b in self.busy_qubits:
            return False
        site = (_snap(site[0]), _snap(site[1]))
        if site in self.scheduled:
            return False
        if not (
            -0.5 <= site[0] <= self.architecture.site_rows - 0.5
            and -0.5 <= site[1] <= self.architecture.site_cols - 0.5
        ):
            return False
        slm_here = self._slm_site_to_qubit.get(site)
        if (
            slm_here is not None
            and slm_here not in (qubit_a, qubit_b)
            and self.toggles.no_unintended_interaction
        ):
            return False
        try:
            reqs = self.line_requirements(qubit_a, site) + self.line_requirements(
                qubit_b, site
            )
        except ValueError:
            return False
        staged: dict[tuple[str, int], dict[int, float]] = {}
        for axis, aod, idx, target in reqs:
            maps = self.row_maps if axis == "row" else self.col_maps
            merged = dict(maps[aod])
            merged.update(staged.get((axis, aod), {}))
            if not self._line_ok(merged, idx, target):
                return False
            staged.setdefault((axis, aod), {})[idx] = target
        return True

    def add(self, qubit_a: int, qubit_b: int, site: Site) -> None:
        """Commit the pair at *site* (must have passed :meth:`can_add`)."""
        site = (_snap(site[0]), _snap(site[1]))
        for q in (qubit_a, qubit_b):
            for axis, aod, idx, target in self.line_requirements(q, site):
                maps = self.row_maps if axis == "row" else self.col_maps
                maps[aod][idx] = target
        self.scheduled[site] = (qubit_a, qubit_b)
        self.busy_qubits.add(qubit_a)
        self.busy_qubits.add(qubit_b)

    def snapshot(self) -> tuple:
        """Cheap undo token for speculative adds."""
        return (
            {a: dict(m) for a, m in self.row_maps.items()},
            {a: dict(m) for a, m in self.col_maps.items()},
            dict(self.scheduled),
            set(self.busy_qubits),
        )

    def restore(self, token: tuple) -> None:
        rows, cols, sched, busy = token
        self.row_maps = {a: dict(m) for a, m in rows.items()}
        self.col_maps = {a: dict(m) for a, m in cols.items()}
        self.scheduled = dict(sched)
        self.busy_qubits = set(busy)

    # -- constraint 1 (global occupancy) ----------------------------------------

    def engaged_atoms(self) -> list[tuple[int, Site]]:
        """All engaged AOD atoms and their landing coordinates."""
        out: list[tuple[int, Site]] = []
        for aod, atoms in self._aod_atoms.items():
            rmap = self.row_maps[aod]
            cmap = self.col_maps[aod]
            if not rmap or not cmap:
                continue
            for q, loc in atoms:
                r = rmap.get(loc.row)
                c = cmap.get(loc.col)
                if r is not None and c is not None:
                    out.append((q, (_snap(r), _snap(c))))
        return out

    def violates_c1(self) -> bool:
        """True if any interaction point hosts a non-scheduled pair or >2 atoms."""
        occupancy: dict[Site, list[int]] = {}
        for q, site in self.engaged_atoms():
            occupancy.setdefault(site, []).append(q)
        for site, aod_atoms in occupancy.items():
            atoms = list(aod_atoms)
            slm_q = self._slm_site_to_qubit.get(site)
            if slm_q is not None:
                atoms.append(slm_q)
            if len(atoms) == 1:
                continue
            if len(atoms) > 2:
                return True
            pair = self.scheduled.get(site)
            if pair is None or set(atoms) != set(pair):
                return True
        return False

    def is_legal(self) -> bool:
        """Full legality under the active toggles (C2/C3 hold by construction)."""
        if self.toggles.no_unintended_interaction and self.violates_c1():
            return False
        return True
