"""High-parallelism AOD router (Sec. III-C, Fig. 8).

Iterates over the circuit DAG:

1. flush every frontier 1Q gate via Raman pulses;
2. greedily grow a maximal set of frontier 2Q gates that satisfies the three
   hardware constraints, assigning each an interaction coordinate;
3. emit the stage: AOD row/col moves (through the movement tracker, which
   accumulates heating), one global Rydberg pulse executing the whole set,
   and any cooling swap the heating triggered.

Gates rejected by a constraint stay in the DAG for a later stage.  The
router records which rejections were caused by constraint 3 (overlap) — the
statistic Fig. 24 plots.

Site selection: an AOD-SLM gate's site is fixed (the SLM atom's trap).  An
AOD-AOD gate may meet anywhere on the half-integer lattice; the router
offers, best-first, half-offset points near the two atoms' homes (these are
always >= 3 Rydberg radii from every SLM trap) and SLM-free integer sites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.raa import AtomLocation, RAAArchitecture
from .constraints import ConstraintToggles, Site, StagePlan
from .instructions import RAAProgram, RamanPulse, RydbergGate, Stage
from .movement import MovementTracker


class RoutingError(RuntimeError):
    """Raised when the router cannot make progress (a gate is unschedulable
    even alone, which cannot happen for inter-array circuits)."""


@dataclass
class RouterConfig:
    """Router knobs.

    ``serial`` schedules one 2Q gate per stage (Fig. 21 ablation baseline).
    ``max_candidate_sites`` bounds the AOD-AOD meeting-point search.
    ``cooling_threshold`` overrides the Table I default when set.
    """

    toggles: ConstraintToggles = field(default_factory=ConstraintToggles)
    serial: bool = False
    max_candidate_sites: int = 24
    cooling_threshold: float | None = None
    #: number of frontier orderings tried per stage; >1 keeps the largest
    #: legal gate set (used by the solver-proxy baselines).
    ordering_trials: int = 1
    seed: int = 11


def candidate_sites(
    qubit_a: int,
    qubit_b: int,
    locations: dict[int, AtomLocation],
    architecture: RAAArchitecture,
    slm_sites: set[tuple[float, float]],
    limit: int,
) -> list[Site]:
    """Candidate interaction coordinates for a gate, best-first."""
    la, lb = locations[qubit_a], locations[qubit_b]
    if la.is_slm:
        return [(float(la.row), float(la.col))]
    if lb.is_slm:
        return [(float(lb.row), float(lb.col))]
    # AOD-AOD: half-offset points near the two homes, then free integer sites.
    max_r = architecture.site_rows - 0.5
    max_c = architecture.site_cols - 0.5
    anchor_r = (la.row + lb.row) / 2.0
    anchor_c = (la.col + lb.col) / 2.0
    points: list[Site] = []
    seen: set[Site] = set()

    def push(r: float, c: float) -> None:
        if not (-0.5 <= r <= max_r and -0.5 <= c <= max_c):
            return
        site = (r, c)
        if site in seen or site in slm_sites:
            return
        seen.add(site)
        points.append(site)

    # Expanding half-lattice diamond around the anchor.
    base_r = round(anchor_r * 2) / 2.0
    base_c = round(anchor_c * 2) / 2.0
    radius = 0.0
    while len(points) < limit and radius <= max(max_r, max_c) + 1.0:
        steps = int(radius * 2)
        if steps == 0:
            push(base_r + 0.5, base_c + 0.5)
            push(base_r, base_c)
        else:
            for i in range(steps + 1):
                dr = -radius + i
                for dc in (-(radius - abs(dr)), radius - abs(dr)):
                    push(base_r + 0.5 + dr, base_c + 0.5 + dc)
                    push(base_r + dr, base_c + dc)
        radius += 0.5
    points.sort(
        key=lambda p: ((p[0] - anchor_r) ** 2 + (p[1] - anchor_c) ** 2, p)
    )
    return points[:limit]


class HighParallelismRouter:
    """Schedules a transpiled multipartite circuit onto RAA stages."""

    def __init__(
        self,
        architecture: RAAArchitecture,
        locations: dict[int, AtomLocation],
        config: RouterConfig | None = None,
    ) -> None:
        self.architecture = architecture
        self.locations = locations
        self.config = config or RouterConfig()
        self._slm_sites = {
            (float(loc.row), float(loc.col))
            for loc in locations.values()
            if loc.is_slm
        }

    def _select_gates(
        self, ordering: list[tuple[int, Gate]]
    ) -> tuple[StagePlan, list[tuple[int, Gate, Site]], int]:
        """Greedily build one stage's legal parallel gate set from *ordering*."""
        plan = StagePlan(
            architecture=self.architecture,
            locations=self.locations,
            toggles=self.config.toggles,
        )
        chosen: list[tuple[int, Gate, Site]] = []
        overlap_rejections = 0
        for idx, g in ordering:
            if self.config.serial and chosen:
                break
            a, b = g.qubits
            placed = False
            overlap_blocked = False
            for site in candidate_sites(
                a,
                b,
                self.locations,
                self.architecture,
                self._slm_sites,
                self.config.max_candidate_sites,
            ):
                if not plan.can_add(a, b, site):
                    if self.config.toggles.no_overlap:
                        relaxed = ConstraintToggles(
                            no_unintended_interaction=(
                                self.config.toggles.no_unintended_interaction
                            ),
                            preserve_order=self.config.toggles.preserve_order,
                            no_overlap=False,
                        )
                        saved = plan.toggles
                        plan.toggles = relaxed
                        if plan.can_add(a, b, site):
                            overlap_blocked = True
                        plan.toggles = saved
                    continue
                token = plan.snapshot()
                plan.add(a, b, site)
                if plan.is_legal():
                    chosen.append((idx, g, site))
                    placed = True
                    break
                plan.restore(token)
            if not placed and overlap_blocked:
                overlap_rejections += 1
        return plan, chosen, overlap_rejections

    def route(self, circuit: QuantumCircuit) -> RAAProgram:
        """Route *circuit* (CZ/1Q basis, all 2Q gates inter-array)."""
        t0 = time.perf_counter()
        dag = DAGCircuit(circuit)
        tracker = MovementTracker(
            architecture=self.architecture,
            locations=self.locations,
            params=self.architecture.params,
            cooling_threshold=self.config.cooling_threshold,
        )
        stages: list[Stage] = []
        overlap_rejections = 0

        while not dag.done:
            stage = Stage()
            # Step 1: flush frontier 1Q gates (Fig. 8 "Execute 1Q Gates").
            flushed = True
            while flushed:
                flushed = False
                for idx, g in dag.front_gates():
                    if g.is_one_qubit:
                        stage.one_qubit_gates.append(
                            RamanPulse(g.qubits[0], g.name, g.params)
                        )
                        dag.execute(idx)
                        flushed = True

            front_2q = [(idx, g) for idx, g in dag.front_gates() if g.is_two_qubit]
            if not front_2q:
                if stage.one_qubit_gates:
                    stages.append(stage)
                if dag.done:
                    break
                raise RoutingError("front layer stuck without 2Q gates")

            best: tuple[StagePlan, list[tuple[int, Gate, Site]], int] | None = None
            trials = max(1, self.config.ordering_trials)
            rng = np.random.default_rng(self.config.seed + len(stages))
            for trial in range(trials):
                ordering = list(front_2q)
                if trial > 0:
                    rng.shuffle(ordering)
                plan, chosen, rejections = self._select_gates(ordering)
                if best is None or len(chosen) > len(best[1]):
                    best = (plan, chosen, rejections)
                if len(chosen) == len(front_2q):
                    break
            plan, chosen, stage_overlap_rejections = best
            overlap_rejections += stage_overlap_rejections

            if not chosen:
                raise RoutingError(
                    "router stalled: no frontier gate is schedulable even alone"
                )

            moves, distances = tracker.apply_stage_maps(
                plan.row_maps, plan.col_maps
            )
            stage.moves = moves
            stage.atom_move_distance = distances
            for idx, g, site in chosen:
                stage.gates.append(
                    RydbergGate(
                        g.qubits[0],
                        g.qubits[1],
                        site,
                        n_vib=tracker.pair_n_vib(g.qubits[0], g.qubits[1]),
                        name=g.name,
                        params=g.params,
                    )
                )
                dag.execute(idx)
            stage.cooling = tracker.maybe_cool()
            stages.append(stage)

        return RAAProgram(
            stages=stages,
            num_qubits=circuit.num_qubits,
            qubit_locations=dict(self.locations),
            n_vib_final=dict(tracker.n_vib),
            atom_loss_log=list(tracker.loss_samples),
            num_transfers=0,
            overlap_rejections=overlap_rejections,
            compile_seconds=time.perf_counter() - t0,
        )
