"""High-parallelism AOD router (Sec. III-C, Fig. 8).

Iterates over the circuit DAG:

1. flush every frontier 1Q gate via Raman pulses;
2. greedily grow a maximal set of frontier 2Q gates that satisfies the three
   hardware constraints, assigning each an interaction coordinate;
3. emit the stage: AOD row/col moves (through the movement tracker, which
   accumulates heating), one global Rydberg pulse executing the whole set,
   and any cooling swap the heating triggered.

Gates rejected by a constraint stay in the DAG for a later stage.  The
router records which rejections were caused by constraint 3 (overlap) — the
statistic Fig. 24 plots.

Site selection: an AOD-SLM gate's site is fixed (the SLM atom's trap).  An
AOD-AOD gate may meet anywhere on the half-integer lattice; the router
offers, best-first, half-offset points near the two atoms' homes (these are
always >= 3 Rydberg radii from every SLM trap) and SLM-free integer sites.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.raa import AtomLocation, RAAArchitecture
from .constraints import (
    CandidateSet,
    ConstraintToggles,
    LocationIndex,
    Site,
    StagePlan,
    _snap_site,
)
from .movement import MovementTracker
from .program import ProgramStore, emission_store


class RoutingError(RuntimeError):
    """Raised when the router cannot make progress (a gate is unschedulable
    even alone, which cannot happen for inter-array circuits)."""


@dataclass
class RouterConfig:
    """Router knobs.

    ``serial`` schedules one 2Q gate per stage (Fig. 21 ablation baseline).
    ``max_candidate_sites`` bounds the AOD-AOD meeting-point search.
    ``cooling_threshold`` overrides the Table I default when set.
    """

    toggles: ConstraintToggles = field(default_factory=ConstraintToggles)
    serial: bool = False
    max_candidate_sites: int = 24
    cooling_threshold: float | None = None
    #: number of frontier orderings tried per stage; >1 keeps the largest
    #: legal gate set (used by the solver-proxy baselines).
    ordering_trials: int = 1
    seed: int = 11
    #: maintain the 1Q/2Q frontiers by per-sweep ``front_indices()`` rescans
    #: (the historical reference loop) instead of the incremental worklists
    #: fed by the newly-unlocked indices ``dag.execute`` returns.  Output is
    #: byte-identical either way — the worklist differential tests pin it —
    #: so this exists for those tests and debugging, not for end users.
    front_rescan: bool = False


#: ring offsets of the half-lattice diamond, shared across all calls
_DIAMOND_OFFSETS: dict[float, tuple[tuple[float, float], ...]] = {}


def _diamond_offsets(radius: float) -> tuple[tuple[float, float], ...]:
    offsets = _DIAMOND_OFFSETS.get(radius)
    if offsets is None:
        steps = int(radius * 2)
        if steps == 0:
            offsets = ((0.0, 0.0),)
        else:
            offsets = tuple(
                (-radius + i, dc_sign * (radius - abs(-radius + i)))
                for i in range(steps + 1)
                for dc_sign in (-1.0, 1.0)
            )
        _DIAMOND_OFFSETS[radius] = offsets
    return offsets


def candidate_sites(
    qubit_a: int,
    qubit_b: int,
    locations: dict[int, AtomLocation],
    architecture: RAAArchitecture,
    slm_sites: set[tuple[float, float]],
    limit: int,
    walk_cache: dict[Site, tuple[Site, ...]] | None = None,
) -> list[Site]:
    """Candidate interaction coordinates for a gate, best-first.

    *walk_cache*, when given, memoizes the diamond-walk collection phase
    per rounded base point (the walk depends only on the base, the fixed
    bounds/SLM sites, and *limit*); the exact-anchor distance sort still
    runs per call, so the returned order is unchanged.
    """
    la, lb = locations[qubit_a], locations[qubit_b]
    if la.is_slm:
        return [(float(la.row), float(la.col))]
    if lb.is_slm:
        return [(float(lb.row), float(lb.col))]
    # AOD-AOD: half-offset points near the two homes, then free integer sites.
    max_r = architecture.site_rows - 0.5
    max_c = architecture.site_cols - 0.5
    anchor_r = (la.row + lb.row) / 2.0
    anchor_c = (la.col + lb.col) / 2.0

    # Expanding half-lattice diamond around the anchor.
    base_r = round(anchor_r * 2) / 2.0
    base_c = round(anchor_c * 2) / 2.0
    cached = walk_cache.get((base_r, base_c)) if walk_cache is not None else None
    if cached is not None:
        points: list[Site] = list(cached)
    else:
        points = []
        seen: set[Site] = set()
        seen_add = seen.add
        points_append = points.append
        radius = 0.0
        max_radius = max(max_r, max_c) + 1.0
        while len(points) < limit and radius <= max_radius:
            offsets = _diamond_offsets(radius)
            for dr, dc in offsets:
                for r, c in (
                    (base_r + 0.5 + dr, base_c + 0.5 + dc),
                    (base_r + dr, base_c + dc),
                ):
                    if not (-0.5 <= r <= max_r and -0.5 <= c <= max_c):
                        continue
                    site = (r, c)
                    if site in seen or site in slm_sites:
                        continue
                    seen_add(site)
                    points_append(site)
            radius += 0.5
        if walk_cache is not None:
            walk_cache[(base_r, base_c)] = tuple(points)
    keyed = [
        ((p[0] - anchor_r) ** 2 + (p[1] - anchor_c) ** 2, p) for p in points
    ]
    keyed.sort()
    return [p for _d, p in keyed[:limit]]


class HighParallelismRouter:
    """Schedules a transpiled multipartite circuit onto RAA stages."""

    def __init__(
        self,
        architecture: RAAArchitecture,
        locations: dict[int, AtomLocation],
        config: RouterConfig | None = None,
    ) -> None:
        self.architecture = architecture
        self.locations = locations
        self.config = config or RouterConfig()
        self._slm_sites = {
            (float(loc.row), float(loc.col))
            for loc in locations.values()
            if loc.is_slm
        }
        # Location-epoch artifacts: ``locations`` is fixed for the lifetime
        # of the router, so the candidate interaction sites per qubit pair,
        # the static location index, and the scratch plan persist across
        # route() calls as well as across stages and trials.
        self._site_cache: dict[tuple, CandidateSet] = {}
        #: diamond-walk collection memo, keyed by rounded base point (the
        #: walk is a pure function of the base given the fixed bounds, SLM
        #: sites, and candidate limit — all router-lifetime constants).
        self._walk_cache: dict[Site, tuple[Site, ...]] = {}
        self._plan_index = LocationIndex(locations)
        self._scratch_plan: StagePlan | None = None

    def _candidate_sites(self, qubit_a: int, qubit_b: int) -> CandidateSet:
        """Cached candidate sites for one pair (locations are fixed for the
        duration of a route() call).

        The raw coordinate is what ends up on the emitted
        :class:`RydbergGate`; the snapped one is what the constraint
        engine compares against, pre-computed once instead of per probe,
        along with the coordinate extremes the engine's whole-scan
        shortcuts test against and the probe digest its index-side
        candidate pruning consults.
        """
        key = (qubit_a, qubit_b)
        sites = self._site_cache.get(key)
        if sites is None:
            la = self.locations[qubit_a]
            lb = self.locations[qubit_b]
            anchor_key = None
            if la.is_aod and lb.is_aod:
                # AOD-AOD candidates depend only on the anchor midpoint, so
                # pairs sharing it share one (read-only) candidate set.
                anchor_key = ("anchor", la.row + lb.row, la.col + lb.col)
                sites = self._site_cache.get(anchor_key)
                if sites is not None:
                    self._site_cache[key] = sites
                    return sites
            pairs = [
                (site, _snap_site(site[0], site[1]))
                for site in candidate_sites(
                    qubit_a,
                    qubit_b,
                    self.locations,
                    self.architecture,
                    self._slm_sites,
                    self.config.max_candidate_sites,
                    self._walk_cache,
                )
            ]
            sites = CandidateSet.from_pairs(pairs)
            self._site_cache[key] = sites
            if anchor_key is not None:
                self._site_cache[anchor_key] = sites
        return sites

    def _select_gates(
        self, ordering: list[tuple[int, Gate]]
    ) -> tuple[StagePlan, list[tuple[int, Gate, Site]], int]:
        """Greedily build one stage's legal parallel gate set from *ordering*."""
        if self.config.ordering_trials <= 1:
            # Single-trial stages reuse one scratch plan via the wholesale
            # reset() — cheaper than rebuilding every per-stage structure.
            plan = self._scratch_plan
            if plan is None:
                plan = self._scratch_plan = StagePlan(
                    architecture=self.architecture,
                    locations=self.locations,
                    toggles=self.config.toggles,
                    index=self._plan_index,
                )
            else:
                plan.reset()
        else:
            plan = StagePlan(
                architecture=self.architecture,
                locations=self.locations,
                toggles=self.config.toggles,
                index=self._plan_index,
            )
        chosen: list[tuple[int, Gate, Site]] = []
        overlap_rejections = 0
        serial = self.config.serial
        place_pair = plan.place_pair
        site_cache = self._site_cache
        busy = plan.busy_qubits
        for idx, g in ordering:
            if serial and chosen:
                break
            a, b = g.qubits
            if a in busy or b in busy:
                # place_pair would return (None, False) without probing;
                # skipping the call keeps the result and the Fig. 24
                # statistic identical while saving the dispatch.
                continue
            candidates = site_cache.get((a, b))
            if candidates is None:
                candidates = self._candidate_sites(a, b)
            site, overlap_blocked = place_pair(a, b, candidates)
            if site is not None:
                chosen.append((idx, g, site))
            elif overlap_blocked:
                overlap_rejections += 1
        return plan, chosen, overlap_rejections

    def route(self, circuit: QuantumCircuit) -> ProgramStore:
        """Route *circuit* (CZ/1Q basis, all 2Q gates inter-array).

        Emission is columnar: every stage record — Raman pulses, AOD line
        moves, Rydberg gates, cooling events, per-atom displacements — is
        appended as scalars to the returned :class:`ProgramStore`'s flat
        columns, and a stage closes with one offset-table append.  No
        ``Stage``/``Move``/``RydbergGate`` objects exist on this path; the
        store's lazy views materialize them on demand for consumers.

        ``emit_seconds`` on the result accumulates the wall-clock of the
        per-stage *record-keeping* blocks — Raman-pulse emission,
        movement/heating emission, gate emission, cooling records, and the
        stage close — excluding the constraint search and the DAG
        bookkeeping (front scans, ``execute``), which are scheduling work,
        not representation work.  This is the emission-phase cost tracked
        by ``repro bench --perf``; the PR 3 baselines there were measured
        with the same window over the object-building emitter.
        """
        perf = time.perf_counter
        t0 = perf()
        dag = DAGCircuit(circuit)
        tracker = MovementTracker(
            architecture=self.architecture,
            locations=self.locations,
            params=self.architecture.params,
            cooling_threshold=self.config.cooling_threshold,
        )
        # spills closed stages to disk when REPRO_PROGRAM_SPILL is set, so
        # emission RSS stops scaling with circuit size
        store = emission_store(circuit.num_qubits)
        overlap_rejections = 0
        gates = dag.gates
        is_2q = dag.two_qubit
        is_1q = dag.one_qubit
        trials = max(1, self.config.ordering_trials)
        emit = 0.0
        probe = 0.0

        raman_qubit_append = store.raman_qubit.append
        raman_name_append = store.raman_name.append
        raman_params_append = store.raman_params.append
        gate_a_append = store.gate_a.append
        gate_b_append = store.gate_b.append
        site_r_append = store.gate_site_r.append
        site_c_append = store.gate_site_c.append
        n_vib_append = store.gate_n_vib.append
        gate_name_append = store.gate_name.append
        gate_params_append = store.gate_params.append
        cool_aod_append = store.cool_aod.append
        cool_atoms_append = store.cool_atoms.append
        end_stage = store.end_stage
        emit_stage = tracker.bind_store(store)
        n_vib = tracker.n_vib
        array_of = tracker._array_of
        maybe_cool = tracker.maybe_cool
        dag_execute = dag.execute
        rescan = self.config.front_rescan

        # Incremental frontiers: the initial front seeds a sorted 1Q
        # worklist and a sorted 2Q front list; afterwards both are fed by
        # the newly-unlocked indices ``dag.execute`` returns, replacing the
        # per-sweep ``front_indices()`` rescans.  Each 1Q sweep executes
        # exactly the gates that were ready when it started (gates unlocked
        # mid-sweep wait for the next sweep, like the rescan snapshot), and
        # every worklist is kept sorted by gate index, so emitted-pulse
        # order matches the historical copy-and-filter loop index for
        # index.  Gates that are neither 1Q nor 2Q never enter a worklist,
        # so a stuck front still raises the RoutingError below.
        ready_1q: list[int] = []
        #: sorted ``(idx, gate)`` 2Q frontier, maintained incrementally —
        #: index uniqueness means tuple comparisons never reach the gate
        front_2q: list[tuple[int, Gate]] = []
        if not rescan:
            for idx in dag.front_indices():
                if is_1q[idx]:
                    ready_1q.append(idx)
                elif is_2q[idx]:
                    front_2q.append((idx, gates[idx]))

        while not dag.done:
            # Step 1: flush frontier 1Q gates (Fig. 8 "Execute 1Q Gates").
            # Batching the pulse records before the DAG pops keeps the
            # historical pulse order.
            while True:
                if rescan:
                    todo = [idx for idx in dag.front_indices() if is_1q[idx]]
                else:
                    todo = ready_1q
                if not todo:
                    break
                t_emit = perf()
                for idx in todo:
                    g = gates[idx]
                    raman_qubit_append(g.qubits[0])
                    raman_name_append(g.name)
                    raman_params_append(g.params)
                emit += perf() - t_emit
                if rescan:
                    for idx in todo:
                        dag_execute(idx)
                else:
                    ready_1q = []
                    next_1q_append = ready_1q.append
                    for idx in todo:
                        for succ in dag_execute(idx):
                            if is_1q[succ]:
                                next_1q_append(succ)
                            elif is_2q[succ]:
                                insort(front_2q, (succ, gates[succ]))
                    ready_1q.sort()

            if rescan:
                front_2q = [
                    (idx, gates[idx]) for idx in dag.front_indices() if is_2q[idx]
                ]
            if not front_2q:
                if store.open_raman_count:
                    store.end_stage()
                if dag.done:
                    break
                raise RoutingError("front layer stuck without 2Q gates")

            best: tuple[StagePlan, list[tuple[int, Gate, Site]], int] | None = None
            rng = (
                np.random.default_rng(self.config.seed + store.num_stages)
                if trials > 1
                else None
            )
            t_probe = perf()
            for trial in range(trials):
                # _select_gates only iterates, and the frontier lists are
                # never mutated while a trial runs, so the single-trial
                # stage skips the per-sweep copy.
                ordering = front_2q if trials == 1 else list(front_2q)
                if trial > 0:
                    rng.shuffle(ordering)
                plan, chosen, rejections = self._select_gates(ordering)
                if best is None or len(chosen) > len(best[1]):
                    best = (plan, chosen, rejections)
                if len(chosen) == len(front_2q):
                    break
            probe += perf() - t_probe
            plan, chosen, stage_overlap_rejections = best
            overlap_rejections += stage_overlap_rejections

            if not chosen:
                raise RoutingError(
                    "router stalled: no frontier gate is schedulable even alone"
                )

            t_emit = perf()
            emit_stage(plan.row_maps, plan.col_maps)
            for _idx, g, site in chosen:
                qubits = g.qubits
                qa = qubits[0]
                qb = qubits[1]
                gate_a_append(qa)
                gate_b_append(qb)
                site_r_append(site[0])
                site_c_append(site[1])
                # pair_n_vib inlined: AOD-touching endpoints contribute, in
                # (a, b) order — identical float sum
                n_vib_append(
                    (n_vib[qa] if array_of[qa] else 0.0)
                    + (n_vib[qb] if array_of[qb] else 0.0)
                )
                gate_name_append(g.name)
                gate_params_append(g.params)
            for ev in maybe_cool():
                cool_aod_append(ev.aod)
                cool_atoms_append(ev.num_atoms)
            end_stage()
            emit += perf() - t_emit
            if rescan:
                for idx, _g, _site in chosen:
                    dag_execute(idx)
            else:
                for idx, _g, _site in chosen:
                    # (idx,) sorts immediately before (idx, gate)
                    del front_2q[bisect_left(front_2q, (idx,))]
                    for succ in dag_execute(idx):
                        if is_1q[succ]:
                            ready_1q.append(succ)
                        elif is_2q[succ]:
                            insort(front_2q, (succ, gates[succ]))
                ready_1q.sort()

        store.qubit_locations = dict(self.locations)
        # n_vib is slot-indexed; key the final snapshot like the historical
        # dict (locations iteration order)
        store.n_vib_final = {q: n_vib[q] for q in self.locations}
        store.atom_loss_log = list(tracker.loss_samples)
        store.overlap_rejections = overlap_rejections
        store.emit_seconds = emit
        store.probe_seconds = probe
        store.compile_seconds = perf() - t0
        return store
