"""JSON (de)serialization of compiled RAA programs.

The wire format is a plain-JSON document a control system (or a later
session) can consume: architecture geometry, per-qubit trap assignments,
and the stage list with moves, pulses, gates, and cooling events.  Round-
tripping preserves every field the fidelity model reads.
"""

from __future__ import annotations

import json
from typing import Any

from ..hardware.raa import AtomLocation
from .instructions import (
    CoolingEvent,
    Move,
    RAAProgram,
    RamanPulse,
    RydbergGate,
    Stage,
)

FORMAT_VERSION = 1


def program_to_dict(program: RAAProgram) -> dict[str, Any]:
    """Lower a program to JSON-ready primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "num_qubits": program.num_qubits,
        "qubit_locations": {
            str(q): [loc.array, loc.row, loc.col]
            for q, loc in program.qubit_locations.items()
        },
        "n_vib_final": {str(q): v for q, v in program.n_vib_final.items()},
        "atom_loss_log": list(program.atom_loss_log),
        "num_transfers": program.num_transfers,
        "overlap_rejections": program.overlap_rejections,
        "compile_seconds": program.compile_seconds,
        "stages": [
            {
                "one_qubit_gates": [
                    [p.qubit, p.name, list(p.params)]
                    for p in stage.one_qubit_gates
                ],
                "moves": [
                    [m.aod, m.axis, m.index, m.start, m.end]
                    for m in stage.moves
                ],
                "gates": [
                    {
                        "a": g.qubit_a,
                        "b": g.qubit_b,
                        "site": list(g.site),
                        "n_vib": g.n_vib,
                        "name": g.name,
                        "params": list(g.params),
                    }
                    for g in stage.gates
                ],
                "cooling": [[c.aod, c.num_atoms] for c in stage.cooling],
                "atom_move_distance": {
                    str(q): d for q, d in stage.atom_move_distance.items()
                },
            }
            for stage in program.stages
        ],
    }


def program_from_dict(doc: dict[str, Any]) -> RAAProgram:
    """Rebuild a program from :func:`program_to_dict` output."""
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported program format version {version!r}")
    stages = []
    for sd in doc["stages"]:
        stages.append(
            Stage(
                one_qubit_gates=[
                    RamanPulse(q, name, tuple(params))
                    for q, name, params in sd["one_qubit_gates"]
                ],
                moves=[
                    Move(aod, axis, index, start, end)
                    for aod, axis, index, start, end in sd["moves"]
                ],
                gates=[
                    RydbergGate(
                        gd["a"],
                        gd["b"],
                        tuple(gd["site"]),
                        n_vib=gd["n_vib"],
                        name=gd.get("name", "cz"),
                        params=tuple(gd.get("params", ())),
                    )
                    for gd in sd["gates"]
                ],
                cooling=[
                    CoolingEvent(aod, num_atoms)
                    for aod, num_atoms in sd["cooling"]
                ],
                atom_move_distance={
                    int(q): d for q, d in sd["atom_move_distance"].items()
                },
            )
        )
    return RAAProgram(
        stages=stages,
        num_qubits=doc["num_qubits"],
        qubit_locations={
            int(q): AtomLocation(*loc)
            for q, loc in doc["qubit_locations"].items()
        },
        n_vib_final={int(q): v for q, v in doc["n_vib_final"].items()},
        atom_loss_log=list(doc["atom_loss_log"]),
        num_transfers=doc["num_transfers"],
        overlap_rejections=doc["overlap_rejections"],
        compile_seconds=doc["compile_seconds"],
    )


def dumps(program: RAAProgram, indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(program_to_dict(program), indent=indent)


def loads(text: str) -> RAAProgram:
    """Deserialize from a JSON string."""
    return program_from_dict(json.loads(text))
