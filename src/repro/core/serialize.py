"""JSON (de)serialization of compiled RAA programs.

Two JSON wire formats (a third, binary format lives in
:mod:`repro.core.binformat` — the "v3" packed-column codec that encodes
the same logical v2 document as typed little-endian blobs):

* **v1 (object)** — the historical stage-list document: one dict per stage,
  one dict per gate.  Decodes to a legacy
  :class:`~repro.core.instructions.RAAProgram`.
* **v2 (columnar)** — the structure-of-arrays document matching
  :class:`~repro.core.program.ProgramStore`: flat arrays of numbers per
  field plus the CSR stage-offset table.  For large programs this removes
  the per-gate dict overhead (no repeated keys) and encodes/decodes in
  bulk; it is the format the service wire's program codec uses
  (:func:`repro.service.wire.encode_program`).  Decodes to a
  :class:`ProgramStore`.

``json`` emits floats with ``repr``-exact shortest round-trip text, so both
formats preserve every field the fidelity model reads bit-for-bit.
:func:`program_to_dict` picks the format matching the representation it is
given (override with ``columnar=``); :func:`program_from_dict` dispatches
on ``format_version``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from ..hardware.raa import AtomLocation
from .instructions import (
    CoolingEvent,
    Move,
    RAAProgram,
    RamanPulse,
    RydbergGate,
    Stage,
)
from .program import AXES, Program, ProgramStore, SpillingProgramStore

FORMAT_VERSION = 1
COLUMNAR_FORMAT_VERSION = 2

#: ``columns`` table layout of the v2 document: family key -> column keys.
#: Shared by the whole-document codec below and the stage-range chunk
#: slicing used for streamed program transfers.
DOC_FAMILIES: dict[str, tuple[str, ...]] = {
    "raman": ("qubit", "name", "params"),
    "moves": ("aod", "axis", "index", "start", "end"),
    "gates": ("a", "b", "site_r", "site_c", "n_vib", "name", "params"),
    "cooling": ("aod", "num_atoms"),
    "amd": ("qubit", "dist"),
}


def _common_header(program: Program) -> dict[str, Any]:
    return {
        "num_qubits": program.num_qubits,
        "qubit_locations": {
            str(q): [loc.array, loc.row, loc.col]
            for q, loc in program.qubit_locations.items()
        },
        "n_vib_final": {str(q): v for q, v in program.n_vib_final.items()},
        "atom_loss_log": list(program.atom_loss_log),
        "num_transfers": program.num_transfers,
        "overlap_rejections": program.overlap_rejections,
        "compile_seconds": program.compile_seconds,
    }


def program_to_dict(
    program: Program, *, columnar: bool | None = None
) -> dict[str, Any]:
    """Lower a program to JSON-ready primitives.

    ``columnar=None`` (the default) keeps the representation: a
    :class:`ProgramStore` becomes a v2 columnar document, a legacy
    :class:`RAAProgram` a v1 stage-list document — so a round trip always
    returns the type it was fed.
    """
    if columnar is None:
        columnar = isinstance(program, ProgramStore)
    if columnar:
        if isinstance(program, SpillingProgramStore):
            # densify: whole-document serialization needs every column,
            # and the spilled columns only hold the in-memory tail
            store = program.collect()
        elif isinstance(program, ProgramStore):
            store = program
        else:
            store = ProgramStore.from_program(program)
        # every column is snapshotted (like the v1 path) so the document
        # neither tracks later store mutations nor exposes the store to
        # callers editing the payload
        return {
            "format_version": COLUMNAR_FORMAT_VERSION,
            **_common_header(store),
            "emit_seconds": store.emit_seconds,
            "columns": {
                "raman": {
                    "qubit": list(store.raman_qubit),
                    "name": list(store.raman_name),
                    "params": [list(p) for p in store.raman_params],
                },
                "moves": {
                    "aod": list(store.move_aod),
                    "axis": [AXES.index(a) for a in store.move_axis],
                    "index": list(store.move_index),
                    "start": list(store.move_start),
                    "end": list(store.move_end),
                },
                "gates": {
                    "a": list(store.gate_a),
                    "b": list(store.gate_b),
                    "site_r": list(store.gate_site_r),
                    "site_c": list(store.gate_site_c),
                    "n_vib": list(store.gate_n_vib),
                    "name": list(store.gate_name),
                    "params": [list(p) for p in store.gate_params],
                },
                "cooling": {
                    "aod": list(store.cool_aod),
                    "num_atoms": list(store.cool_atoms),
                },
                "amd": {
                    "qubit": list(store.amd_qubit),
                    "dist": list(store.amd_dist),
                },
            },
            "stage_offsets": {
                "raman": list(store.off_raman),
                "moves": list(store.off_move),
                "gates": list(store.off_gate),
                "cooling": list(store.off_cool),
                "amd": list(store.off_amd),
            },
        }
    return {
        "format_version": FORMAT_VERSION,
        **_common_header(program),
        "stages": [
            {
                "one_qubit_gates": [
                    [p.qubit, p.name, list(p.params)]
                    for p in stage.one_qubit_gates
                ],
                "moves": [
                    [m.aod, m.axis, m.index, m.start, m.end]
                    for m in stage.moves
                ],
                "gates": [
                    {
                        "a": g.qubit_a,
                        "b": g.qubit_b,
                        "site": list(g.site),
                        "n_vib": g.n_vib,
                        "name": g.name,
                        "params": list(g.params),
                    }
                    for g in stage.gates
                ],
                "cooling": [[c.aod, c.num_atoms] for c in stage.cooling],
                "atom_move_distance": {
                    str(q): d for q, d in stage.atom_move_distance.items()
                },
            }
            for stage in program.stages
        ],
    }


def _decode_v1(doc: dict[str, Any]) -> RAAProgram:
    stages = []
    for sd in doc["stages"]:
        stages.append(
            Stage(
                one_qubit_gates=[
                    RamanPulse(q, name, tuple(params))
                    for q, name, params in sd["one_qubit_gates"]
                ],
                moves=[
                    Move(aod, axis, index, start, end)
                    for aod, axis, index, start, end in sd["moves"]
                ],
                gates=[
                    RydbergGate(
                        gd["a"],
                        gd["b"],
                        tuple(gd["site"]),
                        n_vib=gd["n_vib"],
                        name=gd.get("name", "cz"),
                        params=tuple(gd.get("params", ())),
                    )
                    for gd in sd["gates"]
                ],
                cooling=[
                    CoolingEvent(aod, num_atoms)
                    for aod, num_atoms in sd["cooling"]
                ],
                atom_move_distance={
                    int(q): d for q, d in sd["atom_move_distance"].items()
                },
            )
        )
    return RAAProgram(
        stages=stages,
        num_qubits=doc["num_qubits"],
        qubit_locations={
            int(q): AtomLocation(*loc)
            for q, loc in doc["qubit_locations"].items()
        },
        n_vib_final={int(q): v for q, v in doc["n_vib_final"].items()},
        atom_loss_log=list(doc["atom_loss_log"]),
        num_transfers=doc["num_transfers"],
        overlap_rejections=doc["overlap_rejections"],
        compile_seconds=doc["compile_seconds"],
    )


def _decode_v2(doc: dict[str, Any]) -> ProgramStore:
    cols = doc["columns"]
    offs = doc["stage_offsets"]
    raman, moves, gates = cols["raman"], cols["moves"], cols["gates"]
    cooling, amd = cols["cooling"], cols["amd"]
    return ProgramStore(
        num_qubits=doc["num_qubits"],
        qubit_locations={
            int(q): AtomLocation(*loc)
            for q, loc in doc["qubit_locations"].items()
        },
        n_vib_final={int(q): v for q, v in doc["n_vib_final"].items()},
        atom_loss_log=list(doc["atom_loss_log"]),
        num_transfers=doc["num_transfers"],
        overlap_rejections=doc["overlap_rejections"],
        compile_seconds=doc["compile_seconds"],
        emit_seconds=doc.get("emit_seconds", 0.0),
        raman_qubit=list(raman["qubit"]),
        raman_name=list(raman["name"]),
        raman_params=[tuple(p) for p in raman["params"]],
        move_aod=list(moves["aod"]),
        move_axis=[AXES[a] for a in moves["axis"]],
        move_index=list(moves["index"]),
        move_start=list(moves["start"]),
        move_end=list(moves["end"]),
        gate_a=list(gates["a"]),
        gate_b=list(gates["b"]),
        gate_site_r=list(gates["site_r"]),
        gate_site_c=list(gates["site_c"]),
        gate_n_vib=list(gates["n_vib"]),
        gate_name=list(gates["name"]),
        gate_params=[tuple(p) for p in gates["params"]],
        cool_aod=list(cooling["aod"]),
        cool_atoms=list(cooling["num_atoms"]),
        amd_qubit=list(amd["qubit"]),
        amd_dist=list(amd["dist"]),
        off_raman=list(offs["raman"]),
        off_move=list(offs["moves"]),
        off_gate=list(offs["gates"]),
        off_cool=list(offs["cooling"]),
        off_amd=list(offs["amd"]),
    )


def program_from_dict(doc: dict[str, Any]) -> Program:
    """Rebuild a program from :func:`program_to_dict` output (either format)."""
    version = doc.get("format_version")
    if version == FORMAT_VERSION:
        return _decode_v1(doc)
    if version == COLUMNAR_FORMAT_VERSION:
        return _decode_v2(doc)
    raise ValueError(f"unsupported program format version {version!r}")


def program_doc_header(doc: dict[str, Any]) -> dict[str, Any]:
    """The v2 document minus its column payload (streamed first, alone).

    Carries everything :func:`store_from_program_header` needs to seed an
    empty :class:`ProgramStore` that the stage-range chunks then extend.
    """
    if doc.get("format_version") != COLUMNAR_FORMAT_VERSION:
        raise ValueError(
            "streaming requires a v2 columnar document, got format_version "
            f"{doc.get('format_version')!r}"
        )
    return {
        k: v for k, v in doc.items() if k not in ("columns", "stage_offsets")
    }


def program_doc_stages(doc: dict[str, Any]) -> int:
    """Number of closed stages in a v2 columnar document."""
    return len(doc["stage_offsets"]["gates"]) - 1


def iter_program_doc_chunks(
    doc: dict[str, Any], stages_per_chunk: int
) -> "Iterator[dict[str, Any]]":
    """Slice a v2 columnar document into self-contained stage-range chunks.

    Operates on the raw document (no :class:`ProgramStore` is built), so a
    server can stream a spooled program without decoding it.  Each chunk
    has the :meth:`ProgramStore.chunk_doc` shape: ``stages``, ``columns``,
    and ``stage_offsets`` rebased to 0.
    """
    if doc.get("format_version") != COLUMNAR_FORMAT_VERSION:
        raise ValueError(
            "streaming requires a v2 columnar document, got format_version "
            f"{doc.get('format_version')!r}"
        )
    step = max(1, int(stages_per_chunk))
    total = program_doc_stages(doc)
    all_offs = doc["stage_offsets"]
    all_cols = doc["columns"]
    for lo in range(0, total, step):
        hi = min(lo + step, total)
        offsets: dict[str, list[int]] = {}
        columns: dict[str, dict[str, list]] = {}
        for fam, keys in DOC_FAMILIES.items():
            off = all_offs[fam]
            base, top = off[lo], off[hi]
            offsets[fam] = [o - base for o in off[lo : hi + 1]]
            columns[fam] = {k: all_cols[fam][k][base:top] for k in keys}
        yield {"stages": hi - lo, "columns": columns, "stage_offsets": offsets}


def store_header_doc(store: ProgramStore) -> dict[str, Any]:
    """The v2 header document for a store, without building the columns.

    Byte-identical (same keys, same order) to
    ``program_doc_header(program_to_dict(store))`` — the streaming server
    uses it to open a stream from a binary-spooled program without ever
    materializing the v2 column tables.
    """
    return {
        "format_version": COLUMNAR_FORMAT_VERSION,
        **_common_header(store),
        "emit_seconds": store.emit_seconds,
    }


def store_from_program_header(header: dict[str, Any]) -> ProgramStore:
    """An empty :class:`ProgramStore` seeded from :func:`program_doc_header`.

    Feed the streamed chunks to :meth:`ProgramStore.extend_from_chunk`; the
    assembled store is bit-identical to decoding the whole v2 document.
    """
    return ProgramStore(
        num_qubits=header["num_qubits"],
        qubit_locations={
            int(q): AtomLocation(*loc)
            for q, loc in header["qubit_locations"].items()
        },
        n_vib_final={int(q): v for q, v in header["n_vib_final"].items()},
        atom_loss_log=list(header["atom_loss_log"]),
        num_transfers=header["num_transfers"],
        overlap_rejections=header["overlap_rejections"],
        compile_seconds=header["compile_seconds"],
        emit_seconds=header.get("emit_seconds", 0.0),
    )


def dumps(
    program: Program,
    indent: int | None = None,
    *,
    columnar: bool | None = None,
) -> str:
    """Serialize to a JSON string (format chosen like :func:`program_to_dict`)."""
    return json.dumps(program_to_dict(program, columnar=columnar), indent=indent)


def loads(text: str) -> Program:
    """Deserialize from a JSON string."""
    return program_from_dict(json.loads(text))
