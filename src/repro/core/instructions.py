"""RAA instruction set and the compiled program container.

The router lowers a circuit into *stages*.  Each stage is one iteration of
the high-parallelism router (Fig. 8): an optional Raman step executing 1Q
gates, a set of AOD row/column moves, and one global Rydberg pulse executing
the stage's parallel two-qubit gates.  Cooling events (Sec. IV) are recorded
on the stage where they fire.

The :class:`RAAProgram` aggregates the statistics every experiment needs:
gate counts, 2Q depth (= number of Rydberg stages), wall-clock execution
time, per-atom movement/heating history, transfers, and cooling events.

``RAAProgram`` is the *object-graph* representation.  The router now emits
the columnar :class:`~repro.core.program.ProgramStore`, which exposes the
same API (these dataclasses materialize on demand as its lazy stage
views); ``RAAProgram`` remains the materialized form — v1 serialization,
conversion targets, and hand-built programs in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.parameters import HardwareParams
from ..hardware.raa import AtomLocation


@dataclass(frozen=True, slots=True)
class RamanPulse:
    """Individually-addressed single-qubit gate on *qubit* (front laser)."""

    qubit: int
    name: str
    params: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class Move:
    """Move of one AOD row or column.

    ``axis`` is ``"row"`` or ``"col"``; ``index`` identifies the AOD line;
    positions are in site units (pitch = ``atom_distance``).
    """

    aod: int
    axis: str
    index: int
    start: float
    end: float

    @property
    def distance_sites(self) -> float:
        return abs(self.end - self.start)


@dataclass(frozen=True, slots=True)
class RydbergGate:
    """One two-qubit CZ executed by the global Rydberg pulse.

    ``site`` is the interaction coordinate (row, col) in site units; qubit
    ids are circuit slots.  ``n_vib`` records the pair's vibrational quantum
    number at execution time (Sec. IV, Eq. 2).
    """

    qubit_a: int
    qubit_b: int
    site: tuple[float, float]
    n_vib: float = 0.0
    name: str = "cz"
    params: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class CoolingEvent:
    """Swap an overheated AOD array with a pre-cooled one (Sec. IV).

    Costs two CZ gates per atom in the array; resets every atom's n_vib.
    """

    aod: int
    num_atoms: int

    @property
    def num_cz(self) -> int:
        return 2 * self.num_atoms


@dataclass(slots=True)
class Stage:
    """One router iteration: 1Q flush + moves + global Rydberg pulse."""

    one_qubit_gates: list[RamanPulse] = field(default_factory=list)
    moves: list[Move] = field(default_factory=list)
    gates: list[RydbergGate] = field(default_factory=list)
    cooling: list[CoolingEvent] = field(default_factory=list)
    #: per-atom Euclidean move distance in metres, keyed by qubit slot
    atom_move_distance: dict[int, float] = field(default_factory=dict)

    @property
    def has_movement(self) -> bool:
        return bool(self.moves)

    @property
    def max_move_distance_sites(self) -> float:
        return max((m.distance_sites for m in self.moves), default=0.0)

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock stage time: Raman + move + Rydberg (+ cooling swap)."""
        t = 0.0
        if self.one_qubit_gates:
            t += params.t_1q
        if self.moves:
            t += params.t_per_move
        if self.gates:
            t += params.t_2q
        if self.cooling:
            # Cooling performs 2 sequential CZ transfers plus array exchange,
            # modelled as one extra move plus the two CZ times.
            t += params.t_per_move + 2 * params.t_2q
        return t


@dataclass
class RAAProgram:
    """A compiled RAA program plus compile-time bookkeeping.

    Attributes
    ----------
    stages:
        The executable stage list.
    num_qubits:
        Logical circuit width.
    qubit_locations:
        Final slot -> :class:`AtomLocation` placement (home positions).
    n_vib_final:
        Per-qubit vibrational quantum number after the last stage.
    atom_loss_log:
        ``(n_vib_before_move,)`` samples for every (atom, move) event —
        consumed by the movement-loss fidelity term.
    num_transfers:
        SLM<->AOD atom transfers performed (0 in standard Atomique flow;
        nonzero for baselines that shuttle atoms).
    overlap_rejections:
        Times a gate could not join a stage due to constraint 3 (Fig. 24).
    """

    stages: list[Stage]
    num_qubits: int
    qubit_locations: dict[int, AtomLocation]
    n_vib_final: dict[int, float] = field(default_factory=dict)
    atom_loss_log: list[float] = field(default_factory=list)
    num_transfers: int = 0
    overlap_rejections: int = 0
    compile_seconds: float = 0.0

    # -- headline metrics ------------------------------------------------------

    @property
    def num_2q_gates(self) -> int:
        """Two-qubit gates executed by Rydberg pulses (cooling CZs excluded)."""
        return sum(len(s.gates) for s in self.stages)

    @property
    def num_cooling_cz(self) -> int:
        """CZ gates spent on cooling swaps."""
        return sum(ev.num_cz for s in self.stages for ev in s.cooling)

    @property
    def num_1q_gates(self) -> int:
        return sum(len(s.one_qubit_gates) for s in self.stages)

    @property
    def two_qubit_depth(self) -> int:
        """Number of stages whose Rydberg pulse executes at least one gate."""
        return sum(1 for s in self.stages if s.gates)

    @property
    def num_moves(self) -> int:
        return sum(len(s.moves) for s in self.stages)

    def total_move_distance(self, params: HardwareParams) -> float:
        """Total AOD line travel in metres."""
        return sum(
            m.distance_sites * params.atom_distance
            for s in self.stages
            for m in s.moves
        )

    def avg_move_distance(self, params: HardwareParams) -> float:
        """Mean per-stage line travel (metres); Fig. 20's 'Avg. Moving Distance'."""
        moving = [s for s in self.stages if s.moves]
        if not moving:
            return 0.0
        return self.total_move_distance(params) / len(moving)

    def execution_time(self, params: HardwareParams) -> float:
        """Wall-clock execution time in seconds."""
        return sum(s.duration(params) for s in self.stages)

    @property
    def num_cooling_events(self) -> int:
        return sum(len(s.cooling) for s in self.stages)

    def gate_pairs(self) -> list[tuple[int, int]]:
        """All executed 2Q pairs in order (for equivalence checks)."""
        return [
            (g.qubit_a, g.qubit_b) for s in self.stages for g in s.gates
        ]
