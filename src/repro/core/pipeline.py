"""Pass-pipeline compiler architecture: the Fig. 3 flow as composable passes.

The monolithic ``AtomiqueCompiler.compile`` flow is expressed as five
passes over a shared :class:`CompilationContext`:

1. :class:`LowerToNativePass`   — lower to the RAA native basis {CZ, U3};
2. :class:`ArrayMapperPass`     — greedy MAX k-cut qubit-array mapping
   (Algorithm 1);
3. :class:`SabreSwapPass`       — SABRE SWAP insertion on the multipartite
   coupling graph (Fig. 5), SWAPs decomposed to 3 CZ + 1Q;
4. :class:`AtomMapperPass`      — load-balance SLM + aligned AOD placement
   (Figs. 6-7);
5. :class:`StageRouterPass`     — high-parallelism routing into stages
   (Figs. 8-11).

:class:`PassPipeline` executes a declared pass list, records per-pass
wall-time in ``context.pass_seconds``, and assembles the usual
:class:`~repro.core.compiler.CompileResult`.  The default pipeline is
bit-identical to the pre-refactor monolithic compiler; custom pipelines can
reorder, drop, or insert passes (instrumentation, caching, alternative
mappers) without touching the compiler facade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..hardware.raa import AtomLocation, RAAArchitecture
from ..transpile.layout import Layout
from ..transpile.sabre import sabre_route
from .array_mapper import map_qubits_to_arrays
from .atom_mapper import map_qubits_to_atoms
from .instructions import RAAProgram
from .router import HighParallelismRouter

if TYPE_CHECKING:  # avoid a module-level cycle with .compiler
    from .compiler import AtomiqueConfig, CompileResult


class PipelineError(RuntimeError):
    """A pass ran before the context field it depends on was produced."""


@dataclass
class CompilationContext:
    """Mutable state threaded through the passes of one compile.

    ``circuit``, ``architecture`` and ``config`` are inputs; everything
    else is produced by passes.  ``pass_seconds`` maps each executed pass
    name to its wall-clock time, in execution order.  ``artifacts`` is a
    free-form scratch area for custom passes.
    """

    circuit: QuantumCircuit
    architecture: RAAArchitecture
    config: "AtomiqueConfig"

    native: QuantumCircuit | None = None
    array_of_qubit: list[int] | None = None
    transpiled: QuantumCircuit | None = None
    num_swaps: int | None = None
    final_layout: dict[int, int] | None = None
    locations: dict[int, AtomLocation] | None = None
    program: RAAProgram | None = None

    pass_seconds: dict[str, float] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)

    def require(self, name: str) -> Any:
        """Fetch a context field, failing clearly if no pass produced it."""
        value = getattr(self, name)
        if value is None:
            raise PipelineError(
                f"context field {name!r} has not been produced — a pass that "
                f"computes it must run earlier in the pipeline"
            )
        return value


class Pass:
    """One pipeline step: reads and writes :class:`CompilationContext`."""

    #: Stable identifier used for timing entries and logs.
    name: str = "pass"

    def run(self, context: CompilationContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


class LowerToNativePass(Pass):
    """Lower the input circuit to the RAA native basis ``{CZ, U3}``."""

    name = "lower"

    def run(self, context: CompilationContext) -> None:
        context.native = lower_to_two_qubit(context.circuit.without_directives())


class ArrayMapperPass(Pass):
    """Coarse-grained qubit-array mapping (Algorithm 1, greedy MAX k-cut)."""

    name = "array_mapper"

    def run(self, context: CompilationContext) -> None:
        cfg = context.config
        context.array_of_qubit = map_qubits_to_arrays(
            context.require("native"),
            context.architecture,
            gamma=cfg.gamma,
            strategy=cfg.array_mapper,
        )


class SabreSwapPass(Pass):
    """SABRE SWAP insertion on the multipartite coupling graph (Fig. 5).

    The multipartite "device" has exactly the circuit's qubits, so the
    routed circuit stays on the same register.  Inserted SWAPs become
    3 CX each; logical 2Q gates stay atomic (the paper's accounting).
    """

    name = "sabre_swap"

    def run(self, context: CompilationContext) -> None:
        native = context.require("native")
        coupling = context.architecture.multipartite_coupling(
            context.require("array_of_qubit")
        )
        routed = sabre_route(
            native,
            coupling,
            Layout.trivial(native.num_qubits),
            seed=context.config.seed,
        )
        context.num_swaps = routed.num_swaps
        context.final_layout = routed.final_layout.as_dict()
        context.transpiled = merge_1q_runs(decompose_swaps(routed.circuit))


class AtomMapperPass(Pass):
    """Fine-grained qubit-atom mapping (Figs. 6-7)."""

    name = "atom_mapper"

    def run(self, context: CompilationContext) -> None:
        cfg = context.config
        context.locations = map_qubits_to_atoms(
            context.require("transpiled"),
            context.require("array_of_qubit"),
            context.architecture,
            strategy=cfg.atom_mapper,
            seed=cfg.seed,
        )


class StageRouterPass(Pass):
    """High-parallelism routing into movement/gate stages (Figs. 8-11)."""

    name = "router"

    def run(self, context: CompilationContext) -> None:
        router = HighParallelismRouter(
            context.architecture,
            context.require("locations"),
            context.config.router,
        )
        context.program = router.route(context.require("transpiled"))


def default_passes() -> list[Pass]:
    """The five Fig. 3 passes in order — the stock Atomique pipeline."""
    return [
        LowerToNativePass(),
        ArrayMapperPass(),
        SabreSwapPass(),
        AtomMapperPass(),
        StageRouterPass(),
    ]


class PassPipeline:
    """Execute a declared pass list and assemble a ``CompileResult``."""

    def __init__(
        self,
        architecture: RAAArchitecture | None = None,
        config: "AtomiqueConfig | None" = None,
        passes: list[Pass] | None = None,
    ) -> None:
        from .compiler import AtomiqueConfig

        self.architecture = architecture or RAAArchitecture.default()
        self.config = config or AtomiqueConfig()
        self.passes = passes if passes is not None else default_passes()

    def run(self, circuit: QuantumCircuit) -> CompilationContext:
        """Run every pass over *circuit*; return the populated context."""
        arch = self.architecture
        if circuit.num_qubits > arch.total_capacity:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits; architecture "
                f"has {arch.total_capacity} traps"
            )
        context = CompilationContext(
            circuit=circuit, architecture=arch, config=self.config
        )
        for p in self.passes:
            t0 = time.perf_counter()
            p.run(context)
            elapsed = time.perf_counter() - t0
            # Accumulate so a pass appearing twice keeps its full time.
            context.pass_seconds[p.name] = (
                context.pass_seconds.get(p.name, 0.0) + elapsed
            )
        return context

    def compile(self, circuit: QuantumCircuit) -> "CompileResult":
        """Run the pipeline and bundle the context into a result record."""
        from .compiler import CompileResult

        t0 = time.perf_counter()
        context = self.run(circuit)
        return CompileResult(
            program=context.require("program"),
            transpiled=context.require("transpiled"),
            array_of_qubit=context.require("array_of_qubit"),
            locations=context.require("locations"),
            num_swaps=context.require("num_swaps"),
            compile_seconds=time.perf_counter() - t0,
            architecture=self.architecture,
            final_layout=context.final_layout,
            pass_seconds=dict(context.pass_seconds),
        )
