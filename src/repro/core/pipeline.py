"""Pass-pipeline compiler architecture: the Fig. 3 flow as composable passes.

The monolithic ``AtomiqueCompiler.compile`` flow is expressed as five
passes over a shared :class:`CompilationContext`:

1. :class:`LowerToNativePass`   — lower to the RAA native basis {CZ, U3};
2. :class:`ArrayMapperPass`     — greedy MAX k-cut qubit-array mapping
   (Algorithm 1);
3. :class:`SabreSwapPass`       — SABRE SWAP insertion on the multipartite
   coupling graph (Fig. 5), SWAPs decomposed to 3 CZ + 1Q;
4. :class:`AtomMapperPass`      — load-balance SLM + aligned AOD placement
   (Figs. 6-7);
5. :class:`StageRouterPass`     — high-parallelism routing into stages
   (Figs. 8-11).

:class:`PassPipeline` executes a declared pass list, records per-pass
wall-time in ``context.pass_seconds``, and assembles the usual
:class:`~repro.core.compiler.CompileResult`.  The default pipeline is
bit-identical to the pre-refactor monolithic compiler; custom pipelines can
reorder, drop, or insert passes (instrumentation, caching, alternative
mappers) without touching the compiler facade.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..hardware.raa import AtomLocation, RAAArchitecture
from ..transpile.layout import Layout
from ..transpile.sabre import sabre_route
from .array_mapper import map_qubits_to_arrays
from .atom_mapper import map_qubits_to_atoms
from .program import Program
from .router import HighParallelismRouter

if TYPE_CHECKING:  # avoid a module-level cycle with .compiler
    from .compiler import AtomiqueConfig, CompileResult


class PipelineError(RuntimeError):
    """A pass ran before the context field it depends on was produced."""


#: Bump when pass artifacts or the cache-key layout change shape.  Stale
#: on-disk entries written under an older version land at a different path,
#: so they are recompiled, never deserialized.
PIPELINE_CACHE_VERSION = 1


def _circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """SHA-256 over a circuit's register size and exact gate stream."""
    h = hashlib.sha256()
    h.update(f"{circuit.num_qubits}|{circuit.name}|".encode())
    for g in circuit.gates:
        h.update(f"{g.name}{tuple(g.qubits)}{tuple(g.params)};".encode())
    return h.hexdigest()


def _architecture_fingerprint(architecture: RAAArchitecture) -> str:
    return (
        f"{architecture.slm_shape!r}|{architecture.aod_shapes!r}|"
        f"{architecture.params!r}"
    )


class PipelineCache:
    """Prefix-reuse store for pass artifacts shared across pipeline runs.

    Two compiles that agree on a *prefix* of the Fig. 3 flow — same circuit,
    same architecture, and the same values for only the config knobs the
    prefix consumes — reuse its cached artifacts instead of recomputing
    them.  Each pass keys on exactly its input closure:

    ======================  =====================================================
    pass                    key fields beyond (circuit, architecture)
    ======================  =====================================================
    ``lower``               — (circuit only)
    ``array_mapper``        ``gamma``, ``array_mapper``
    ``sabre_swap``          ``gamma``, ``array_mapper``, ``seed``
    ``atom_mapper``         ``gamma``, ``array_mapper``, ``seed``, ``atom_mapper``
    ======================  =====================================================

    Router toggles are deliberately absent from every key: a Fig. 22-style
    constraint-relaxation sweep shares one SABRE artifact across all its
    configs and recompiles only the stage router.  Passes are
    deterministic, so a hit is bit-identical to a recompute.

    The cache is in-memory and unbounded; share one instance across the
    compiles of a sweep (``AtomiqueCompiler(..., cache=...)`` or
    ``CompileOptions(pipeline_cache=...)``), not across a whole service.
    ``hits``/``misses`` count lookups per pass name for tests and
    instrumentation.
    """

    def __init__(self) -> None:
        self._store: dict[tuple, Any] = {}
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    def lookup(self, pass_name: str, key: tuple) -> Any:
        """Cached value or None, counting the hit/miss under *pass_name*."""
        value = self._store.get(key)
        if value is None:
            self.misses[pass_name] = self.misses.get(pass_name, 0) + 1
        else:
            self.hits[pass_name] = self.hits.get(pass_name, 0) + 1
        return value

    def store(self, key: tuple, value: Any) -> None:
        self._store[key] = value

    @staticmethod
    def context_prefix(context: "CompilationContext") -> tuple[str, str]:
        """(circuit, architecture) fingerprints, computed once per run."""
        prefix = context.artifacts.get("cache_prefix")
        if prefix is None:
            prefix = (
                _circuit_fingerprint(context.circuit),
                _architecture_fingerprint(context.architecture),
            )
            context.artifacts["cache_prefix"] = prefix
        return prefix


def _key_digest(key: tuple) -> str:
    """Stable on-disk name for a pass-cache key.

    Key tuples hold the pass name, the circuit/architecture fingerprints,
    and config knob values (str/int/float/bool), whose ``repr`` round-trips
    exactly across processes and Python versions we support.
    """
    h = hashlib.sha256()
    h.update(f"v{PIPELINE_CACHE_VERSION}|{key!r}".encode())
    return h.hexdigest()


class DiskPipelineCache(PipelineCache):
    """Disk-backed prefix cache: pass artifacts persist across runs.

    Same contract as :class:`PipelineCache`, plus a pickle-per-entry
    directory keyed like :class:`~repro.experiments.batch.ResultCache`
    (sha256 of the versioned key tuple).  A fresh process pointed at the
    same directory reuses the SABRE/mapping artifacts of earlier runs —
    the compile service's shards share one directory so *cross-run* sweeps
    compile SABRE once per circuit.

    Writes are atomic (tmp + ``os.replace``), so concurrent workers sharing
    the directory never observe a torn entry.  Corrupt or stale entries are
    treated as misses and recompiled: entries carry their
    :data:`PIPELINE_CACHE_VERSION` both in the path digest and inside the
    payload, and a mismatch of either means the pickle is never trusted.

    ``max_bytes`` bounds the directory: when writes push the total entry
    size past the cap, least-recently-used entries (by mtime — disk hits
    touch their entry, so recency survives process restarts) are evicted
    until it fits.  ``None`` keeps the historical unbounded behaviour.
    The total is tracked as a running counter seeded by one directory
    scan at construction, so the write path never re-scans; concurrent
    workers each enforce the cap against their own (approximate) view,
    which re-syncs to the true on-disk total at every eviction pass.
    Evicting an entry another worker still wants is safe: it recompiles
    and rewrites it.

    ``disk_hits``/``disk_misses`` count per-pass lookups that went to disk
    (i.e. missed the in-memory layer) for tests and service stats.
    """

    def __init__(
        self, directory: str | Path, max_bytes: int | None = None
    ) -> None:
        super().__init__()
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._approx_bytes = (
            cache_stats(self.directory)["total_bytes"]
            if max_bytes is not None
            else 0
        )
        self.disk_hits: dict[str, int] = {}
        self.disk_misses: dict[str, int] = {}

    def _path(self, key: tuple) -> Path:
        return self.directory / f"{_key_digest(key)}.pkl"

    def lookup(self, pass_name: str, key: tuple) -> Any:
        value = self._store.get(key)
        if value is not None:
            self.hits[pass_name] = self.hits.get(pass_name, 0) + 1
            return value
        value = self._load(key)
        if value is None:
            self.disk_misses[pass_name] = self.disk_misses.get(pass_name, 0) + 1
            self.misses[pass_name] = self.misses.get(pass_name, 0) + 1
            return None
        self._store[key] = value
        self.disk_hits[pass_name] = self.disk_hits.get(pass_name, 0) + 1
        self.hits[pass_name] = self.hits.get(pass_name, 0) + 1
        return value

    def store(self, key: tuple, value: Any) -> None:
        super().store(key, value)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump((PIPELINE_CACHE_VERSION, value), fh)
            os.replace(tmp, path)
        except OSError:
            # Disk full / read-only directory: degrade to the in-memory
            # layer (already updated above) — a cache write failure must
            # never fail the compile whose artifact it was persisting.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            try:
                self._approx_bytes += path.stat().st_size
            except OSError:
                pass  # already evicted/replaced by a concurrent worker
            if self._approx_bytes > self.max_bytes:
                report = evict_lru(self.directory, self.max_bytes)
                self._approx_bytes = report["remaining_bytes"]

    def _load(self, key: tuple) -> Any:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,  # entry pickled before a module move/rename
            IndexError,
            TypeError,
        ):
            return None  # corrupt entry: recompile
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or payload[0] != PIPELINE_CACHE_VERSION
        ):
            return None  # stale version: recompile, never deserialize
        try:
            # LRU bookkeeping: a disk hit refreshes the entry's mtime so
            # eviction (here or via `repro cache gc`) drops cold entries
            # first.  Best-effort — a concurrent eviction may win.
            os.utime(path)
        except OSError:
            pass
        return payload[1]


# -- cache-directory maintenance ---------------------------------------------
#
# The pickle-per-entry directories (DiskPipelineCache here, the batch
# layer's ResultCache) share one on-disk shape: flat ``*.pkl`` entries plus
# transient ``*.tmp.<pid>`` files.  These helpers are the shared GC layer
# behind ``DiskPipelineCache(max_bytes=...)`` and ``python -m repro cache``.


def _cache_entries(directory: str | Path) -> list[tuple[Path, int, float]]:
    """``(path, size_bytes, mtime)`` for every entry, oldest first."""
    entries = []
    for path in Path(directory).glob("*.pkl"):
        try:
            stat = path.stat()
        except OSError:
            continue  # evicted/replaced by a concurrent process
        entries.append((path, stat.st_size, stat.st_mtime))
    entries.sort(key=lambda e: e[2])
    return entries


def cache_stats(directory: str | Path) -> dict[str, Any]:
    """Entry count, byte total, and mtime range of a cache directory."""
    entries = _cache_entries(directory)
    return {
        "directory": str(directory),
        "entries": len(entries),
        "total_bytes": sum(size for _p, size, _m in entries),
        "oldest_mtime": entries[0][2] if entries else None,
        "newest_mtime": entries[-1][2] if entries else None,
    }


def evict_lru(directory: str | Path, max_bytes: int) -> dict[str, int]:
    """Delete least-recently-used entries until the total fits *max_bytes*.

    Recency is mtime: writes stamp entries, disk hits re-stamp them.
    Missing files (raced by a concurrent evictor) are skipped.  Returns
    ``{"removed": n, "removed_bytes": b, "remaining_bytes": r}``.
    """
    entries = _cache_entries(directory)
    total = sum(size for _p, size, _m in entries)
    removed = removed_bytes = 0
    for path, size, _mtime in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
        removed_bytes += size
    return {
        "removed": removed,
        "removed_bytes": removed_bytes,
        "remaining_bytes": total,
    }


def cache_clear(directory: str | Path) -> int:
    """Delete every entry (and stray tmp file); returns entries removed."""
    removed = 0
    base = Path(directory)
    for pattern in ("*.pkl", "*.tmp.*"):
        for path in base.glob(pattern):
            try:
                path.unlink()
            except OSError:
                continue
            if pattern == "*.pkl":
                removed += 1
    return removed


@dataclass
class CompilationContext:
    """Mutable state threaded through the passes of one compile.

    ``circuit``, ``architecture`` and ``config`` are inputs; everything
    else is produced by passes.  ``pass_seconds`` maps each executed pass
    name to its wall-clock time, in execution order.  ``artifacts`` is a
    free-form scratch area for custom passes.
    """

    circuit: QuantumCircuit
    architecture: RAAArchitecture
    config: "AtomiqueConfig"

    native: QuantumCircuit | None = None
    array_of_qubit: list[int] | None = None
    transpiled: QuantumCircuit | None = None
    num_swaps: int | None = None
    final_layout: dict[int, int] | None = None
    locations: dict[int, AtomLocation] | None = None
    program: Program | None = None

    pass_seconds: dict[str, float] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)
    #: optional shared prefix-reuse cache (see :class:`PipelineCache`)
    cache: "PipelineCache | None" = None

    def require(self, name: str) -> Any:
        """Fetch a context field, failing clearly if no pass produced it."""
        value = getattr(self, name)
        if value is None:
            raise PipelineError(
                f"context field {name!r} has not been produced — a pass that "
                f"computes it must run earlier in the pipeline"
            )
        return value


class Pass:
    """One pipeline step: reads and writes :class:`CompilationContext`."""

    #: Stable identifier used for timing entries and logs.
    name: str = "pass"

    def run(self, context: CompilationContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


class CachedPass(Pass):
    """A pass whose artifact can be reused through a :class:`PipelineCache`.

    Subclasses declare ``key_fields`` — the ``AtomiqueConfig`` attribute
    names their input closure depends on (the circuit and architecture
    fingerprints are always included) — and implement :meth:`compute` plus
    the :meth:`capture`/:meth:`restore` pair that decides what is stored
    and how a hit is copied back into a fresh context.  Keying and the
    lookup/store flow live here once, so the per-pass code is only the
    copy discipline.
    """

    #: AtomiqueConfig attribute names participating in this pass's key.
    key_fields: tuple[str, ...] = ()

    def run(self, context: CompilationContext) -> None:
        cache = context.cache
        if cache is None:
            self.compute(context)
            return
        cfg = context.config
        key = (
            self.name,
            *cache.context_prefix(context),
            *(getattr(cfg, f) for f in self.key_fields),
        )
        hit = cache.lookup(self.name, key)
        if hit is not None:
            self.restore(context, hit)
            return
        self.compute(context)
        cache.store(key, self.capture(context))

    def compute(self, context: CompilationContext) -> None:
        raise NotImplementedError

    def capture(self, context: CompilationContext) -> Any:
        """The value to store after a miss (copy anything mutable)."""
        raise NotImplementedError

    def restore(self, context: CompilationContext, value: Any) -> None:
        """Install a cached value into *context* (copy anything mutable)."""
        raise NotImplementedError


class LowerToNativePass(CachedPass):
    """Lower the input circuit to the RAA native basis ``{CZ, U3}``."""

    name = "lower"
    key_fields = ()

    def compute(self, context: CompilationContext) -> None:
        context.native = lower_to_two_qubit(context.circuit.without_directives())

    # Circuits are treated as immutable by every pass, so the native
    # circuit is shared rather than copied.
    def capture(self, context: CompilationContext) -> Any:
        return context.native

    def restore(self, context: CompilationContext, value: Any) -> None:
        context.native = value


class ArrayMapperPass(CachedPass):
    """Coarse-grained qubit-array mapping (Algorithm 1, greedy MAX k-cut)."""

    name = "array_mapper"
    key_fields = ("gamma", "array_mapper")

    def compute(self, context: CompilationContext) -> None:
        cfg = context.config
        context.array_of_qubit = map_qubits_to_arrays(
            context.require("native"),
            context.architecture,
            gamma=cfg.gamma,
            strategy=cfg.array_mapper,
        )

    def capture(self, context: CompilationContext) -> Any:
        return list(context.array_of_qubit)

    def restore(self, context: CompilationContext, value: Any) -> None:
        context.array_of_qubit = list(value)


class SabreSwapPass(CachedPass):
    """SABRE SWAP insertion on the multipartite coupling graph (Fig. 5).

    The multipartite "device" has exactly the circuit's qubits, so the
    routed circuit stays on the same register.  Inserted SWAPs become
    3 CX each; logical 2Q gates stay atomic (the paper's accounting).
    """

    name = "sabre_swap"
    key_fields = ("gamma", "array_mapper", "seed")

    def compute(self, context: CompilationContext) -> None:
        native = context.require("native")
        coupling = context.architecture.multipartite_coupling(
            context.require("array_of_qubit")
        )
        routed = sabre_route(
            native,
            coupling,
            Layout.trivial(native.num_qubits),
            seed=context.config.seed,
        )
        context.num_swaps = routed.num_swaps
        context.final_layout = routed.final_layout.as_dict()
        context.transpiled = merge_1q_runs(decompose_swaps(routed.circuit))

    def capture(self, context: CompilationContext) -> Any:
        return (
            context.num_swaps,
            dict(context.final_layout),
            context.transpiled,  # circuits are shared, not copied
        )

    def restore(self, context: CompilationContext, value: Any) -> None:
        num_swaps, final_layout, transpiled = value
        context.num_swaps = num_swaps
        context.final_layout = dict(final_layout)
        context.transpiled = transpiled


class AtomMapperPass(CachedPass):
    """Fine-grained qubit-atom mapping (Figs. 6-7)."""

    name = "atom_mapper"
    key_fields = ("gamma", "array_mapper", "seed", "atom_mapper")

    def compute(self, context: CompilationContext) -> None:
        cfg = context.config
        context.locations = map_qubits_to_atoms(
            context.require("transpiled"),
            context.require("array_of_qubit"),
            context.architecture,
            strategy=cfg.atom_mapper,
            seed=cfg.seed,
        )

    def capture(self, context: CompilationContext) -> Any:
        return dict(context.locations)

    def restore(self, context: CompilationContext, value: Any) -> None:
        context.locations = dict(value)


class StageRouterPass(Pass):
    """High-parallelism routing into movement/gate stages (Figs. 8-11)."""

    name = "router"

    def run(self, context: CompilationContext) -> None:
        router = HighParallelismRouter(
            context.architecture,
            context.require("locations"),
            context.config.router,
        )
        context.program = router.route(context.require("transpiled"))


def default_passes() -> list[Pass]:
    """The five Fig. 3 passes in order — the stock Atomique pipeline."""
    return [
        LowerToNativePass(),
        ArrayMapperPass(),
        SabreSwapPass(),
        AtomMapperPass(),
        StageRouterPass(),
    ]


#: Optional per-pass progress callback ``(name, index, total, seconds)``,
#: invoked after each pass completes.  Process-global because service
#: workers run one compile at a time; the service points it at the job's
#: spooled progress file so ``status``/streaming ``result`` can report
#: per-pass completion while the compile is still running.
_PROGRESS_SINK = None


def set_pass_progress_sink(sink):
    """Install (or clear, with ``None``) the per-pass progress callback.

    Returns the previous sink so callers can restore it in a ``finally``.
    Sink exceptions are swallowed — progress is best-effort and must never
    fail a compile.
    """
    global _PROGRESS_SINK
    previous = _PROGRESS_SINK
    _PROGRESS_SINK = sink
    return previous


class PassPipeline:
    """Execute a declared pass list and assemble a ``CompileResult``."""

    def __init__(
        self,
        architecture: RAAArchitecture | None = None,
        config: "AtomiqueConfig | None" = None,
        passes: list[Pass] | None = None,
        cache: PipelineCache | None = None,
    ) -> None:
        from .compiler import AtomiqueConfig

        self.architecture = architecture or RAAArchitecture.default()
        self.config = config or AtomiqueConfig()
        self.passes = passes if passes is not None else default_passes()
        self.cache = cache

    def run(self, circuit: QuantumCircuit) -> CompilationContext:
        """Run every pass over *circuit*; return the populated context."""
        arch = self.architecture
        if circuit.num_qubits > arch.total_capacity:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits; architecture "
                f"has {arch.total_capacity} traps"
            )
        context = CompilationContext(
            circuit=circuit, architecture=arch, config=self.config, cache=self.cache
        )
        sink = _PROGRESS_SINK
        total = len(self.passes)
        for index, p in enumerate(self.passes):
            t0 = time.perf_counter()
            p.run(context)
            elapsed = time.perf_counter() - t0
            # Accumulate so a pass appearing twice keeps its full time.
            context.pass_seconds[p.name] = (
                context.pass_seconds.get(p.name, 0.0) + elapsed
            )
            if sink is not None:
                try:
                    sink(p.name, index + 1, total, elapsed)
                except Exception:  # progress must never fail a compile
                    pass
        return context

    def compile(self, circuit: QuantumCircuit) -> "CompileResult":
        """Run the pipeline and bundle the context into a result record."""
        from .compiler import CompileResult

        t0 = time.perf_counter()
        context = self.run(circuit)
        return CompileResult(
            program=context.require("program"),
            transpiled=context.require("transpiled"),
            array_of_qubit=context.require("array_of_qubit"),
            locations=context.require("locations"),
            num_swaps=context.require("num_swaps"),
            compile_seconds=time.perf_counter() - t0,
            architecture=self.architecture,
            final_layout=context.final_layout,
            pass_seconds=dict(context.pass_seconds),
        )
