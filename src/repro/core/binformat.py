"""v3 binary columnar program codec: packed typed little-endian columns.

The v2 columnar JSON document (:mod:`repro.core.serialize`) renders every
scalar through ``repr`` and parses it back one token at a time — the last
order-of-magnitude hotspot on the large-program result path.  This module
keeps the exact same *logical* document (the ``DOC_FAMILIES`` columns plus
the CSR stage-offset tables) but packs each column as a typed blob:

* all-``int`` columns -> the narrowest signed width that holds the
  range (``<i1``/``<i2``/``<i4``, ``<i8`` past 32-bit — qubit indices
  and AOD flags are mostly one byte each),
* all-``float`` columns -> ``<f8`` (bit-exact: stricter than JSON's
  repr-exact text),
* all-``str`` columns -> an interned table in the meta header plus a
  ``<u1``/``<u2``/``<u4`` index blob,
* ragged ``params`` columns -> a flattened values blob plus CSR offsets,
* anything mixed falls back to inline JSON in the meta header (exactness
  over compactness; never hit by router output).

Record layout::

    b"\\xabP3" | codec u8 | meta_len u32 LE | meta JSON | section blobs...

The meta JSON carries the record ``kind`` (``"program"`` for a whole
document, ``"chunk"`` for a :meth:`ProgramStore.chunk_doc` stage range),
the scalar header fields, and an *ordered* section table with per-section
byte lengths — so a reader can seek to any single column without decoding
the rest (:class:`~repro.core.program.SpillingProgramStore` segment
reductions use exactly that).  The leading ``0xAB`` byte makes records
first-byte sniffable against JSON text (``{``) in spool files.

Round trips are type- and bit-exact: ``decode_program(encode_program(s))``
compares equal to ``s`` field by field, and re-serializing the decoded
store to a v2 JSON document is byte-identical to serializing the original.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator

import numpy as np

from ..hardware.raa import AtomLocation
from .program import (
    _COLUMN_SPEC,
    _OFFSET_SPEC,
    ProgramStore,
    SpillingProgramStore,
)
from .serialize import DOC_FAMILIES, _common_header

#: the ``format_version`` this codec implements ("v3" next to the JSON v2)
BINARY_FORMAT_VERSION = 3
#: record magic; first byte 0xAB distinguishes binary records from JSON text
MAGIC = b"\xabP3"
#: layout revision of the record framing itself
_CODEC_VERSION = 1
#: magic + codec byte + u32 meta length
_PREAMBLE_LEN = len(MAGIC) + 1 + 4

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1

#: narrowest-first signed widths tried for all-int columns
_INT_WIDTHS = (
    ("i8", np.int8, -(2**7), 2**7 - 1, 1),
    ("i16", np.int16, -(2**15), 2**15 - 1, 2),
    ("i32", np.int32, _I32_MIN, _I32_MAX, 4),
)

_DTYPES = {
    "i8": "<i1",
    "i16": "<i2",
    "i32": "<i4",
    "i64": "<i8",
    "f64": "<f8",
    "s8": "<u1",
    "s16": "<u2",
    "s32": "<u4",
}

_EMPTY = b""


class BinformatError(ValueError):
    """A malformed or truncated binary program record."""


def is_binary_record(data: bytes) -> bool:
    """Cheap sniff: does *data* start like a v3 binary record?"""
    return data[: len(MAGIC)] == MAGIC


# -- section packing -----------------------------------------------------------


def _pack_scalars(
    name: str,
    values: list,
    get_array: "Callable[[Any], np.ndarray] | None" = None,
) -> tuple[dict, bytes]:
    """One homogeneous column -> (section descriptor, blob).

    Type detection is exact (``set(map(type, ...))``), so python's
    ``int``/``float``/``str`` distinction survives the round trip; mixed
    or exotic columns fall back to inline JSON in the descriptor.
    *get_array* optionally supplies a cached numpy view of the column
    (:meth:`ProgramStore.column_array`) to skip re-conversion.
    """
    n = len(values)
    if n == 0:
        return {"n": name, "c": "empty", "len": 0, "nb": 0}, _EMPTY
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            arr = (
                get_array(np.int64)
                if get_array is not None
                else np.asarray(values, dtype=np.int64)
            )
        except OverflowError:
            return {"n": name, "c": "json", "len": n, "nb": 0,
                    "vals": list(values)}, _EMPTY
        lo, hi = int(arr.min()), int(arr.max())
        for code, np_dtype, dmin, dmax, width in _INT_WIDTHS:
            if dmin <= lo and hi <= dmax:
                return {"n": name, "c": code, "len": n,
                        "nb": width * n}, arr.astype(np_dtype).tobytes()
        return {"n": name, "c": "i64", "len": n, "nb": 8 * n}, arr.tobytes()
    if kinds == {float}:
        arr = (
            get_array(np.float64)
            if get_array is not None
            else np.asarray(values, dtype=np.float64)
        )
        return {"n": name, "c": "f64", "len": n, "nb": 8 * n}, arr.tobytes()
    if kinds == {str}:
        table: dict[str, int] = {}
        index = [table.setdefault(v, len(table)) for v in values]
        size = len(table)
        if size <= 0xFF:
            dtype, code = np.uint8, "s8"
        elif size <= 0xFFFF:
            dtype, code = np.uint16, "s16"
        else:
            dtype, code = np.uint32, "s32"
        blob = np.asarray(index, dtype=dtype).tobytes()
        return {"n": name, "c": code, "len": n, "nb": len(blob),
                "tab": list(table)}, blob
    # mixed types (or bools, or anything else): exactness over compactness
    return {"n": name, "c": "json", "len": n, "nb": 0,
            "vals": list(values)}, _EMPTY


def _pack_ragged(name: str, rows: list) -> tuple[list[dict], list[bytes]]:
    """A ragged column (tuples/lists per row) -> values + CSR offsets."""
    offsets = [0]
    flat: list = []
    total = 0
    append = offsets.append
    extend = flat.extend
    for row in rows:
        total += len(row)
        extend(row)
        append(total)
    vmeta, vblob = _pack_scalars(name + "#values", flat)
    ometa, oblob = _pack_scalars(name + "#offsets", offsets)
    return [vmeta, ometa], [vblob, oblob]


def _unpack_ragged(values: list, offsets: list, container: type) -> list:
    n = len(offsets) - 1
    if not values:
        if container is tuple:
            return [()] * n
        return [container() for _ in range(n)]
    return [container(values[offsets[i]: offsets[i + 1]]) for i in range(n)]


def decode_section(sec: dict, blob: bytes, *, as_array: bool = False):
    """Rebuild one column from its descriptor and blob.

    ``as_array=True`` returns the raw numpy view for numeric codes (the
    spill reductions consume it directly); string sections always
    rebuild python lists.
    """
    code = sec.get("c")
    if code == "empty":
        return np.empty(0, dtype=np.float64) if as_array else []
    if code == "json":
        vals = list(sec["vals"])
        return np.asarray(vals, dtype=np.float64) if as_array else vals
    dtype = _DTYPES.get(code)
    if dtype is None:
        raise BinformatError(f"unknown section code {code!r}")
    if len(blob) != sec["nb"]:
        raise BinformatError(
            f"section {sec.get('n')!r}: expected {sec['nb']} bytes, "
            f"got {len(blob)}"
        )
    arr = np.frombuffer(blob, dtype=dtype)
    if code in ("s8", "s16", "s32"):
        tab = sec["tab"]
        try:
            return [tab[i] for i in arr.tolist()]
        except IndexError:
            raise BinformatError(
                f"section {sec.get('n')!r}: string index out of table range"
            ) from None
    return arr if as_array else arr.tolist()


# -- record framing ------------------------------------------------------------


def _assemble(kind: str, header: dict, sections: list[dict],
              blobs: list[bytes]) -> bytes:
    meta = {
        "kind": kind,
        "format_version": BINARY_FORMAT_VERSION,
        "header": header,
        "sections": sections,
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    parts = [
        MAGIC,
        bytes((_CODEC_VERSION,)),
        len(meta_bytes).to_bytes(4, "little"),
        meta_bytes,
    ]
    parts.extend(blobs)
    return b"".join(parts)


def parse_record(data: bytes) -> tuple[dict, int]:
    """Validate the preamble and return ``(meta, payload_offset)``."""
    if len(data) < _PREAMBLE_LEN:
        raise BinformatError(f"record truncated at {len(data)} bytes")
    if not is_binary_record(data):
        raise BinformatError("bad magic: not a binary program record")
    codec = data[len(MAGIC)]
    if codec != _CODEC_VERSION:
        raise BinformatError(f"unsupported binary codec revision {codec}")
    meta_len = int.from_bytes(data[len(MAGIC) + 1: _PREAMBLE_LEN], "little")
    payload_off = _PREAMBLE_LEN + meta_len
    if payload_off > len(data):
        raise BinformatError("record truncated inside the meta header")
    try:
        meta = json.loads(data[_PREAMBLE_LEN:payload_off])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BinformatError(f"bad meta header: {exc}") from exc
    if not isinstance(meta, dict) or not isinstance(meta.get("sections"), list):
        raise BinformatError("meta header is not a section-table object")
    return meta, payload_off


def record_kind(data: bytes) -> str:
    """``"program"`` or ``"chunk"`` (parses only the meta header)."""
    meta, _ = parse_record(data)
    return str(meta.get("kind"))


def section_index(meta: dict, payload_off: int) -> dict[str, tuple[dict, int, int]]:
    """Name -> ``(descriptor, start, end)`` byte ranges inside the record.

    Sections are laid out back to back in table order, so the ranges come
    from a running sum of the declared byte lengths — this is what makes
    single-column seek reads possible on spilled segment records.
    """
    out: dict[str, tuple[dict, int, int]] = {}
    pos = payload_off
    for sec in meta["sections"]:
        try:
            name, nb = sec["n"], int(sec["nb"])
        except (TypeError, KeyError) as exc:
            raise BinformatError(f"malformed section descriptor: {sec!r}") from exc
        out[name] = (sec, pos, pos + nb)
        pos += nb
    return out


def _read(data: bytes, smap: dict, name: str, *, as_array: bool = False):
    try:
        sec, lo, hi = smap[name]
    except KeyError:
        raise BinformatError(f"record is missing section {name!r}") from None
    if hi > len(data):
        raise BinformatError(f"section {name!r} extends past the record end")
    return decode_section(sec, data[lo:hi], as_array=as_array)


# -- whole-document codec ------------------------------------------------------


def encode_program(program) -> bytes:
    """A full program -> one v3 ``"program"`` record.

    Accepts any program representation the JSON serializer accepts: a
    spilling store is densified first, a legacy ``RAAProgram`` converted —
    mirroring :func:`repro.core.serialize.program_to_dict` with
    ``columnar=True`` so both codecs describe the identical store.
    """
    if isinstance(program, SpillingProgramStore):
        store = program.collect()
    elif isinstance(program, ProgramStore):
        store = program
    else:
        store = ProgramStore.from_program(program)
    sections: list[dict] = []
    blobs: list[bytes] = []
    for fam, key, attr, _enc, _dec in _COLUMN_SPEC:
        name = f"{fam}.{key}"
        col = getattr(store, attr)
        if key == "params":
            metas, parts = _pack_ragged(name, col)
            sections.extend(metas)
            blobs.extend(parts)
        else:
            meta, blob = _pack_scalars(
                name, col, _array_getter(store, attr)
            )
            sections.append(meta)
            blobs.append(blob)
    for fam, off_attr in _OFFSET_SPEC:
        meta, blob = _pack_scalars(
            f"off.{fam}", getattr(store, off_attr),
            _array_getter(store, off_attr),
        )
        sections.append(meta)
        blobs.append(blob)
    loss_meta, loss_blob = _pack_scalars("atom_loss_log", store.atom_loss_log)
    sections.append(loss_meta)
    blobs.append(loss_blob)
    header = _common_header(store)
    del header["atom_loss_log"]  # carried as a section, it can be long
    header["emit_seconds"] = store.emit_seconds
    return _assemble("program", header, sections, blobs)


def _array_getter(store: ProgramStore, attr: str):
    def get(dtype):
        return store.column_array(attr, dtype)

    return get


def decode_program(data: bytes) -> ProgramStore:
    """One v3 ``"program"`` record -> a dense :class:`ProgramStore`.

    The result is bit-identical to decoding the equivalent v2 JSON
    document (same types, same values, same defaulting of timing fields).
    """
    meta, payload_off = parse_record(data)
    if meta.get("kind") != "program":
        raise BinformatError(
            f"expected a program record, got kind {meta.get('kind')!r}"
        )
    smap = section_index(meta, payload_off)
    header = meta["header"]
    kwargs: dict[str, Any] = {}
    for fam, key, attr, _enc, _dec in _COLUMN_SPEC:
        name = f"{fam}.{key}"
        if key == "params":
            values = _read(data, smap, name + "#values")
            offsets = _read(data, smap, name + "#offsets")
            kwargs[attr] = _unpack_ragged(values, offsets, tuple)
        else:
            kwargs[attr] = _read(data, smap, name)
    for fam, off_attr in _OFFSET_SPEC:
        kwargs[off_attr] = _read(data, smap, f"off.{fam}")
    try:
        return ProgramStore(
            num_qubits=header["num_qubits"],
            qubit_locations={
                int(q): AtomLocation(*loc)
                for q, loc in header["qubit_locations"].items()
            },
            n_vib_final={
                int(q): v for q, v in header["n_vib_final"].items()
            },
            atom_loss_log=_read(data, smap, "atom_loss_log"),
            num_transfers=header["num_transfers"],
            overlap_rejections=header["overlap_rejections"],
            compile_seconds=header["compile_seconds"],
            emit_seconds=header.get("emit_seconds", 0.0),
            **kwargs,
        )
    except (KeyError, TypeError) as exc:
        raise BinformatError(f"malformed program header: {exc}") from exc


# -- chunk codec ---------------------------------------------------------------


def encode_chunk(chunk: dict) -> bytes:
    """A :meth:`ProgramStore.chunk_doc` dict -> one v3 ``"chunk"`` record."""
    sections: list[dict] = []
    blobs: list[bytes] = []
    cols = chunk["columns"]
    for fam, keys in DOC_FAMILIES.items():
        famcols = cols[fam]
        for key in keys:
            name = f"{fam}.{key}"
            if key == "params":
                metas, parts = _pack_ragged(name, famcols[key])
                sections.extend(metas)
                blobs.extend(parts)
            else:
                meta, blob = _pack_scalars(name, famcols[key])
                sections.append(meta)
                blobs.append(blob)
    offsets = chunk["stage_offsets"]
    for fam in DOC_FAMILIES:
        meta, blob = _pack_scalars(f"off.{fam}", offsets[fam])
        sections.append(meta)
        blobs.append(blob)
    return _assemble("chunk", {"stages": chunk["stages"]}, sections, blobs)


def decode_chunk(data: bytes) -> dict:
    """One v3 ``"chunk"`` record -> the exact chunk-doc dict it encoded."""
    meta, payload_off = parse_record(data)
    if meta.get("kind") != "chunk":
        raise BinformatError(
            f"expected a chunk record, got kind {meta.get('kind')!r}"
        )
    smap = section_index(meta, payload_off)
    columns: dict[str, dict[str, list]] = {}
    for fam, keys in DOC_FAMILIES.items():
        famcols: dict[str, list] = {}
        for key in keys:
            name = f"{fam}.{key}"
            if key == "params":
                values = _read(data, smap, name + "#values")
                offsets = _read(data, smap, name + "#offsets")
                famcols[key] = _unpack_ragged(values, offsets, list)
            else:
                famcols[key] = _read(data, smap, name)
        columns[fam] = famcols
    stage_offsets = {
        fam: _read(data, smap, f"off.{fam}") for fam in DOC_FAMILIES
    }
    try:
        stages = meta["header"]["stages"]
    except (KeyError, TypeError) as exc:
        raise BinformatError(f"malformed chunk header: {exc}") from exc
    return {
        "stages": stages,
        "columns": columns,
        "stage_offsets": stage_offsets,
    }


def iter_chunk_records(store: ProgramStore,
                       stages_per_chunk: int) -> Iterator[bytes]:
    """Slice a dense store into encoded chunk records (streaming send path)."""
    step = max(1, int(stages_per_chunk))
    total = store.num_stages
    for lo in range(0, total, step):
        hi = min(lo + step, total)
        yield encode_chunk(store.chunk_doc(lo, hi))
