"""Constant-jerk atom-movement kinematics (Fig. 12, Sec. IV).

The paper adopts Bluvstein et al.'s constant-negative-jerk trajectory to
minimize vibrational heating: jerk is constant, acceleration decreases
linearly from ``+a0`` to ``-a0``, velocity is a parabola vanishing at both
endpoints, and position is the smooth S-curve of Fig. 12.

Closed form for a move of distance ``D`` in time ``T``::

    a(t) = a0 * (1 - 2 t / T)
    v(t) = a0 * t * (1 - t / T)
    x(t) = a0 * t^2 / 2 - a0 * t^3 / (3 T)

with ``x(T) = a0 T^2 / 6 = D``, hence ``a0 = 6 D / T^2`` — precisely the
``6D/T^2`` factor inside the heating formula ``delta n_vib = 0.5 *
(a0 / (xzpf * w0^2))^2`` of Sec. IV, tying the kinematics to the noise
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.parameters import HardwareParams


@dataclass(frozen=True)
class ConstantJerkProfile:
    """One constant-jerk move of *distance* metres over *duration* seconds."""

    distance: float
    duration: float

    def __post_init__(self) -> None:
        if self.distance < 0 or self.duration <= 0:
            raise ValueError("distance must be >= 0 and duration > 0")

    @property
    def peak_acceleration(self) -> float:
        """``a0 = 6 D / T^2`` (m/s^2), the heating-relevant quantity."""
        return 6.0 * self.distance / self.duration**2

    @property
    def jerk(self) -> float:
        """Constant jerk ``-2 a0 / T`` (m/s^3)."""
        return -2.0 * self.peak_acceleration / self.duration

    @property
    def peak_velocity(self) -> float:
        """Maximum speed, reached mid-move: ``a0 T / 4 = 1.5 D / T``."""
        return self.peak_acceleration * self.duration / 4.0

    @property
    def average_velocity(self) -> float:
        return self.distance / self.duration

    def acceleration(self, t: float | np.ndarray) -> float | np.ndarray:
        """``a(t) = a0 (1 - 2 t / T)`` within [0, T]."""
        a0, big_t = self.peak_acceleration, self.duration
        return a0 * (1.0 - 2.0 * np.asarray(t) / big_t)

    def velocity(self, t: float | np.ndarray) -> float | np.ndarray:
        """``v(t) = a0 t (1 - t / T)``; zero at both endpoints."""
        a0, big_t = self.peak_acceleration, self.duration
        t = np.asarray(t)
        return a0 * t * (1.0 - t / big_t)

    def position(self, t: float | np.ndarray) -> float | np.ndarray:
        """``x(t) = a0 t^2 / 2 - a0 t^3 / (3T)``; reaches D at t = T."""
        a0, big_t = self.peak_acceleration, self.duration
        t = np.asarray(t)
        return a0 * t**2 / 2.0 - a0 * t**3 / (3.0 * big_t)

    def sample(self, num_points: int = 101) -> dict[str, np.ndarray]:
        """Time series of all four Fig. 12 panels."""
        t = np.linspace(0.0, self.duration, num_points)
        return {
            "time": t,
            "jerk": np.full_like(t, self.jerk),
            "acceleration": np.asarray(self.acceleration(t)),
            "velocity": np.asarray(self.velocity(t)),
            "position": np.asarray(self.position(t)),
        }

    def delta_n_vib(self, params: HardwareParams) -> float:
        """Heating of this move via Sec. IV's formula.

        Equals ``HardwareParams.delta_n_vib(distance, duration)`` — the
        heating model *is* the kinematic peak acceleration over the trap
        stiffness: ``0.5 * (a0 / (xzpf * w0^2))^2``.
        """
        val = self.peak_acceleration / (params.xzpf * params.omega0**2)
        return 0.5 * val * val


def hop_profile(
    hops: float, params: HardwareParams, t_move: float | None = None
) -> ConstantJerkProfile:
    """Profile for a move of *hops* site pitches under *params*."""
    return ConstantJerkProfile(
        distance=hops * params.atom_distance,
        duration=t_move if t_move is not None else params.t_per_move,
    )
