"""Qubit-atom mapper (Sec. III-B): positions inside each array.

Two steps, following the paper:

1. **Load-balance SLM mapping** (Fig. 6): qubits sorted by descending
   2Q-gate involvement are placed along *diagonal stripes* of the SLM grid —
   the d-th stripe visits ``(r, (r + d) mod cols)`` for every row r.  The
   stripe order fills the main diagonal first and keeps the per-row and
   per-column sums of gate counts balanced, which is exactly the property
   the paper's diagonal-first spiral is designed for (fewer same-row/column
   conflicts, fewer constraint-1/-3 violations).

2. **Aligned AOD mapping** (Fig. 7): qubit pairs sorted by descending 2Q
   frequency; the unplaced AOD endpoint of each pair is mapped to the *same
   (row, col)* as its already-placed partner when that trap is free, so the
   highest-frequency gates execute with near-zero relative displacement and
   whole-array alignment maximizes parallelism.  Fallback: nearest free trap
   by Manhattan distance.  Leftover qubits fill the remaining traps in
   stripe order.
"""

from __future__ import annotations

from collections import Counter

from ..circuits.circuit import QuantumCircuit
from ..hardware.raa import ArrayShape, AtomLocation, RAAArchitecture, RAAError


def diagonal_stripe_order(shape: ArrayShape) -> list[tuple[int, int]]:
    """Positions in diagonal-stripe order: stripe d = {(r, (r+d) % cols)}.

    Guarantees perfect row balance and near-perfect column balance for any
    prefix, with the first stripe being the (wrapped) main diagonal.
    """
    seen: set[tuple[int, int]] = set()
    unique: list[tuple[int, int]] = []
    for d in range(shape.cols):
        for r in range(shape.rows):
            pos = (r, (r + d) % shape.cols)
            if pos not in seen:
                seen.add(pos)
                unique.append(pos)
    # rows > cols leaves gaps after the wrap; fill them row-major.
    for r in range(shape.rows):
        for c in range(shape.cols):
            if (r, c) not in seen:
                seen.add((r, c))
                unique.append((r, c))
    return unique


def qubit_gate_counts(circuit: QuantumCircuit) -> Counter:
    """2Q-gate involvement count per qubit."""
    counts: Counter = Counter()
    for g in circuit.gates:
        if g.is_two_qubit:
            for q in g.qubits:
                counts[q] += 1
    return counts


def _nearest_free(
    target: tuple[int, int],
    shape: ArrayShape,
    occupied: set[tuple[int, int]],
) -> tuple[int, int] | None:
    """Closest free trap to *target* by Manhattan distance (deterministic)."""
    best: tuple[int, int] | None = None
    best_key: tuple[int, int, int] | None = None
    for r in range(shape.rows):
        for c in range(shape.cols):
            if (r, c) in occupied:
                continue
            d = abs(r - target[0]) + abs(c - target[1])
            key = (d, r, c)
            if best_key is None or key < best_key:
                best_key = key
                best = (r, c)
    return best


def map_slm_qubits(
    circuit: QuantumCircuit,
    slm_qubits: list[int],
    shape: ArrayShape,
) -> dict[int, tuple[int, int]]:
    """Load-balance placement of SLM qubits (step 1)."""
    if len(slm_qubits) > shape.capacity:
        raise RAAError(
            f"{len(slm_qubits)} SLM qubits exceed capacity {shape.capacity}"
        )
    counts = qubit_gate_counts(circuit)
    ranked = sorted(slm_qubits, key=lambda q: (-counts[q], q))
    order = diagonal_stripe_order(shape)
    return {q: order[i] for i, q in enumerate(ranked)}


def map_aod_qubits(
    circuit: QuantumCircuit,
    array_of_qubit: list[int],
    slm_placement: dict[int, tuple[int, int]],
    architecture: RAAArchitecture,
) -> dict[int, tuple[int, int]]:
    """Aligned placement of all AOD qubits (step 2)."""
    placement: dict[int, tuple[int, int]] = dict(slm_placement)
    occupied: dict[int, set[tuple[int, int]]] = {
        a: set() for a in range(architecture.num_arrays)
    }
    for q, pos in slm_placement.items():
        occupied[0].add(pos)

    pair_freq = circuit.interaction_pairs()
    ranked_pairs = sorted(pair_freq.items(), key=lambda kv: (-kv[1], kv[0]))

    def try_place(q: int, target: tuple[int, int]) -> bool:
        arr = array_of_qubit[q]
        shape = architecture.array_shape(arr)
        pos = target
        if not (0 <= pos[0] < shape.rows and 0 <= pos[1] < shape.cols) or (
            pos in occupied[arr]
        ):
            alt = _nearest_free(pos, shape, occupied[arr])
            if alt is None:
                return False
            pos = alt
        placement[q] = pos
        occupied[arr].add(pos)
        return True

    # Frequency-ranked alignment passes: keep sweeping until no progress so
    # chains of AOD-AOD pairs anchored through the SLM all resolve.
    progress = True
    while progress:
        progress = False
        for (a, b), _freq in ranked_pairs:
            pa, pb = a in placement, b in placement
            if pa == pb:
                continue  # both placed or both unplaced
            anchor, mover = (a, b) if pa else (b, a)
            if array_of_qubit[mover] == 0:
                continue  # SLM qubits were all placed in step 1
            if try_place(mover, placement[anchor]):
                progress = True

    # Leftovers (qubits with no placed partner): stripe order per array.
    counts = qubit_gate_counts(circuit)
    for arr in range(1, architecture.num_arrays):
        leftovers = sorted(
            (
                q
                for q in range(circuit.num_qubits)
                if array_of_qubit[q] == arr and q not in placement
            ),
            key=lambda q: (-counts[q], q),
        )
        shape = architecture.array_shape(arr)
        free = [p for p in diagonal_stripe_order(shape) if p not in occupied[arr]]
        for q, pos in zip(leftovers, free):
            placement[q] = pos
            occupied[arr].add(pos)
        if len(leftovers) > len(free):
            raise RAAError(f"AOD {arr} over capacity during atom mapping")
    return placement


def random_atom_mapping(
    circuit: QuantumCircuit,
    array_of_qubit: list[int],
    architecture: RAAArchitecture,
    seed: int = 0,
) -> dict[int, AtomLocation]:
    """Fig. 21 ablation baseline: uniformly random positions per array."""
    import numpy as np

    rng = np.random.default_rng(seed)
    out: dict[int, AtomLocation] = {}
    for arr in range(architecture.num_arrays):
        qubits = [q for q in range(circuit.num_qubits) if array_of_qubit[q] == arr]
        shape = architecture.array_shape(arr)
        positions = shape.sites()
        picks = rng.permutation(len(positions))[: len(qubits)]
        if len(qubits) > len(positions):
            raise RAAError(f"array {arr} over capacity")
        for q, pi in zip(qubits, picks):
            r, c = positions[int(pi)]
            out[q] = AtomLocation(arr, r, c)
    return out


def map_qubits_to_atoms(
    circuit: QuantumCircuit,
    array_of_qubit: list[int],
    architecture: RAAArchitecture,
    strategy: str = "loadbalance",
    seed: int = 0,
) -> dict[int, AtomLocation]:
    """Full qubit-atom mapping: SLM load-balance + aligned AOD placement.

    ``strategy="random"`` selects the ablation baseline of Fig. 21.
    """
    if strategy == "random":
        return random_atom_mapping(circuit, array_of_qubit, architecture, seed)
    if strategy != "loadbalance":
        raise ValueError(f"unknown atom-mapper strategy {strategy!r}")
    slm_qubits = [q for q in range(circuit.num_qubits) if array_of_qubit[q] == 0]
    slm_placement = map_slm_qubits(circuit, slm_qubits, architecture.slm_shape)
    placement = map_aod_qubits(circuit, array_of_qubit, slm_placement, architecture)
    return {
        q: AtomLocation(array_of_qubit[q], r, c)
        for q, (r, c) in placement.items()
    }
