"""The Atomique compiler facade (Fig. 3 pipeline).

``AtomiqueCompiler.compile(circuit)`` runs the full flow:

1. lower the input to the RAA native basis ``{CZ, U3}``;
2. **qubit-array mapper** — greedy MAX k-cut over the gate-frequency graph
   (Algorithm 1) assigns each qubit to the SLM or one of the AODs;
3. **SWAP insertion** — SABRE over the complete multipartite coupling graph
   resolves the remaining intra-array gates (Fig. 5), then inserted SWAPs
   are decomposed to 3 CZ + 1Q;
4. **qubit-atom mapper** — load-balance SLM placement + aligned AOD
   placement (Figs. 6-7);
5. **high-parallelism router** — stages of parallel 2Q gates under the
   three movement constraints (Figs. 8-11), with heating/cooling tracking.

The result bundles the executable :class:`RAAProgram` with every statistic
the evaluation reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..hardware.raa import AtomLocation, RAAArchitecture
from ..transpile.layout import Layout
from ..transpile.sabre import sabre_route
from .array_mapper import map_qubits_to_arrays
from .atom_mapper import map_qubits_to_atoms
from .instructions import RAAProgram
from .router import HighParallelismRouter, RouterConfig


@dataclass
class AtomiqueConfig:
    """All compiler knobs in one place.

    Attributes
    ----------
    gamma:
        Layer-decay factor of the gate-frequency graph (Sec. III-A).
    array_mapper / atom_mapper:
        ``"maxkcut"``/``"dense"`` and ``"loadbalance"``/``"random"`` —
        the second options are the Fig. 21 ablation baselines.
    router:
        Constraint toggles, serial mode, cooling threshold.
    seed:
        Seed for SABRE tie-breaking and the random atom-mapper ablation.
    """

    gamma: float = 0.95
    array_mapper: str = "maxkcut"
    atom_mapper: str = "loadbalance"
    router: RouterConfig = field(default_factory=RouterConfig)
    seed: int = 7


@dataclass
class CompileResult:
    """Everything the evaluation harness reads from one compile.

    ``final_layout`` maps each logical qubit to the slot where SWAP
    insertion left it at the end of the circuit — needed to interpret
    measurement outcomes and to verify semantic equivalence.
    """

    program: RAAProgram
    transpiled: QuantumCircuit
    array_of_qubit: list[int]
    locations: dict[int, AtomLocation]
    num_swaps: int
    compile_seconds: float
    architecture: RAAArchitecture
    final_layout: dict[int, int] = None  # type: ignore[assignment]

    # -- headline metrics (paper's reporting vocabulary) -----------------------

    @property
    def num_2q_gates(self) -> int:
        return self.program.num_2q_gates

    @property
    def num_1q_gates(self) -> int:
        return self.program.num_1q_gates

    @property
    def depth(self) -> int:
        """Number of parallel two-qubit layers (Rydberg stages)."""
        return self.program.two_qubit_depth

    @property
    def additional_cnots(self) -> int:
        """CNOTs added by SWAP insertion (Fig. 25): 3 per SWAP."""
        return 3 * self.num_swaps

    def execution_time(self) -> float:
        return self.program.execution_time(self.architecture.params)

    def avg_move_distance(self) -> float:
        return self.program.avg_move_distance(self.architecture.params)

    def total_move_distance(self) -> float:
        return self.program.total_move_distance(self.architecture.params)

    def remap_counts(self, counts: dict[str, int]) -> dict[str, int]:
        """Undo the SWAP-induced output permutation on measured bitstrings.

        Hardware measures the physical slots; ``final_layout`` says where
        each logical qubit ended up, so logical bit *q* of the corrected
        string is physical bit ``final_layout[q]`` of the raw string.
        """
        n = self.transpiled.num_qubits
        out: dict[str, int] = {}
        for bits, count in counts.items():
            if len(bits) != n:
                raise ValueError(
                    f"bitstring {bits!r} does not match {n} qubits"
                )
            corrected = "".join(bits[self.final_layout[q]] for q in range(n))
            out[corrected] = out.get(corrected, 0) + count
        return out


class AtomiqueCompiler:
    """Compile quantum circuits for a reconfigurable atom array."""

    def __init__(
        self,
        architecture: RAAArchitecture | None = None,
        config: AtomiqueConfig | None = None,
    ) -> None:
        self.architecture = architecture or RAAArchitecture.default()
        self.config = config or AtomiqueConfig()

    def compile(self, circuit: QuantumCircuit) -> CompileResult:
        """Run the full Fig. 3 pipeline on *circuit*."""
        t0 = time.perf_counter()
        arch = self.architecture
        cfg = self.config
        if circuit.num_qubits > arch.total_capacity:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits; architecture "
                f"has {arch.total_capacity} traps"
            )

        native = lower_to_two_qubit(circuit.without_directives())

        # Step 1: coarse-grained qubit-array mapping (Algorithm 1).
        array_of_qubit = map_qubits_to_arrays(
            native, arch, gamma=cfg.gamma, strategy=cfg.array_mapper
        )

        # Step 2: SABRE SWAP insertion on the multipartite coupling graph.
        coupling = arch.multipartite_coupling(array_of_qubit)
        routed = sabre_route(
            native, coupling, Layout.trivial(native.num_qubits), seed=cfg.seed
        )
        num_swaps = routed.num_swaps
        # The multipartite "device" has exactly the circuit's qubits, so the
        # routed circuit stays on the same register.  Inserted SWAPs become
        # 3 CX each; logical 2Q gates stay atomic (paper's accounting).
        transpiled = merge_1q_runs(decompose_swaps(routed.circuit))

        # Step 3: fine-grained qubit-atom mapping.
        locations = map_qubits_to_atoms(
            transpiled,
            array_of_qubit,
            arch,
            strategy=cfg.atom_mapper,
            seed=cfg.seed,
        )

        # Step 4: high-parallelism routing into stages.
        router = HighParallelismRouter(arch, locations, cfg.router)
        program = router.route(transpiled)

        return CompileResult(
            program=program,
            transpiled=transpiled,
            array_of_qubit=array_of_qubit,
            locations=locations,
            num_swaps=num_swaps,
            compile_seconds=time.perf_counter() - t0,
            architecture=arch,
            final_layout=routed.final_layout.as_dict(),
        )
