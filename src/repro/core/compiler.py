"""The Atomique compiler facade (Fig. 3 pipeline).

``AtomiqueCompiler.compile(circuit)`` runs the full flow:

1. lower the input to the RAA native basis ``{CZ, U3}``;
2. **qubit-array mapper** — greedy MAX k-cut over the gate-frequency graph
   (Algorithm 1) assigns each qubit to the SLM or one of the AODs;
3. **SWAP insertion** — SABRE over the complete multipartite coupling graph
   resolves the remaining intra-array gates (Fig. 5), then inserted SWAPs
   are decomposed to 3 CZ + 1Q;
4. **qubit-atom mapper** — load-balance SLM placement + aligned AOD
   placement (Figs. 6-7);
5. **high-parallelism router** — stages of parallel 2Q gates under the
   three movement constraints (Figs. 8-11), with heating/cooling tracking.

Each step is a :class:`~repro.core.pipeline.Pass`; the facade just builds
the default :class:`~repro.core.pipeline.PassPipeline` and runs it.  The
result bundles the executable :class:`RAAProgram` with every statistic the
evaluation reads, including per-pass wall-time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import QuantumCircuit
from ..hardware.raa import AtomLocation, RAAArchitecture
from .pipeline import PassPipeline, PipelineCache
from .program import Program
from .router import RouterConfig


@dataclass
class AtomiqueConfig:
    """All compiler knobs in one place.

    Attributes
    ----------
    gamma:
        Layer-decay factor of the gate-frequency graph (Sec. III-A).
    array_mapper / atom_mapper:
        ``"maxkcut"``/``"dense"`` and ``"loadbalance"``/``"random"`` —
        the second options are the Fig. 21 ablation baselines.
    router:
        Constraint toggles, serial mode, cooling threshold.
    seed:
        Seed for SABRE tie-breaking and the random atom-mapper ablation.
    """

    gamma: float = 0.95
    array_mapper: str = "maxkcut"
    atom_mapper: str = "loadbalance"
    router: RouterConfig = field(default_factory=RouterConfig)
    seed: int = 7


@dataclass
class CompileResult:
    """Everything the evaluation harness reads from one compile.

    ``final_layout`` maps each logical qubit to the slot where SWAP
    insertion left it at the end of the circuit — needed to interpret
    measurement outcomes and to verify semantic equivalence.  It is
    ``None`` only for partial pipeline runs that skipped SWAP insertion.

    ``pass_seconds`` maps each pipeline pass name to its wall-clock time,
    in execution order (the Fig. 21 compile-time breakdown reads this).
    """

    program: Program
    transpiled: QuantumCircuit
    array_of_qubit: list[int]
    locations: dict[int, AtomLocation]
    num_swaps: int
    compile_seconds: float
    architecture: RAAArchitecture
    final_layout: dict[int, int] | None = None
    pass_seconds: dict[str, float] = field(default_factory=dict)

    # -- headline metrics (paper's reporting vocabulary) -----------------------

    @property
    def num_2q_gates(self) -> int:
        return self.program.num_2q_gates

    @property
    def num_1q_gates(self) -> int:
        return self.program.num_1q_gates

    @property
    def depth(self) -> int:
        """Number of parallel two-qubit layers (Rydberg stages)."""
        return self.program.two_qubit_depth

    @property
    def additional_cnots(self) -> int:
        """CNOTs added by SWAP insertion (Fig. 25): 3 per SWAP."""
        return 3 * self.num_swaps

    def execution_time(self) -> float:
        return self.program.execution_time(self.architecture.params)

    def avg_move_distance(self) -> float:
        return self.program.avg_move_distance(self.architecture.params)

    def total_move_distance(self) -> float:
        return self.program.total_move_distance(self.architecture.params)

    def remap_counts(self, counts: dict[str, int]) -> dict[str, int]:
        """Undo the SWAP-induced output permutation on measured bitstrings.

        Hardware measures the physical slots; ``final_layout`` says where
        each logical qubit ended up, so logical bit *q* of the corrected
        string is physical bit ``final_layout[q]`` of the raw string.
        """
        if self.final_layout is None:
            raise ValueError(
                "final_layout is missing from this CompileResult — the "
                "pipeline that produced it did not run SWAP insertion "
                "(partial run), so measured bitstrings cannot be remapped"
            )
        n = self.transpiled.num_qubits
        out: dict[str, int] = {}
        for bits, count in counts.items():
            if len(bits) != n:
                raise ValueError(
                    f"bitstring {bits!r} does not match {n} qubits"
                )
            corrected = "".join(bits[self.final_layout[q]] for q in range(n))
            out[corrected] = out.get(corrected, 0) + count
        return out


class AtomiqueCompiler:
    """Compile quantum circuits for a reconfigurable atom array.

    ``cache`` optionally shares a :class:`~repro.core.pipeline.PipelineCache`
    across compiles, so runs agreeing on a (circuit, array-mapping) prefix —
    e.g. a router-toggle sweep — reuse the lowered circuit, array mapping,
    SABRE artifact, and atom placement instead of recomputing them.
    """

    def __init__(
        self,
        architecture: RAAArchitecture | None = None,
        config: AtomiqueConfig | None = None,
        cache: PipelineCache | None = None,
    ) -> None:
        self.architecture = architecture or RAAArchitecture.default()
        self.config = config or AtomiqueConfig()
        self.cache = cache

    def pipeline(self) -> PassPipeline:
        """The default five-pass Fig. 3 pipeline for this compiler."""
        return PassPipeline(self.architecture, self.config, cache=self.cache)

    def compile(self, circuit: QuantumCircuit) -> CompileResult:
        """Run the full Fig. 3 pipeline on *circuit*."""
        return self.pipeline().compile(circuit)
