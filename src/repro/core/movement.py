"""Movement kinematics, heating (n_vib) tracking, and cooling insertion.

Implements Sec. IV's physics bookkeeping on top of the stage plans produced
by the router:

* AOD line positions persist across stages (in site units).  Engaged lines
  travel to their interaction coordinates; after the Rydberg pulse they
  retreat to ``target + parking_offset(aod)``, a per-AOD fractional offset
  that keeps parked atoms out of blockade range of every SLM trap, meeting
  point, and other-AOD parked atom (see :mod:`repro.core.constraints`).
  The retreat distance is folded into the stage's movement total.
* Every atom in a moved row or column heats: ``delta n_vib`` follows the
  constant-jerk profile formula (Sec. IV) and accumulates per atom.
* When any atom of an AOD exceeds the cooling threshold, the whole AOD array
  is swapped with a pre-cooled twin (2 CZ per atom) and its atoms' n_vib
  reset — the paper's cooling procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.parameters import HardwareParams
from ..hardware.raa import AtomLocation, RAAArchitecture
from .constraints import parking_offset
from .instructions import CoolingEvent, Move


@dataclass
class MovementTracker:
    """Stateful AOD-line positions and per-atom heating across stages."""

    architecture: RAAArchitecture
    locations: dict[int, AtomLocation]
    params: HardwareParams
    cooling_threshold: float | None = None
    row_pos: dict[int, dict[int, float]] = field(default_factory=dict)
    col_pos: dict[int, dict[int, float]] = field(default_factory=dict)
    n_vib: dict[int, float] = field(default_factory=dict)
    #: n_vib value at each (atom, move) event, for the loss model
    loss_samples: list[float] = field(default_factory=list)
    num_cooling_events: int = 0

    def __post_init__(self) -> None:
        if self.cooling_threshold is None:
            self.cooling_threshold = self.params.n_vib_cooling_threshold
        for a in range(1, self.architecture.num_arrays):
            shape = self.architecture.array_shape(a)
            off = parking_offset(a)
            self.row_pos[a] = {r: r + off for r in range(shape.rows)}
            self.col_pos[a] = {c: c + off for c in range(shape.cols)}
        for q in self.locations:
            self.n_vib.setdefault(q, 0.0)
        self._atoms_by_row: dict[tuple[int, int], list[int]] = {}
        self._atoms_by_col: dict[tuple[int, int], list[int]] = {}
        for q, loc in self.locations.items():
            if loc.is_aod:
                self._atoms_by_row.setdefault((loc.array, loc.row), []).append(q)
                self._atoms_by_col.setdefault((loc.array, loc.col), []).append(q)

    # -- stage application ------------------------------------------------------

    def apply_stage_maps(
        self,
        row_maps: dict[int, dict[int, float]],
        col_maps: dict[int, dict[int, float]],
    ) -> tuple[list[Move], dict[int, float]]:
        """Move engaged lines to their targets, pulse, then retreat them.

        Returns the :class:`Move` records and per-atom displacement in
        metres.  Callers read gate-time n_vib values *before* invoking
        :meth:`maybe_cool`, so the heating error of this stage's gates sees
        the pre-cooling temperature.
        """
        pitch = self.params.atom_distance
        moves: list[Move] = []
        dx: dict[int, float] = {}
        dy: dict[int, float] = {}

        for aod, rmap in row_maps.items():
            off = parking_offset(aod)
            for r, target in rmap.items():
                start = self.row_pos[aod][r]
                travel = abs(start - target) + off
                moves.append(Move(aod, "row", r, start, float(target)))
                self.row_pos[aod][r] = target + off
                for q in self._atoms_by_row.get((aod, r), []):
                    dy[q] = travel
        for aod, cmap in col_maps.items():
            off = parking_offset(aod)
            for c, target in cmap.items():
                start = self.col_pos[aod][c]
                travel = abs(start - target) + off
                moves.append(Move(aod, "col", c, start, float(target)))
                self.col_pos[aod][c] = target + off
                for q in self._atoms_by_col.get((aod, c), []):
                    dx[q] = travel

        distances: dict[int, float] = {}
        for q in set(dx) | set(dy):
            d_sites = (dx.get(q, 0.0) ** 2 + dy.get(q, 0.0) ** 2) ** 0.5
            if d_sites <= 0.0:
                continue
            d_m = d_sites * pitch
            distances[q] = d_m
            self.n_vib[q] += self.params.delta_n_vib(d_m)
            # The atom is hottest *during* the move; the loss model samples
            # the post-move vibrational state.
            self.loss_samples.append(self.n_vib[q])

        return moves, distances

    def maybe_cool(self) -> list[CoolingEvent]:
        """Swap any overheated AOD with a cooled twin (Sec. IV)."""
        events: list[CoolingEvent] = []
        threshold = float(self.cooling_threshold)
        for aod in range(1, self.architecture.num_arrays):
            atoms = [q for q, loc in self.locations.items() if loc.array == aod]
            if not atoms:
                continue
            if max(self.n_vib[q] for q in atoms) > threshold:
                events.append(CoolingEvent(aod=aod, num_atoms=len(atoms)))
                for q in atoms:
                    self.n_vib[q] = 0.0
                self.num_cooling_events += 1
        return events

    # -- queries ------------------------------------------------------------------

    def pair_n_vib(self, qubit_a: int, qubit_b: int) -> float:
        """Effective n_vib of a gate pair (Sec. IV, Eq. 2 convention).

        AOD-SLM pairs use the AOD atom's n_vib; AOD-AOD pairs sum both.
        """
        la, lb = self.locations[qubit_a], self.locations[qubit_b]
        total = 0.0
        if la.is_aod:
            total += self.n_vib[qubit_a]
        if lb.is_aod:
            total += self.n_vib[qubit_b]
        return total
