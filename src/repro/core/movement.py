"""Movement kinematics, heating (n_vib) tracking, and cooling insertion.

Implements Sec. IV's physics bookkeeping on top of the stage plans produced
by the router:

* AOD line positions persist across stages (in site units).  Engaged lines
  travel to their interaction coordinates; after the Rydberg pulse they
  retreat to ``target + parking_offset(aod)``, a per-AOD fractional offset
  that keeps parked atoms out of blockade range of every SLM trap, meeting
  point, and other-AOD parked atom (see :mod:`repro.core.constraints`).
  The retreat distance is folded into the stage's movement total.
* Every atom in a moved row or column heats: ``delta n_vib`` follows the
  constant-jerk profile formula (Sec. IV) and accumulates per atom.
* When any atom of an AOD exceeds the cooling threshold, the whole AOD array
  is swapped with a pre-cooled twin (2 CZ per atom) and its atoms' n_vib
  reset — the paper's cooling procedure.

The tracker emits **columnar**: :meth:`MovementTracker.bind_store` returns
an emitter closure over a :class:`~repro.core.program.ProgramStore` that
appends move records and the per-atom displacement/heating history straight
into the store's flat columns — the router's per-stage emission hot path.
Internals are list-indexed (line positions, atoms-per-line, array-of-atom)
and atoms moved along a single axis share one per-line heat computation,
but every float expression and traversal order is bit-identical to the
historical object-building loop — including the ``set(dx) | set(dy)``
iteration the loss-sample log is pinned to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..hardware.parameters import HardwareParams
from ..hardware.raa import AtomLocation, RAAArchitecture
from .constraints import parking_offset
from .instructions import CoolingEvent, Move

if TYPE_CHECKING:
    from .program import ProgramStore

#: A line's row/column maps as the router's stage plans produce them.
LineMaps = dict[int, dict[int, float]]


@dataclass
class MovementTracker:
    """Stateful AOD-line positions and per-atom heating across stages."""

    architecture: RAAArchitecture
    locations: dict[int, AtomLocation]
    params: HardwareParams
    cooling_threshold: float | None = None
    #: per-AOD line positions in site units, indexed ``[aod][line]``
    row_pos: dict[int, list[float]] = field(default_factory=dict)
    col_pos: dict[int, list[float]] = field(default_factory=dict)
    #: per-atom vibrational quantum number, indexed by qubit slot
    n_vib: list[float] = field(default_factory=list)
    #: n_vib value at each (atom, move) event, for the loss model
    loss_samples: list[float] = field(default_factory=list)
    num_cooling_events: int = 0

    def __post_init__(self) -> None:
        if self.cooling_threshold is None:
            self.cooling_threshold = self.params.n_vib_cooling_threshold
        num_arrays = self.architecture.num_arrays
        for a in range(1, num_arrays):
            shape = self.architecture.array_shape(a)
            off = parking_offset(a)
            self.row_pos[a] = [r + off for r in range(shape.rows)]
            self.col_pos[a] = [c + off for c in range(shape.cols)]
        size = max(self.locations, default=-1) + 1
        if not self.n_vib:
            self.n_vib = [0.0] * size
        #: atoms-per-line lookup, indexed ``[aod][line]`` (AOD atoms only);
        #: per-line order follows the ``locations`` iteration order — the
        #: pinned dy/dx insertion (and so loss-sample) order
        self._row_atoms: list[list[list[int]]] = [
            [
                []
                for _ in range(
                    self.architecture.array_shape(a).rows if a else 0
                )
            ]
            for a in range(num_arrays)
        ]
        self._col_atoms: list[list[list[int]]] = [
            [
                []
                for _ in range(
                    self.architecture.array_shape(a).cols if a else 0
                )
            ]
            for a in range(num_arrays)
        ]
        #: array id per qubit slot (list-indexed; slots are small ints)
        self._array_of: list[int] = [0] * size
        for q, loc in self.locations.items():
            self._array_of[q] = loc.array
            if loc.is_aod:
                self._row_atoms[loc.array][loc.row].append(q)
                self._col_atoms[loc.array][loc.col].append(q)
        self._atoms_by_array: dict[int, list[int]] = {}
        for q, loc in self.locations.items():
            self._atoms_by_array.setdefault(loc.array, []).append(q)
        #: arrays holding an atom over the cooling threshold — maintained
        #: by the heating loop (one float compare per heated atom; the
        #: array lookup happens only on a crossing), so maybe_cool is O(1)
        #: on the overwhelmingly common cold stages
        self._threshold = float(self.cooling_threshold)
        self._hot_arrays: set[int] = {
            self._array_of[q]
            for q in self.locations
            if self.n_vib[q] > self._threshold
        }
        #: heating-formula denominator, factored out of the per-move loop;
        #: identical float product to HardwareParams.delta_n_vib's
        self._dnv_denom = (
            self.params.xzpf * (self.params.omega0**2) * (self.params.t_per_move**2)
        )
        #: per-AOD parking offsets, hoisted out of the stage loop
        self._park: list[float] = [
            parking_offset(a) for a in range(self.architecture.num_arrays)
        ]
        self._emitter: Callable[[LineMaps, LineMaps], None] | None = None
        self._bound_store: "ProgramStore | None" = None

    # -- stage application ------------------------------------------------------

    def bind_store(self, store: "ProgramStore") -> Callable[[LineMaps, LineMaps], None]:
        """An emitter ``emit(row_maps, col_maps)`` appending into *store*.

        One routing stage per call: move engaged lines to their targets,
        pulse, then retreat them — recording the line moves and per-atom
        displacements (metres) in *store*'s open stage and accumulating
        heating into the tracker.  Callers read gate-time n_vib values
        *before* :meth:`maybe_cool`, so the heating error of this stage's
        gates sees the pre-cooling temperature.

        Binding hoists every column append and tracker table into the
        closure once, so the per-stage cost is pure loop work.  The float
        math matches the historical per-atom loop bit-for-bit: atoms moved
        along one axis reuse their line's ``(0.0 + t**2) ** 0.5`` distance
        and heat increment (equal inputs, equal expressions), and the
        traversal order — including the pinned ``set(dx) | set(dy)``
        loss-sample order — is unchanged.
        """
        pitch = self.params.atom_distance
        row_pos = self.row_pos
        col_pos = self.col_pos
        row_atoms = self._row_atoms
        col_atoms = self._col_atoms
        park = self._park
        n_vib = self.n_vib
        dnv_denom = self._dnv_denom
        loss_append = self.loss_samples.append
        array_of = self._array_of
        hot_add = self._hot_arrays.add
        threshold = self._threshold

        aod_append = store.move_aod.append
        axis_append = store.move_axis.append
        index_append = store.move_index.append
        start_append = store.move_start.append
        end_append = store.move_end.append
        amd_qubit_append = store.amd_qubit.append
        amd_dist_append = store.amd_dist.append

        # per-stage scratch, reused across calls (cleared, not reallocated)
        dx: dict[int, float] = {}
        dy: dict[int, float] = {}
        # travel -> (d_m, delta_n_vib) memos.  Heat depends only on the
        # displacement and hardware constants, and travels are quantized
        # (half-integer lattice + per-AOD parking offsets), so these hit
        # across the whole route; capped as a safety valve.
        line_heat: dict[float, tuple[float, float]] = {}
        pair_heat: dict[tuple[float, float], tuple[float, float]] = {}

        def emit(row_maps: LineMaps, col_maps: LineMaps) -> None:
            dx.clear()
            dy.clear()
            for aod, rmap in row_maps.items():
                if not rmap:
                    continue
                off = park[aod]
                pos = row_pos[aod]
                atoms = row_atoms[aod]
                for r, target in rmap.items():
                    start = pos[r]
                    travel = abs(start - target) + off
                    aod_append(aod)
                    axis_append("row")
                    index_append(r)
                    start_append(start)
                    end_append(float(target))
                    pos[r] = target + off
                    for q in atoms[r]:
                        dy[q] = travel
            for aod, cmap in col_maps.items():
                if not cmap:
                    continue
                off = park[aod]
                pos = col_pos[aod]
                atoms = col_atoms[aod]
                for c, target in cmap.items():
                    start = pos[c]
                    travel = abs(start - target) + off
                    aod_append(aod)
                    axis_append("col")
                    index_append(c)
                    start_append(start)
                    end_append(float(target))
                    pos[c] = target + off
                    for q in atoms[c]:
                        dx[q] = travel

            # NOTE: the traversal order (and with it the loss-sample order)
            # is pinned to the historical `set(dx) | set(dy)` construction —
            # the noisy simulator consumes the log positionally.
            for q in set(dx) | set(dy):
                tx = dx.get(q)
                ty = dy.get(q)
                if tx is None:
                    t = ty
                elif ty is None:
                    t = tx
                else:
                    t = None
                if t is not None:
                    # Single-axis atom: every atom moved by this travel
                    # shares the same displacement, so compute (and round)
                    # once per travel value.  `(t ** 2) ** 0.5` is
                    # bit-identical to the historical
                    # `(0.0 + t ** 2) ** 0.5`.
                    cached = line_heat.get(t)
                    if cached is None:
                        d_sites = (t**2) ** 0.5
                        d_m = d_sites * pitch
                        # delta_n_vib(d_m) inlined (same expression order
                        # bit-for-bit)
                        val = 6.0 * d_m / dnv_denom
                        cached = (d_m, 0.5 * val * val)
                        if len(line_heat) > 4096:
                            line_heat.clear()
                        line_heat[t] = cached
                    d_m, inc = cached
                else:
                    key = (tx, ty)
                    cached = pair_heat.get(key)
                    if cached is None:
                        d_sites = (tx**2 + ty**2) ** 0.5
                        if d_sites <= 0.0:
                            continue
                        d_m = d_sites * pitch
                        val = 6.0 * d_m / dnv_denom
                        cached = (d_m, 0.5 * val * val)
                        if len(pair_heat) > 4096:
                            pair_heat.clear()
                        pair_heat[key] = cached
                    d_m, inc = cached
                amd_qubit_append(q)
                amd_dist_append(d_m)
                n = n_vib[q] + inc
                n_vib[q] = n
                if n > threshold:
                    hot_add(array_of[q])
                # The atom is hottest *during* the move; the loss model
                # samples the post-move vibrational state.
                loss_append(n)

        self._emitter = emit
        self._bound_store = store
        return emit

    def emit_stage_maps(
        self,
        row_maps: LineMaps,
        col_maps: LineMaps,
        store: "ProgramStore",
    ) -> None:
        """One-call form of :meth:`bind_store` (rebinds only on a new store)."""
        if self._bound_store is not store or self._emitter is None:
            self.bind_store(store)
        self._emitter(row_maps, col_maps)

    def apply_stage_maps(
        self,
        row_maps: LineMaps,
        col_maps: LineMaps,
    ) -> tuple[list[Move], dict[int, float]]:
        """Object-graph form of the stage emitter (legacy API).

        Returns the :class:`Move` records and per-atom displacement in
        metres.  The heating/position bookkeeping is exactly the columnar
        path's — this wrapper only materializes its output as objects.
        """
        from .program import ProgramStore

        scratch = ProgramStore()
        self.emit_stage_maps(row_maps, col_maps, scratch)
        self._emitter = None  # scratch store must not outlive this call
        self._bound_store = None
        moves = [
            Move(aod, axis, index, start, end)
            for aod, axis, index, start, end in zip(
                scratch.move_aod,
                scratch.move_axis,
                scratch.move_index,
                scratch.move_start,
                scratch.move_end,
            )
        ]
        distances = dict(zip(scratch.amd_qubit, scratch.amd_dist))
        return moves, distances

    def maybe_cool(self) -> list[CoolingEvent]:
        """Swap any overheated AOD with a cooled twin (Sec. IV).

        O(1) when no array is over threshold (the emitter maintains the
        hot-array set, so the common cold-stage call is one truthiness
        check plus an empty-list allocation).
        """
        if not self._hot_arrays:
            return []
        events: list[CoolingEvent] = []
        for aod in range(1, self.architecture.num_arrays):
            atoms = self._atoms_by_array.get(aod)
            if not atoms:
                continue
            if aod in self._hot_arrays:
                events.append(CoolingEvent(aod=aod, num_atoms=len(atoms)))
                for q in atoms:
                    self.n_vib[q] = 0.0
                self._hot_arrays.discard(aod)
                self.num_cooling_events += 1
        return events

    # -- queries ------------------------------------------------------------------

    def pair_n_vib(self, qubit_a: int, qubit_b: int) -> float:
        """Effective n_vib of a gate pair (Sec. IV, Eq. 2 convention).

        AOD-SLM pairs use the AOD atom's n_vib; AOD-AOD pairs sum both.
        """
        la, lb = self.locations[qubit_a], self.locations[qubit_b]
        total = 0.0
        if la.is_aod:
            total += self.n_vib[qubit_a]
        if lb.is_aod:
            total += self.n_vib[qubit_b]
        return total
