"""Movement kinematics, heating (n_vib) tracking, and cooling insertion.

Implements Sec. IV's physics bookkeeping on top of the stage plans produced
by the router:

* AOD line positions persist across stages (in site units).  Engaged lines
  travel to their interaction coordinates; after the Rydberg pulse they
  retreat to ``target + parking_offset(aod)``, a per-AOD fractional offset
  that keeps parked atoms out of blockade range of every SLM trap, meeting
  point, and other-AOD parked atom (see :mod:`repro.core.constraints`).
  The retreat distance is folded into the stage's movement total.
* Every atom in a moved row or column heats: ``delta n_vib`` follows the
  constant-jerk profile formula (Sec. IV) and accumulates per atom.
* When any atom of an AOD exceeds the cooling threshold, the whole AOD array
  is swapped with a pre-cooled twin (2 CZ per atom) and its atoms' n_vib
  reset — the paper's cooling procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.parameters import HardwareParams
from ..hardware.raa import AtomLocation, RAAArchitecture
from .constraints import parking_offset
from .instructions import CoolingEvent, Move


@dataclass
class MovementTracker:
    """Stateful AOD-line positions and per-atom heating across stages."""

    architecture: RAAArchitecture
    locations: dict[int, AtomLocation]
    params: HardwareParams
    cooling_threshold: float | None = None
    row_pos: dict[int, dict[int, float]] = field(default_factory=dict)
    col_pos: dict[int, dict[int, float]] = field(default_factory=dict)
    n_vib: dict[int, float] = field(default_factory=dict)
    #: n_vib value at each (atom, move) event, for the loss model
    loss_samples: list[float] = field(default_factory=list)
    num_cooling_events: int = 0

    def __post_init__(self) -> None:
        if self.cooling_threshold is None:
            self.cooling_threshold = self.params.n_vib_cooling_threshold
        for a in range(1, self.architecture.num_arrays):
            shape = self.architecture.array_shape(a)
            off = parking_offset(a)
            self.row_pos[a] = {r: r + off for r in range(shape.rows)}
            self.col_pos[a] = {c: c + off for c in range(shape.cols)}
        for q in self.locations:
            self.n_vib.setdefault(q, 0.0)
        self._atoms_by_row: dict[tuple[int, int], list[int]] = {}
        self._atoms_by_col: dict[tuple[int, int], list[int]] = {}
        for q, loc in self.locations.items():
            if loc.is_aod:
                self._atoms_by_row.setdefault((loc.array, loc.row), []).append(q)
                self._atoms_by_col.setdefault((loc.array, loc.col), []).append(q)
        self._atoms_by_array: dict[int, list[int]] = {}
        self._array_of: dict[int, int] = {}
        for q, loc in self.locations.items():
            self._atoms_by_array.setdefault(loc.array, []).append(q)
            self._array_of[q] = loc.array
        #: running max n_vib per array (reset on cooling), so maybe_cool
        #: need not rescan every atom each stage
        self._max_n_vib: dict[int, float] = {
            a: 0.0 for a in self._atoms_by_array
        }
        for q, n in self.n_vib.items():
            a = self._array_of[q]
            if n > self._max_n_vib[a]:
                self._max_n_vib[a] = n
        #: heating-formula denominator, factored out of the per-move loop;
        #: identical float product to HardwareParams.delta_n_vib's
        self._dnv_denom = (
            self.params.xzpf * (self.params.omega0**2) * (self.params.t_per_move**2)
        )
        #: per-AOD parking offsets, hoisted out of the stage loop
        self._park: list[float] = [
            parking_offset(a) for a in range(self.architecture.num_arrays)
        ]

    # -- stage application ------------------------------------------------------

    def apply_stage_maps(
        self,
        row_maps: dict[int, dict[int, float]],
        col_maps: dict[int, dict[int, float]],
    ) -> tuple[list[Move], dict[int, float]]:
        """Move engaged lines to their targets, pulse, then retreat them.

        Returns the :class:`Move` records and per-atom displacement in
        metres.  Callers read gate-time n_vib values *before* invoking
        :meth:`maybe_cool`, so the heating error of this stage's gates sees
        the pre-cooling temperature.
        """
        pitch = self.params.atom_distance
        moves: list[Move] = []
        dx: dict[int, float] = {}
        dy: dict[int, float] = {}
        atoms_by_row = self._atoms_by_row
        atoms_by_col = self._atoms_by_col
        park = self._park

        moves_append = moves.append
        for aod, rmap in row_maps.items():
            if not rmap:
                continue
            off = park[aod]
            pos = self.row_pos[aod]
            for r, target in rmap.items():
                start = pos[r]
                travel = abs(start - target) + off
                moves_append(Move(aod, "row", r, start, float(target)))
                pos[r] = target + off
                for q in atoms_by_row.get((aod, r), ()):
                    dy[q] = travel
        for aod, cmap in col_maps.items():
            if not cmap:
                continue
            off = park[aod]
            pos = self.col_pos[aod]
            for c, target in cmap.items():
                start = pos[c]
                travel = abs(start - target) + off
                moves_append(Move(aod, "col", c, start, float(target)))
                pos[c] = target + off
                for q in atoms_by_col.get((aod, c), ()):
                    dx[q] = travel

        distances: dict[int, float] = {}
        n_vib = self.n_vib
        dnv_denom = self._dnv_denom
        loss_append = self.loss_samples.append
        array_of = self._array_of
        max_n_vib = self._max_n_vib
        # NOTE: the traversal order (and with it the loss-sample order) is
        # pinned to the historical `set(dx) | set(dy)` construction — the
        # noisy simulator consumes the log positionally.
        for q in set(dx) | set(dy):
            d_sites = (dx.get(q, 0.0) ** 2 + dy.get(q, 0.0) ** 2) ** 0.5
            if d_sites <= 0.0:
                continue
            d_m = d_sites * pitch
            distances[q] = d_m
            # delta_n_vib(d_m) inlined (same expression order bit-for-bit)
            val = 6.0 * d_m / dnv_denom
            n = n_vib[q] + 0.5 * val * val
            n_vib[q] = n
            if n > max_n_vib[array_of[q]]:
                max_n_vib[array_of[q]] = n
            # The atom is hottest *during* the move; the loss model samples
            # the post-move vibrational state.
            loss_append(n)

        return moves, distances

    def maybe_cool(self) -> list[CoolingEvent]:
        """Swap any overheated AOD with a cooled twin (Sec. IV)."""
        events: list[CoolingEvent] = []
        threshold = float(self.cooling_threshold)
        for aod in range(1, self.architecture.num_arrays):
            atoms = self._atoms_by_array.get(aod)
            if not atoms:
                continue
            if self._max_n_vib[aod] > threshold:
                events.append(CoolingEvent(aod=aod, num_atoms=len(atoms)))
                for q in atoms:
                    self.n_vib[q] = 0.0
                self._max_n_vib[aod] = 0.0
                self.num_cooling_events += 1
        return events

    # -- queries ------------------------------------------------------------------

    def pair_n_vib(self, qubit_a: int, qubit_b: int) -> float:
        """Effective n_vib of a gate pair (Sec. IV, Eq. 2 convention).

        AOD-SLM pairs use the AOD atom's n_vib; AOD-AOD pairs sum both.
        """
        la, lb = self.locations[qubit_a], self.locations[qubit_b]
        total = 0.0
        if la.is_aod:
            total += self.n_vib[qubit_a]
        if lb.is_aod:
            total += self.n_vib[qubit_b]
        return total
