"""Columnar program store: structure-of-arrays stage emission.

The object-graph :class:`~repro.core.instructions.RAAProgram` models a
compiled program as ``list[Stage]`` with per-stage ``Move`` / ``RamanPulse``
/ ``RydbergGate`` / ``CoolingEvent`` dataclasses.  That layout is what made
stage emission the dominant router cost on deep, narrow circuits (BV, QSim):
per-stage maps are tiny (2-8 entries), so the cost is pure python object
bookkeeping — one ``Stage`` plus a handful of frozen dataclasses and dicts
per router iteration.

:class:`ProgramStore` keeps the same program as flat *columns* (plain python
lists of scalars, one list per field) plus a CSR-style stage-offset table:
``stage k``'s moves are rows ``off_move[k]:off_move[k+1]`` of the move
columns, and likewise for Raman pulses, Rydberg gates, cooling events, and
the per-atom move-distance log.  The router appends scalars during emission
and closes a stage with :meth:`end_stage` — no per-stage objects exist on
the hot path.

Consumers keep working unchanged through **lazy views**:
``program.stages[i]`` returns a :class:`StageView` that materializes the
legacy dataclasses on demand and is attribute-compatible with ``Stage``
(including iteration order — ``atom_move_distance`` preserves the pinned
insertion order the noisy simulator consumes positionally).  Aggregate
consumers (fidelity, metrics, serialization, the noisy sim) read the columns
directly and never materialize a view.

Every headline metric matches the object representation bit-for-bit: the
reductions walk the columns in exactly the order the legacy properties
walked the object lists, with the same accumulation order.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..hardware.parameters import HardwareParams
from ..hardware.raa import AtomLocation
from .instructions import (
    CoolingEvent,
    Move,
    RAAProgram,
    RamanPulse,
    RydbergGate,
    Stage,
)

#: ``Move.axis`` values in column encoding order (the columnar JSON codec
#: stores axes as indices into this tuple).
AXES = ("row", "col")

#: Chunk-document column layout: ``(family key, column key, store attribute,
#: encode, decode)``.  ``encode`` lowers a column slice to JSON primitives
#: (``None`` when the scalars already are); ``decode`` is its exact inverse.
#: Family and column keys match the ``columns`` table of the v2 columnar
#: document (:mod:`repro.core.serialize`), so a chunk is a stage-range slice
#: of that document with offsets rebased to 0.
_COLUMN_SPEC: tuple = (
    ("raman", "qubit", "raman_qubit", None, None),
    ("raman", "name", "raman_name", None, None),
    (
        "raman",
        "params",
        "raman_params",
        lambda vs: [list(p) for p in vs],
        lambda vs: [tuple(p) for p in vs],
    ),
    ("moves", "aod", "move_aod", None, None),
    (
        "moves",
        "axis",
        "move_axis",
        lambda vs: [AXES.index(a) for a in vs],
        lambda vs: [AXES[a] for a in vs],
    ),
    ("moves", "index", "move_index", None, None),
    ("moves", "start", "move_start", None, None),
    ("moves", "end", "move_end", None, None),
    ("gates", "a", "gate_a", None, None),
    ("gates", "b", "gate_b", None, None),
    ("gates", "site_r", "gate_site_r", None, None),
    ("gates", "site_c", "gate_site_c", None, None),
    ("gates", "n_vib", "gate_n_vib", None, None),
    ("gates", "name", "gate_name", None, None),
    (
        "gates",
        "params",
        "gate_params",
        lambda vs: [list(p) for p in vs],
        lambda vs: [tuple(p) for p in vs],
    ),
    ("cooling", "aod", "cool_aod", None, None),
    ("cooling", "num_atoms", "cool_atoms", None, None),
    ("amd", "qubit", "amd_qubit", None, None),
    ("amd", "dist", "amd_dist", None, None),
)

#: family key -> CSR offset-table attribute, in document order
_OFFSET_SPEC: tuple = (
    ("raman", "off_raman"),
    ("moves", "off_move"),
    ("gates", "off_gate"),
    ("cooling", "off_cool"),
    ("amd", "off_amd"),
)


def _duration_lut(params: HardwareParams) -> list[float]:
    """Stage duration for every (raman, move, gate, cool) activity combo.

    Term order matches ``Stage.duration`` exactly (t_1q, then t_per_move,
    then t_2q, then the cooling term), so ``lut[combo]`` is bit-identical
    to the scalar if-chain for that stage.
    """
    t_1q = params.t_1q
    t_move = params.t_per_move
    t_2q = params.t_2q
    t_cool = params.t_per_move + 2 * params.t_2q
    lut = []
    for bits in range(16):
        t = 0.0
        if bits & 1:
            t += t_1q
        if bits & 2:
            t += t_move
        if bits & 4:
            t += t_2q
        if bits & 8:
            t += t_cool
        lut.append(t)
    return lut


def _stage_times(
    off_r: np.ndarray,
    off_m: np.ndarray,
    off_g: np.ndarray,
    off_c: np.ndarray,
    lut: np.ndarray,
) -> list[float]:
    """Per-stage durations via the activity-combo LUT (vectorized).

    Each stage's 4-bit combo index is computed elementwise from the CSR
    offset deltas; the caller accumulates the returned python floats
    sequentially so the summation order matches the scalar loop.
    """
    combo = (
        (off_r[1:] > off_r[:-1]).astype(np.int8)
        + 2 * (off_m[1:] > off_m[:-1]).astype(np.int8)
        + 4 * (off_g[1:] > off_g[:-1]).astype(np.int8)
        + 8 * (off_c[1:] > off_c[:-1]).astype(np.int8)
    )
    return lut[combo].tolist()


class StageView:
    """Lazy, ``Stage``-compatible view over one stage of a :class:`ProgramStore`.

    Attribute access materializes the legacy frozen dataclasses from the
    column slices on first use and caches them, so a view that is only
    asked for ``duration()`` or ``has_movement`` never builds an object
    list.  Field order and values are bit-identical to the ``Stage`` the
    legacy emission path would have produced.
    """

    __slots__ = (
        "_store",
        "_index",
        "_one_qubit_gates",
        "_moves",
        "_gates",
        "_cooling",
        "_atom_move_distance",
    )

    def __init__(self, store: "ProgramStore", index: int) -> None:
        self._store = store
        self._index = index
        self._one_qubit_gates: list[RamanPulse] | None = None
        self._moves: list[Move] | None = None
        self._gates: list[RydbergGate] | None = None
        self._cooling: list[CoolingEvent] | None = None
        self._atom_move_distance: dict[int, float] | None = None

    # -- materialized slices ---------------------------------------------------

    @property
    def one_qubit_gates(self) -> list[RamanPulse]:
        if self._one_qubit_gates is None:
            s = self._store
            lo, hi = s.off_raman[self._index], s.off_raman[self._index + 1]
            self._one_qubit_gates = [
                RamanPulse(s.raman_qubit[i], s.raman_name[i], s.raman_params[i])
                for i in range(lo, hi)
            ]
        return self._one_qubit_gates

    @property
    def moves(self) -> list[Move]:
        if self._moves is None:
            s = self._store
            lo, hi = s.off_move[self._index], s.off_move[self._index + 1]
            self._moves = [
                Move(
                    s.move_aod[i],
                    s.move_axis[i],
                    s.move_index[i],
                    s.move_start[i],
                    s.move_end[i],
                )
                for i in range(lo, hi)
            ]
        return self._moves

    @property
    def gates(self) -> list[RydbergGate]:
        if self._gates is None:
            s = self._store
            lo, hi = s.off_gate[self._index], s.off_gate[self._index + 1]
            self._gates = [
                RydbergGate(
                    s.gate_a[i],
                    s.gate_b[i],
                    (s.gate_site_r[i], s.gate_site_c[i]),
                    n_vib=s.gate_n_vib[i],
                    name=s.gate_name[i],
                    params=s.gate_params[i],
                )
                for i in range(lo, hi)
            ]
        return self._gates

    @property
    def cooling(self) -> list[CoolingEvent]:
        if self._cooling is None:
            s = self._store
            lo, hi = s.off_cool[self._index], s.off_cool[self._index + 1]
            self._cooling = [
                CoolingEvent(s.cool_aod[i], s.cool_atoms[i])
                for i in range(lo, hi)
            ]
        return self._cooling

    @property
    def atom_move_distance(self) -> dict[int, float]:
        if self._atom_move_distance is None:
            s = self._store
            lo, hi = s.off_amd[self._index], s.off_amd[self._index + 1]
            # Insertion order matches the emission order, which the noisy
            # simulator zips positionally against atom_loss_log.
            self._atom_move_distance = {
                s.amd_qubit[i]: s.amd_dist[i] for i in range(lo, hi)
            }
        return self._atom_move_distance

    # -- Stage-compatible derived quantities ------------------------------------

    @property
    def has_movement(self) -> bool:
        s = self._store
        return s.off_move[self._index + 1] > s.off_move[self._index]

    @property
    def max_move_distance_sites(self) -> float:
        s = self._store
        lo, hi = s.off_move[self._index], s.off_move[self._index + 1]
        return max(
            (abs(s.move_end[i] - s.move_start[i]) for i in range(lo, hi)),
            default=0.0,
        )

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock stage time; same term order as ``Stage.duration``."""
        s = self._store
        i = self._index
        t = 0.0
        if s.off_raman[i + 1] > s.off_raman[i]:
            t += params.t_1q
        if s.off_move[i + 1] > s.off_move[i]:
            t += params.t_per_move
        if s.off_gate[i + 1] > s.off_gate[i]:
            t += params.t_2q
        if s.off_cool[i + 1] > s.off_cool[i]:
            t += params.t_per_move + 2 * params.t_2q
        return t

    def materialize(self) -> Stage:
        """A real (mutable, legacy) ``Stage`` with copies of every field."""
        return Stage(
            one_qubit_gates=list(self.one_qubit_gates),
            moves=list(self.moves),
            gates=list(self.gates),
            cooling=list(self.cooling),
            atom_move_distance=dict(self.atom_move_distance),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StageView {self._index}: "
            f"{len(self.one_qubit_gates)}x1Q {len(self.moves)} moves "
            f"{len(self.gates)} gates>"
        )


class StageList:
    """Sequence facade over a store's stages; indexing yields views."""

    __slots__ = ("_store",)

    def __init__(self, store: "ProgramStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.num_stages

    def __getitem__(self, index):
        n = self._store.num_stages
        if isinstance(index, slice):
            return [StageView(self._store, i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"stage index {index} out of range (0..{n - 1})")
        return StageView(self._store, index)

    def __iter__(self) -> Iterator[StageView]:
        store = self._store
        return (StageView(store, i) for i in range(store.num_stages))


@dataclass
class ProgramStore:
    """A compiled RAA program in structure-of-arrays layout.

    Drop-in compatible with :class:`~repro.core.instructions.RAAProgram`
    for every consumer: the same top-level attributes, the same headline
    metric properties (computed as column reductions), and ``stages``
    exposing lazy :class:`StageView` objects.

    The store doubles as its own builder: the router appends scalars to
    the columns and calls :meth:`end_stage` to close each stage.  The
    offset lists always hold ``num_stages + 1`` entries (CSR convention,
    leading 0).
    """

    num_qubits: int = 0
    qubit_locations: dict[int, AtomLocation] = field(default_factory=dict)
    n_vib_final: dict[int, float] = field(default_factory=dict)
    atom_loss_log: list[float] = field(default_factory=list)
    num_transfers: int = 0
    overlap_rejections: int = 0
    compile_seconds: float = 0.0
    #: wall-clock spent in the router's emission phase (the per-stage
    #: record-keeping blocks, excluding constraint search) — the quantity
    #: ``repro bench --perf`` tracks as ``emit_seconds``
    emit_seconds: float = 0.0
    #: wall-clock spent in the router's constraint-probing phase (the
    #: per-stage ``_select_gates`` window: scratch-plan reset, candidate
    #: lookup, and ``place_pair`` probing over the 2Q front) — the
    #: quantity ``repro bench --perf`` tracks as ``probe_seconds``
    probe_seconds: float = 0.0

    # -- columns (one python list of scalars per field) ------------------------
    raman_qubit: list[int] = field(default_factory=list)
    raman_name: list[str] = field(default_factory=list)
    raman_params: list[tuple[float, ...]] = field(default_factory=list)

    move_aod: list[int] = field(default_factory=list)
    move_axis: list[str] = field(default_factory=list)  # "row" | "col"
    move_index: list[int] = field(default_factory=list)
    move_start: list[float] = field(default_factory=list)
    move_end: list[float] = field(default_factory=list)

    gate_a: list[int] = field(default_factory=list)
    gate_b: list[int] = field(default_factory=list)
    gate_site_r: list[float] = field(default_factory=list)
    gate_site_c: list[float] = field(default_factory=list)
    gate_n_vib: list[float] = field(default_factory=list)
    gate_name: list[str] = field(default_factory=list)
    gate_params: list[tuple[float, ...]] = field(default_factory=list)

    cool_aod: list[int] = field(default_factory=list)
    cool_atoms: list[int] = field(default_factory=list)

    #: per-atom move-distance log (metres), stage-segmented like the rest;
    #: the pair order within a stage is the pinned loss-sample order
    amd_qubit: list[int] = field(default_factory=list)
    amd_dist: list[float] = field(default_factory=list)

    # -- stage-index table (CSR offsets, len == num_stages + 1) ----------------
    off_raman: list[int] = field(default_factory=lambda: [0])
    off_move: list[int] = field(default_factory=lambda: [0])
    off_gate: list[int] = field(default_factory=lambda: [0])
    off_cool: list[int] = field(default_factory=lambda: [0])
    off_amd: list[int] = field(default_factory=lambda: [0])

    # -- building --------------------------------------------------------------

    def end_stage(self) -> None:
        """Close the currently-open stage (everything appended since the
        last close becomes stage ``num_stages``)."""
        self.off_raman.append(len(self.raman_qubit))
        self.off_move.append(len(self.move_aod))
        self.off_gate.append(len(self.gate_a))
        self.off_cool.append(len(self.cool_aod))
        self.off_amd.append(len(self.amd_qubit))

    @property
    def open_raman_count(self) -> int:
        """Raman pulses appended since the last :meth:`end_stage`."""
        return len(self.raman_qubit) - self.off_raman[-1]

    # -- stages ----------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        return len(self.off_gate) - 1

    @property
    def stages(self) -> StageList:
        return StageList(self)

    # -- cached numpy column views ---------------------------------------------

    def column_array(self, attr: str, dtype) -> np.ndarray:
        """Cached numpy view of a column (shared by the binary codec's
        ``tobytes`` packing and the vectorized reductions below).

        Entries are keyed by ``(attr, dtype)`` and validated against the
        column length, so router appends (which always grow the list)
        invalidate them naturally.  The cache lives in ``__dict__`` rather
        than a dataclass field: it is derived state, invisible to
        ``__eq__``/``__repr__``.  Code that mutates a column in place
        without changing its length must call :meth:`drop_column_arrays`.
        """
        cache = self.__dict__.setdefault("_np_views", {})
        column = getattr(self, attr)
        key = (attr, np.dtype(dtype).str)
        hit = cache.get(key)
        if hit is not None and hit[0] == len(column):
            return hit[1]
        arr = np.asarray(column, dtype=dtype)
        cache[key] = (len(column), arr)
        return arr

    def drop_column_arrays(self) -> None:
        """Invalidate every cached column view (after in-place rewrites)."""
        self.__dict__.pop("_np_views", None)

    def _active_stage_count(self, off_attr: str) -> int:
        """Stages whose family slice is non-empty (exact: integer compare)."""
        off = self.column_array(off_attr, np.int64)
        if off.size <= 1:
            return 0
        return int(np.count_nonzero(off[1:] > off[:-1]))

    # -- headline metrics (column reductions) ----------------------------------

    @property
    def num_2q_gates(self) -> int:
        """Two-qubit gates executed by Rydberg pulses (cooling CZs excluded)."""
        return len(self.gate_a)

    @property
    def num_cooling_cz(self) -> int:
        """CZ gates spent on cooling swaps."""
        # integer sum: any order is exact, so the vectorized form is safe
        return 2 * int(self.column_array("cool_atoms", np.int64).sum())

    @property
    def num_1q_gates(self) -> int:
        return len(self.raman_qubit)

    @property
    def two_qubit_depth(self) -> int:
        """Number of stages whose Rydberg pulse executes at least one gate."""
        return self._active_stage_count("off_gate")

    @property
    def num_moves(self) -> int:
        return len(self.move_aod)

    @property
    def num_moving_stages(self) -> int:
        """Stages that move at least one AOD line."""
        return self._active_stage_count("off_move")

    @property
    def num_1q_stages(self) -> int:
        """Stages that flush at least one Raman pulse."""
        return self._active_stage_count("off_raman")

    def total_move_distance(self, params: HardwareParams) -> float:
        """Total AOD line travel in metres (same summation order as the
        object walk: moves in stage order).

        Per-move distances are computed elementwise in float64 (bit-equal
        to the scalar ``abs(e - s) * pitch``); only the accumulation stays
        sequential, preserving the dense sum's left-to-right order.
        """
        start = self.column_array("move_start", np.float64)
        end = self.column_array("move_end", np.float64)
        return sum((np.abs(end - start) * params.atom_distance).tolist())

    def avg_move_distance(self, params: HardwareParams) -> float:
        """Mean per-stage line travel (metres); Fig. 20's 'Avg. Moving Distance'."""
        moving = self.num_moving_stages
        if not moving:
            return 0.0
        return self.total_move_distance(params) / moving

    def execution_time(self, params: HardwareParams) -> float:
        """Wall-clock execution time in seconds (term and stage order
        identical to ``sum(Stage.duration)``).

        Vectorized via the 16-entry activity-combo LUT: per-stage durations
        come from :func:`_stage_times` (each LUT entry built with the exact
        scalar term order), then accumulate sequentially in stage order.
        """
        times = _stage_times(
            self.column_array("off_raman", np.int64),
            self.column_array("off_move", np.int64),
            self.column_array("off_gate", np.int64),
            self.column_array("off_cool", np.int64),
            np.asarray(_duration_lut(params), dtype=np.float64),
        )
        return sum(times, 0.0)

    @property
    def num_cooling_events(self) -> int:
        return len(self.cool_aod)

    def gate_pairs(self) -> list[tuple[int, int]]:
        """All executed 2Q pairs in order (for equivalence checks)."""
        return list(zip(self.gate_a, self.gate_b))

    def iter_gate_n_vib(self) -> Iterator[float]:
        """``n_vib`` per executed 2Q gate, in execution order.

        Fidelity scoring consumes this instead of the raw column so a
        :class:`SpillingProgramStore` can stream flushed segments from disk.
        """
        return iter(self.gate_n_vib)

    def gate_n_vib_arrays(self) -> Iterator[np.ndarray]:
        """``n_vib`` as float64 array chunks, in execution order.

        The vectorized form of :meth:`iter_gate_n_vib`: one cached view for
        a dense store, one array per flushed binary segment (plus the
        in-memory tail) for a spilling store.
        """
        yield self.column_array("gate_n_vib", np.float64)

    # -- stage-range chunks ----------------------------------------------------

    def chunk_doc(self, lo: int, hi: int) -> dict:
        """JSON-ready slice of the in-memory closed stages ``[lo, hi)``.

        The document mirrors the v2 columnar format's ``columns`` /
        ``stage_offsets`` tables for just that stage range, with the
        offsets rebased to start at 0 — so chunks are self-contained and
        concatenate by :meth:`extend_from_chunk`.  Indices address this
        store's offset tables directly (for a plain store that is the full
        program; a spilling store's tables only cover the in-memory tail).
        """
        closed = len(self.off_gate) - 1
        if not 0 <= lo <= hi <= closed:
            raise ValueError(f"stage range [{lo}, {hi}) outside 0..{closed}")
        bases: dict[str, tuple[int, int]] = {}
        offsets: dict[str, list[int]] = {}
        for fam, off_attr in _OFFSET_SPEC:
            off = getattr(self, off_attr)
            base = off[lo]
            bases[fam] = (base, off[hi])
            offsets[fam] = [o - base for o in off[lo : hi + 1]]
        columns: dict[str, dict[str, list]] = {fam: {} for fam, _ in _OFFSET_SPEC}
        for fam, key, attr, enc, _dec in _COLUMN_SPEC:
            base, top = bases[fam]
            sliced = getattr(self, attr)[base:top]
            columns[fam][key] = enc(sliced) if enc is not None else sliced
        return {"stages": hi - lo, "columns": columns, "stage_offsets": offsets}

    def extend_from_chunk(self, chunk: dict) -> None:
        """Append a :meth:`chunk_doc` stage range after this store's stages.

        The columnar equivalent of replaying the chunk's stages through
        :meth:`append_stage` — column concatenation plus an offset splice —
        and the assembly primitive for streamed program transfers and
        spilled segment files.
        """
        cols = chunk["columns"]
        for fam, key, attr, _enc, dec in _COLUMN_SPEC:
            values = cols[fam][key]
            getattr(self, attr).extend(dec(values) if dec is not None else values)
        offs = chunk["stage_offsets"]
        for fam, off_attr in _OFFSET_SPEC:
            mine = getattr(self, off_attr)
            base = mine[-1]
            mine.extend(base + o for o in offs[fam][1:])

    # -- conversions -----------------------------------------------------------

    def append_stage(self, stage: Stage | StageView) -> None:
        """Ingest one object-graph stage (fields copied into the columns)."""
        for p in stage.one_qubit_gates:
            self.raman_qubit.append(p.qubit)
            self.raman_name.append(p.name)
            self.raman_params.append(p.params)
        for m in stage.moves:
            self.move_aod.append(m.aod)
            self.move_axis.append(m.axis)
            self.move_index.append(m.index)
            self.move_start.append(m.start)
            self.move_end.append(m.end)
        for g in stage.gates:
            self.gate_a.append(g.qubit_a)
            self.gate_b.append(g.qubit_b)
            self.gate_site_r.append(g.site[0])
            self.gate_site_c.append(g.site[1])
            self.gate_n_vib.append(g.n_vib)
            self.gate_name.append(g.name)
            self.gate_params.append(g.params)
        for c in stage.cooling:
            self.cool_aod.append(c.aod)
            self.cool_atoms.append(c.num_atoms)
        for q, d in stage.atom_move_distance.items():
            self.amd_qubit.append(q)
            self.amd_dist.append(d)
        self.end_stage()

    def extend(self, other: "ProgramStore") -> None:
        """Append every stage of *other* after this store's stages.

        Column concatenation plus an offset-table splice — the columnar
        equivalent of ``stages.extend(other.stages)``.  Top-level fields
        (locations, loss log, counters) are left to the caller.
        """
        self.raman_qubit.extend(other.raman_qubit)
        self.raman_name.extend(other.raman_name)
        self.raman_params.extend(other.raman_params)
        self.move_aod.extend(other.move_aod)
        self.move_axis.extend(other.move_axis)
        self.move_index.extend(other.move_index)
        self.move_start.extend(other.move_start)
        self.move_end.extend(other.move_end)
        self.gate_a.extend(other.gate_a)
        self.gate_b.extend(other.gate_b)
        self.gate_site_r.extend(other.gate_site_r)
        self.gate_site_c.extend(other.gate_site_c)
        self.gate_n_vib.extend(other.gate_n_vib)
        self.gate_name.extend(other.gate_name)
        self.gate_params.extend(other.gate_params)
        self.cool_aod.extend(other.cool_aod)
        self.cool_atoms.extend(other.cool_atoms)
        self.amd_qubit.extend(other.amd_qubit)
        self.amd_dist.extend(other.amd_dist)
        for mine, theirs in (
            (self.off_raman, other.off_raman),
            (self.off_move, other.off_move),
            (self.off_gate, other.off_gate),
            (self.off_cool, other.off_cool),
            (self.off_amd, other.off_amd),
        ):
            base = mine[-1]
            mine.extend(base + off for off in theirs[1:])

    @classmethod
    def from_program(cls, program: "RAAProgram | ProgramStore") -> "ProgramStore":
        """Columnar copy of any program representation."""
        store = cls(
            num_qubits=program.num_qubits,
            qubit_locations=dict(program.qubit_locations),
            n_vib_final=dict(program.n_vib_final),
            atom_loss_log=list(program.atom_loss_log),
            num_transfers=program.num_transfers,
            overlap_rejections=program.overlap_rejections,
            compile_seconds=program.compile_seconds,
            emit_seconds=getattr(program, "emit_seconds", 0.0),
        )
        for stage in program.stages:
            store.append_stage(stage)
        return store

    def to_program(self) -> RAAProgram:
        """Materialize the legacy object-graph representation."""
        return RAAProgram(
            stages=[view.materialize() for view in self.stages],
            num_qubits=self.num_qubits,
            qubit_locations=dict(self.qubit_locations),
            n_vib_final=dict(self.n_vib_final),
            atom_loss_log=list(self.atom_loss_log),
            num_transfers=self.num_transfers,
            overlap_rejections=self.overlap_rejections,
            compile_seconds=self.compile_seconds,
        )


#: environment switch: set to a directory path to make the router emit into
#: a :class:`SpillingProgramStore` whose segment file lives there
SPILL_ENV = "REPRO_PROGRAM_SPILL"
#: environment override for the per-segment stage count
SPILL_STAGES_ENV = "REPRO_PROGRAM_SPILL_STAGES"
DEFAULT_SEGMENT_STAGES = 512


class SpillingProgramStore(ProgramStore):
    """Bounded-memory :class:`ProgramStore`: closed stages spill to disk.

    Every ``segment_stages`` closed stages, the in-memory columns are
    written to the segment file as one length-prefixed v3 binary chunk
    record (:mod:`repro.core.binformat`), truncated in place, and the
    offset tables rebased in place — *in place* because the router binds
    ``end_stage`` and the column ``.append`` methods to the concrete list
    objects before emission starts.  Emission RSS is therefore bounded by
    the segment size, not the circuit size.

    Aggregates stay bit-identical to a dense store: counting reductions
    come from running counters accumulated at flush time in stage order,
    and float reductions (:meth:`execution_time`,
    :meth:`total_move_distance`, :meth:`iter_gate_n_vib`) *seek-read* just
    the columns they need from each flushed segment (the per-segment
    section index captured at flush time maps a column name to its byte
    range), then walk the in-memory tail — per-element arithmetic is
    vectorized, accumulation order matches the dense loops exactly.
    Random access (``stages``, ``to_program``) transparently materializes
    a dense copy via :meth:`collect`.

    Only closed stages are covered by segments; rows appended after the
    last ``end_stage`` live in the in-memory tail (same as a dense store).
    The segment file is not reference-counted — call :meth:`discard` when
    the program is no longer needed.
    """

    def __init__(
        self,
        num_qubits: int = 0,
        *,
        spill_dir: str | None = None,
        segment_stages: int = DEFAULT_SEGMENT_STAGES,
    ) -> None:
        super().__init__(num_qubits=num_qubits)
        self.spill_dir = spill_dir
        self.segment_stages = max(1, int(segment_stages))
        self.segment_path: str | None = None
        self._flushed_stages = 0
        #: per-flushed-segment section indexes: name -> (descriptor, lo, hi)
        #: byte ranges into the segment file, captured at flush time
        self._segments: list[dict] = []
        self._f_1q = 0
        self._f_2q = 0
        self._f_moves = 0
        self._f_cool_events = 0
        self._f_cool_cz = 0
        self._f_2q_depth = 0
        self._f_moving_stages = 0
        self._f_1q_stages = 0
        self._collected: ProgramStore | None = None

    # -- building --------------------------------------------------------------

    def end_stage(self) -> None:
        super().end_stage()
        self._collected = None
        if len(self.off_gate) - 1 >= self.segment_stages:
            self._flush()

    def _flush(self) -> None:
        """Spill every closed in-memory stage to the segment file."""
        k = len(self.off_gate) - 1
        if k <= 0:
            return
        from . import binformat  # deferred: binformat imports this module

        doc = self.chunk_doc(0, k)
        off_r = self.column_array("off_raman", np.int64)
        off_m = self.column_array("off_move", np.int64)
        off_g = self.column_array("off_gate", np.int64)
        off_c = self.column_array("off_cool", np.int64)
        self._f_1q += int(off_r[k])
        self._f_2q += int(off_g[k])
        self._f_moves += int(off_m[k])
        self._f_cool_events += int(off_c[k])
        self._f_cool_cz += 2 * int(
            self.column_array("cool_atoms", np.int64)[: int(off_c[k])].sum()
        )
        self._f_2q_depth += int(np.count_nonzero(off_g[1:] > off_g[:-1]))
        self._f_moving_stages += int(np.count_nonzero(off_m[1:] > off_m[:-1]))
        self._f_1q_stages += int(np.count_nonzero(off_r[1:] > off_r[:-1]))
        record = binformat.encode_chunk(doc)
        if self.segment_path is None:
            fd, self.segment_path = tempfile.mkstemp(
                prefix="program-", suffix=".segs", dir=self.spill_dir
            )
            os.close(fd)
        with open(self.segment_path, "ab") as fh:
            pos = fh.tell()
            fh.write(len(record).to_bytes(4, "little"))
            fh.write(record)
        meta, payload_off = binformat.parse_record(record)
        start = pos + 4
        self._segments.append(
            {
                "start": start,
                "length": len(record),
                "stages": k,
                # section byte ranges rebased to absolute file offsets,
                # so reductions can seek straight to one column
                "index": binformat.section_index(meta, start + payload_off),
            }
        )
        cuts = {fam: getattr(self, off_attr)[k] for fam, off_attr in _OFFSET_SPEC}
        for fam, _key, attr, _enc, _dec in _COLUMN_SPEC:
            del getattr(self, attr)[: cuts[fam]]
        for fam, off_attr in _OFFSET_SPEC:
            off = getattr(self, off_attr)
            base = off[k]
            off[:] = [o - base for o in off[k:]]
        # the in-place truncation/rebase above can leave stale same-length
        # cached views behind — drop them all
        self.drop_column_arrays()
        self._flushed_stages += k

    def discard(self) -> None:
        """Delete the segment file (the store must not be read afterwards)."""
        if self.segment_path is not None:
            try:
                os.unlink(self.segment_path)
            except OSError:
                pass
            self.segment_path = None
            self._segments.clear()

    # -- segment iteration -----------------------------------------------------

    def _iter_flushed_docs(self) -> Iterator[dict]:
        """Decode every flushed segment record back to its chunk doc."""
        if self.segment_path is None:
            return
        from . import binformat

        with open(self.segment_path, "rb") as fh:
            while True:
                head = fh.read(4)
                if len(head) < 4:
                    return
                length = int.from_bytes(head, "little")
                yield binformat.decode_chunk(fh.read(length))

    def _iter_segment_columns(
        self, *names: str, as_array: bool = False
    ) -> Iterator[tuple]:
        """Seek-read the named columns from each flushed segment.

        Yields one tuple of columns per segment, touching only the
        requested byte ranges — no whole-record decode, no JSON replay.
        """
        if not self._segments:
            return
        from . import binformat

        with open(self.segment_path, "rb") as fh:
            for segment in self._segments:
                index = segment["index"]
                row = []
                for name in names:
                    sec, lo, hi = index[name]
                    fh.seek(lo)
                    row.append(
                        binformat.decode_section(
                            sec, fh.read(hi - lo), as_array=as_array
                        )
                    )
                yield tuple(row)

    def iter_segment_docs(self) -> Iterator[dict]:
        """All closed stages as chunk docs: flushed segments, then the tail."""
        yield from self._iter_flushed_docs()
        k = len(self.off_gate) - 1
        if k > 0:
            yield self.chunk_doc(0, k)

    def collect(self) -> ProgramStore:
        """Materialize a dense :class:`ProgramStore` (segments + tail)."""
        full = ProgramStore(
            num_qubits=self.num_qubits,
            qubit_locations=dict(self.qubit_locations),
            n_vib_final=dict(self.n_vib_final),
            atom_loss_log=list(self.atom_loss_log),
            num_transfers=self.num_transfers,
            overlap_rejections=self.overlap_rejections,
            compile_seconds=self.compile_seconds,
            emit_seconds=self.emit_seconds,
            probe_seconds=self.probe_seconds,
        )
        for doc in self.iter_segment_docs():
            full.extend_from_chunk(doc)
        # rows appended since the last end_stage ride along outside the
        # offset tables, exactly as in the dense representation
        cuts = {fam: getattr(self, off_attr)[-1] for fam, off_attr in _OFFSET_SPEC}
        for fam, _key, attr, _enc, _dec in _COLUMN_SPEC:
            getattr(full, attr).extend(getattr(self, attr)[cuts[fam] :])
        return full

    # -- stages ----------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        return self._flushed_stages + len(self.off_gate) - 1

    @property
    def stages(self) -> StageList:
        if self._flushed_stages == 0:
            return StageList(self)
        if self._collected is None:
            self._collected = self.collect()
        return self._collected.stages

    # -- headline metrics (flushed counters + in-memory tail) ------------------

    @property
    def num_2q_gates(self) -> int:
        return self._f_2q + len(self.gate_a)

    @property
    def num_cooling_cz(self) -> int:
        return self._f_cool_cz + sum(2 * n for n in self.cool_atoms)

    @property
    def num_1q_gates(self) -> int:
        return self._f_1q + len(self.raman_qubit)

    @property
    def two_qubit_depth(self) -> int:
        off = self.off_gate
        tail = sum(1 for i in range(len(off) - 1) if off[i + 1] > off[i])
        return self._f_2q_depth + tail

    @property
    def num_moves(self) -> int:
        return self._f_moves + len(self.move_aod)

    @property
    def num_moving_stages(self) -> int:
        off = self.off_move
        tail = sum(1 for i in range(len(off) - 1) if off[i + 1] > off[i])
        return self._f_moving_stages + tail

    @property
    def num_1q_stages(self) -> int:
        off = self.off_raman
        tail = sum(1 for i in range(len(off) - 1) if off[i + 1] > off[i])
        return self._f_1q_stages + tail

    @property
    def num_cooling_events(self) -> int:
        return self._f_cool_events + len(self.cool_aod)

    def total_move_distance(self, params: HardwareParams) -> float:
        # same left-to-right accumulation as the dense sum(): flushed rows
        # in segment order, then the in-memory tail — only the per-move
        # distances are vectorized (elementwise float64, bit-equal)
        pitch = params.atom_distance
        total = 0
        for start, end in self._iter_segment_columns(
            "moves.start", "moves.end", as_array=True
        ):
            deltas = np.abs(
                end.astype(np.float64) - start.astype(np.float64)
            )
            total = sum((deltas * pitch).tolist(), total)
        start = self.column_array("move_start", np.float64)
        end = self.column_array("move_end", np.float64)
        return float(sum((np.abs(end - start) * pitch).tolist(), total))

    def execution_time(self, params: HardwareParams) -> float:
        lut = np.asarray(_duration_lut(params), dtype=np.float64)
        total = 0.0
        for off_r, off_m, off_g, off_c in self._iter_segment_columns(
            "off.raman", "off.moves", "off.gates", "off.cooling",
            as_array=True,
        ):
            times = _stage_times(
                off_r.astype(np.int64),
                off_m.astype(np.int64),
                off_g.astype(np.int64),
                off_c.astype(np.int64),
                lut,
            )
            total = sum(times, total)
        times = _stage_times(
            self.column_array("off_raman", np.int64),
            self.column_array("off_move", np.int64),
            self.column_array("off_gate", np.int64),
            self.column_array("off_cool", np.int64),
            lut,
        )
        return sum(times, total)

    def gate_pairs(self) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        for a, b in self._iter_segment_columns("gates.a", "gates.b"):
            pairs.extend(zip(a, b))
        pairs.extend(zip(self.gate_a, self.gate_b))
        return pairs

    def iter_gate_n_vib(self) -> Iterator[float]:
        for (n_vib,) in self._iter_segment_columns("gates.n_vib"):
            yield from n_vib
        yield from self.gate_n_vib

    def gate_n_vib_arrays(self) -> Iterator[np.ndarray]:
        for (n_vib,) in self._iter_segment_columns(
            "gates.n_vib", as_array=True
        ):
            yield n_vib.astype(np.float64)
        yield self.column_array("gate_n_vib", np.float64)

    def to_program(self) -> RAAProgram:
        return self.collect().to_program()


def emission_store(num_qubits: int) -> ProgramStore:
    """The store the router emits into.

    A plain :class:`ProgramStore` by default; a
    :class:`SpillingProgramStore` when ``REPRO_PROGRAM_SPILL`` names a
    directory (``REPRO_PROGRAM_SPILL_STAGES`` overrides the segment size).
    """
    spill_dir = os.environ.get(SPILL_ENV)
    if not spill_dir:
        return ProgramStore(num_qubits=num_qubits)
    segment_stages = int(os.environ.get(SPILL_STAGES_ENV, DEFAULT_SEGMENT_STAGES))
    return SpillingProgramStore(
        num_qubits=num_qubits,
        spill_dir=spill_dir,
        segment_stages=segment_stages,
    )


#: Any compiled-program representation a consumer may receive.
Program = RAAProgram | ProgramStore
