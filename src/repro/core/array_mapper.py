"""Qubit-array mapper (Sec. III-A, Algorithm 1).

Decides which array (SLM or one of the AODs) each logical qubit lives in by
greedy MAX k-cut over the *gate frequency graph*: vertices are qubits, edge
weights sum ``gamma^layer`` over the circuit's 2Q gates (later layers decay,
because the compiler has less control over late-circuit placement).

The greedy achieves the classic ``1 - 1/k`` approximation: each vertex joins
the partition that maximizes its cut to already-assigned vertices —
equivalently, minimizes its weight *into* the chosen partition.  We extend
the paper's Algorithm 1 with the (necessary) array-capacity constraint and
process vertices in descending incident-weight order, which only strengthens
the greedy bound.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..hardware.raa import RAAArchitecture


def gate_frequency_matrix(
    circuit: QuantumCircuit, gamma: float = 0.95
) -> np.ndarray:
    """Adjacency matrix E with ``E[i][j] = sum gamma^layer`` over 2Q gates.

    *layer* is the gate's ASAP layer index in the circuit DAG, so early gates
    (whose placement we fully control) weigh the most.
    """
    n = circuit.num_qubits
    e = np.zeros((n, n))
    dag = DAGCircuit(circuit)
    layer_of = dag.gate_layer_index()
    for idx, g in enumerate(dag.gates):
        if g.is_two_qubit:
            i, j = g.qubits
            w = gamma ** layer_of[idx]
            e[i, j] += w
            e[j, i] += w
    return e


def max_k_cut_assignment(
    weights: np.ndarray,
    capacities: list[int],
) -> list[int]:
    """Greedy MAX k-cut with per-partition capacities.

    Returns ``assignment[i] = partition`` minimizing intra-partition weight
    vertex-by-vertex (descending total incident weight), respecting
    ``capacities``.  Ties break toward the least-loaded partition so the
    result stays balanced even on unweighted inputs.
    """
    n = weights.shape[0]
    k = len(capacities)
    if sum(capacities) < n:
        raise ValueError(
            f"total capacity {sum(capacities)} < {n} qubits"
        )
    assignment = [-1] * n
    loads = [0] * k
    # intra[i][p] = weight from vertex i into partition p so far.
    intra = np.zeros((n, k))
    # attachment[i] = total weight from i to already-assigned vertices; we
    # always place the most-attached unassigned vertex next (Prim-style),
    # seeding with the highest-total-weight vertex.  This keeps the 1-1/k
    # greedy guarantee while making early decisions on the edges that
    # matter.
    attachment = np.zeros(n)
    totals = weights.sum(axis=1)
    unassigned = set(range(n))
    for _ in range(n):
        i = max(unassigned, key=lambda v: (attachment[v], totals[v], -v))
        unassigned.discard(i)
        best_p = -1
        best_key: tuple[float, int] | None = None
        for p in range(k):
            if loads[p] >= capacities[p]:
                continue
            key = (float(intra[i, p]), loads[p])
            if best_key is None or key < best_key:
                best_key = key
                best_p = p
        assignment[i] = best_p
        loads[best_p] += 1
        nz = np.nonzero(weights[i])[0]
        for j in nz:
            intra[j, best_p] += weights[i, j]
            attachment[j] += weights[i, j]
    return assignment


def cut_fraction(weights: np.ndarray, assignment: list[int]) -> float:
    """Fraction of total edge weight crossing partitions (quality metric)."""
    total = 0.0
    cut = 0.0
    n = weights.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            w = float(weights[i, j])
            if w == 0.0:
                continue
            total += w
            if assignment[i] != assignment[j]:
                cut += w
    return cut / total if total > 0 else 1.0


def dense_assignment(num_qubits: int, capacities: list[int]) -> list[int]:
    """Fig. 21 ablation baseline: Qiskit-dense mapping, frequency-blind.

    DenseLayout picks the region with the most internal edges; on a complete
    multipartite coupling graph that region is *balanced* across the parts
    (a vertex's degree is ``n - |own part|``), so the baseline assigns
    qubits round-robin by index, ignoring the gate-frequency graph entirely.
    """
    k = len(capacities)
    if sum(capacities) < num_qubits:
        raise ValueError(f"total capacity {sum(capacities)} < {num_qubits}")
    assignment: list[int] = []
    loads = [0] * k
    p = 0
    for _ in range(num_qubits):
        for _ in range(k):
            if loads[p] < capacities[p]:
                break
            p = (p + 1) % k
        assignment.append(p)
        loads[p] += 1
        p = (p + 1) % k
    return assignment


def map_qubits_to_arrays(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture,
    gamma: float = 0.95,
    strategy: str = "maxkcut",
) -> list[int]:
    """Array index (0 = SLM, 1.. = AODs) for every logical qubit.

    ``strategy="dense"`` selects the ablation baseline of Fig. 21.
    """
    caps = architecture.array_capacities()
    if strategy == "dense":
        assignment = dense_assignment(circuit.num_qubits, caps)
    elif strategy == "maxkcut":
        weights = gate_frequency_matrix(circuit, gamma=gamma)
        assignment = max_k_cut_assignment(weights, caps)
    else:
        raise ValueError(f"unknown array-mapper strategy {strategy!r}")
    architecture.validate_assignment(assignment)
    return assignment
