"""The Atomique compiler: array mapper, atom mapper, router, instructions."""

from .array_mapper import (
    cut_fraction,
    gate_frequency_matrix,
    map_qubits_to_arrays,
    max_k_cut_assignment,
)
from .atom_mapper import diagonal_stripe_order, map_qubits_to_atoms
from .compiler import AtomiqueCompiler, AtomiqueConfig, CompileResult
from .constraints import ConstraintToggles, StagePlan, parking_offset
from .kinematics import ConstantJerkProfile, hop_profile
from .instructions import (
    CoolingEvent,
    Move,
    RAAProgram,
    RamanPulse,
    RydbergGate,
    Stage,
)
from .movement import MovementTracker
from .program import Program, ProgramStore, StageList, StageView
from .pipeline import (
    PIPELINE_CACHE_VERSION,
    ArrayMapperPass,
    AtomMapperPass,
    CachedPass,
    CompilationContext,
    DiskPipelineCache,
    LowerToNativePass,
    Pass,
    PassPipeline,
    PipelineCache,
    PipelineError,
    SabreSwapPass,
    StageRouterPass,
    cache_clear,
    cache_stats,
    default_passes,
    evict_lru,
)
from .router import HighParallelismRouter, RouterConfig, RoutingError

__all__ = [
    "PIPELINE_CACHE_VERSION",
    "ArrayMapperPass",
    "AtomMapperPass",
    "AtomiqueCompiler",
    "AtomiqueConfig",
    "CachedPass",
    "CompilationContext",
    "CompileResult",
    "DiskPipelineCache",
    "ConstantJerkProfile",
    "ConstraintToggles",
    "CoolingEvent",
    "HighParallelismRouter",
    "LowerToNativePass",
    "Move",
    "MovementTracker",
    "Pass",
    "PassPipeline",
    "PipelineCache",
    "PipelineError",
    "Program",
    "ProgramStore",
    "RAAProgram",
    "RamanPulse",
    "RouterConfig",
    "RoutingError",
    "RydbergGate",
    "SabreSwapPass",
    "Stage",
    "StageList",
    "StagePlan",
    "StageRouterPass",
    "StageView",
    "cache_clear",
    "cache_stats",
    "cut_fraction",
    "default_passes",
    "evict_lru",
    "diagonal_stripe_order",
    "gate_frequency_matrix",
    "hop_profile",
    "map_qubits_to_arrays",
    "map_qubits_to_atoms",
    "max_k_cut_assignment",
    "parking_offset",
]
