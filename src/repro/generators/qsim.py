"""Quantum-simulation (Trotterized Hamiltonian) benchmark circuits.

The paper's QSim circuits are "randomly generated with a probability of 0.5
for a qubit to exhibit a non-I Pauli operator, and each circuit comprises ten
Pauli strings."  Each Pauli string ``P = P_1 ... P_n`` is exponentiated with
the standard CNOT-ladder construction: basis changes into Z, a CX chain onto
the last active qubit, an ``rz(2 theta)``, and the mirror image back.

Molecular Hamiltonians: H2 (4 qubits, Jordan-Wigner, 15 Pauli terms) and LiH
(6/8-qubit reduced active space) use fixed literature coefficient tables so
the circuits are deterministic and structurally comparable to Table II.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import QuantumCircuit

_PAULIS = ("I", "X", "Y", "Z")


def pauli_string_circuit(
    circuit: QuantumCircuit, pauli: str, theta: float
) -> QuantumCircuit:
    """Append ``exp(-i theta/2 * P)`` for Pauli string *pauli* to *circuit*.

    Uses the CX-ladder construction; strings of all-identity are skipped.
    """
    active = [(q, p) for q, p in enumerate(pauli) if p != "I"]
    if not active:
        return circuit
    # Basis change into Z.
    for q, p in active:
        if p == "X":
            circuit.h(q)
        elif p == "Y":
            circuit.sdg(q)
            circuit.h(q)
    chain = [q for q, _ in active]
    for a, b in zip(chain, chain[1:]):
        circuit.cx(a, b)
    circuit.rz(theta, chain[-1])
    for a, b in reversed(list(zip(chain, chain[1:]))):
        circuit.cx(a, b)
    for q, p in active:
        if p == "X":
            circuit.h(q)
        elif p == "Y":
            circuit.h(q)
            circuit.s(q)
    return circuit


def random_pauli_strings(
    num_qubits: int,
    num_strings: int,
    non_identity_prob: float,
    rng: np.random.Generator,
) -> list[str]:
    """Random Pauli strings; each qubit is non-I with *non_identity_prob*."""
    strings: list[str] = []
    while len(strings) < num_strings:
        chars = []
        for _ in range(num_qubits):
            if rng.random() < non_identity_prob:
                chars.append(_PAULIS[1 + int(rng.integers(0, 3))])
            else:
                chars.append("I")
        s = "".join(chars)
        if s.count("I") == num_qubits:
            continue  # all-identity contributes only a phase
        strings.append(s)
    return strings


def qsim_random(
    num_qubits: int,
    num_strings: int = 10,
    non_identity_prob: float = 0.5,
    seed: int | None = 0,
) -> QuantumCircuit:
    """Paper's ``QSim-rand-n`` (optionally ``-p{prob}``) Trotter circuit."""
    rng = np.random.default_rng(seed)
    suffix = "" if abs(non_identity_prob - 0.5) < 1e-12 else f"-p{non_identity_prob:g}"
    circ = QuantumCircuit(num_qubits, f"qsim-rand-{num_qubits}{suffix}")
    for pauli in random_pauli_strings(num_qubits, num_strings, non_identity_prob, rng):
        theta = float(rng.uniform(0, 2 * np.pi))
        pauli_string_circuit(circ, pauli, theta)
    return circ


#: Jordan-Wigner H2 Hamiltonian at bond length 0.735 A (O'Malley et al. 2016),
#: identity term dropped.  (coefficient, pauli string) pairs.
H2_TERMS: list[tuple[float, str]] = [
    (0.17141283, "ZIII"),
    (0.17141283, "IZII"),
    (-0.22343154, "IIZI"),
    (-0.22343154, "IIIZ"),
    (0.16868898, "ZZII"),
    (0.12062523, "ZIZI"),
    (0.16592785, "ZIIZ"),
    (0.16592785, "IZZI"),
    (0.12062523, "IZIZ"),
    (0.17441287, "IIZZ"),
    (-0.04530262, "XXYY"),
    (0.04530262, "XYYX"),
    (0.04530262, "YXXY"),
    (-0.04530262, "YYXX"),
]

#: Reduced 6-qubit LiH active-space Hamiltonian sample (parity-mapped,
#: truncated to the dominant 60 terms).  Structural stand-in generated to
#: match Table II's LiH-8 gate-count scale when Trotterized repeatedly.
_LIH_SEED = 20240614


def _lih_terms(num_qubits: int = 6, num_terms: int = 62) -> list[tuple[float, str]]:
    """Deterministic LiH-like term list (fixed seed, heavy-tailed weights)."""
    rng = np.random.default_rng(_LIH_SEED)
    terms: list[tuple[float, str]] = []
    seen: set[str] = set()
    # Single- and double-Z terms first (diagonal part of molecular H).
    for q in range(num_qubits):
        s = "".join("Z" if i == q else "I" for i in range(num_qubits))
        terms.append((float(rng.normal(0.1, 0.05)), s))
        seen.add(s)
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            s = "".join("Z" if i in (a, b) else "I" for i in range(num_qubits))
            terms.append((float(rng.normal(0.05, 0.02)), s))
            seen.add(s)
    while len(terms) < num_terms:
        strs = random_pauli_strings(num_qubits, 1, 0.6, rng)
        s = strs[0]
        if s in seen:
            continue
        seen.add(s)
        terms.append((float(rng.normal(0.0, 0.02)), s))
    return terms


def h2_circuit(trotter_steps: int = 1, dt: float = 0.5) -> QuantumCircuit:
    """Trotterized H2 molecular simulation (paper's ``H2-4``)."""
    circ = QuantumCircuit(4, "h2-4")
    for _ in range(trotter_steps):
        for coeff, pauli in H2_TERMS:
            pauli_string_circuit(circ, pauli, 2.0 * coeff * dt)
    return circ


def lih_circuit(
    num_qubits: int = 6, trotter_steps: int = 4, dt: float = 0.5
) -> QuantumCircuit:
    """Trotterized LiH-like molecular simulation (paper's ``LiH-8`` scale).

    Table II lists LiH with 6 qubits and 1134 2Q gates; four Trotter steps of
    the 62-term Hamiltonian land in the same regime.
    """
    circ = QuantumCircuit(num_qubits, f"lih-{num_qubits}")
    for _ in range(trotter_steps):
        for coeff, pauli in _lih_terms(num_qubits):
            pauli_string_circuit(circ, pauli, 2.0 * coeff * dt)
    return circ


def qsim_random_strings(
    num_qubits: int,
    num_strings: int = 10,
    non_identity_prob: float = 0.5,
    seed: int | None = 0,
) -> list[str]:
    """The Pauli strings :func:`qsim_random` would draw with the same seed.

    Used by baselines (Q-Pilot) that consume the workload structurally
    rather than as a circuit.
    """
    rng = np.random.default_rng(seed)
    return random_pauli_strings(num_qubits, num_strings, non_identity_prob, rng)
