"""The paper's benchmark suites (Table II) as ready-made circuit factories.

``main_suite()`` is the 17-circuit set of Fig. 13/25; ``small_suite()`` is
the 11-circuit solver-comparison set of Fig. 14.  Every entry records the
type/category so harnesses can group results like the paper does.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit
from . import algorithms, qaoa, qsim


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark row: a display name, its category, and a factory."""

    name: str
    category: str  # "Generic" | "QSim" | "QAOA"
    factory: Callable[[], QuantumCircuit]

    def build(self) -> QuantumCircuit:
        circ = self.factory()
        circ.name = self.name
        return circ


def main_suite() -> list[BenchmarkSpec]:
    """Fig. 13 / Fig. 25 benchmark set (large circuits, 4-100 qubits)."""
    return [
        BenchmarkSpec("HHL-7", "Generic", lambda: algorithms.hhl_like(7)),
        BenchmarkSpec(
            "Mermin-Bell-10", "Generic", lambda: algorithms.mermin_bell(10)
        ),
        BenchmarkSpec("QV-32", "Generic", lambda: algorithms.quantum_volume(32)),
        BenchmarkSpec("BV-50", "Generic", lambda: algorithms.bernstein_vazirani(50)),
        BenchmarkSpec("BV-70", "Generic", lambda: algorithms.bernstein_vazirani(70)),
        BenchmarkSpec("QSim-rand-20", "QSim", lambda: qsim.qsim_random(20, seed=20)),
        BenchmarkSpec("QSim-rand-40", "QSim", lambda: qsim.qsim_random(40, seed=40)),
        BenchmarkSpec(
            "QSim-rand-20-p0.3",
            "QSim",
            lambda: qsim.qsim_random(20, non_identity_prob=0.3, seed=203),
        ),
        BenchmarkSpec(
            "QSim-rand-40-p0.3",
            "QSim",
            lambda: qsim.qsim_random(40, non_identity_prob=0.3, seed=403),
        ),
        BenchmarkSpec("H2-4", "QSim", lambda: qsim.h2_circuit()),
        BenchmarkSpec("LiH-8", "QSim", lambda: qsim.lih_circuit()),
        BenchmarkSpec("QAOA-rand-10", "QAOA", lambda: qaoa.qaoa_random(10, seed=10)),
        BenchmarkSpec("QAOA-rand-20", "QAOA", lambda: qaoa.qaoa_random(20, seed=20)),
        BenchmarkSpec("QAOA-rand-30", "QAOA", lambda: qaoa.qaoa_random(30, seed=30)),
        BenchmarkSpec("QAOA-rand-50", "QAOA", lambda: qaoa.qaoa_random(50, seed=50)),
        BenchmarkSpec(
            "QAOA-regu5-40", "QAOA", lambda: qaoa.qaoa_regular(40, 5, seed=40)
        ),
        BenchmarkSpec(
            "QAOA-regu6-100", "QAOA", lambda: qaoa.qaoa_regular(100, 6, seed=100)
        ),
    ]


def small_suite() -> list[BenchmarkSpec]:
    """Fig. 14 solver-comparison set (<= 20 qubits, all Tan-Solver-feasible)."""
    return [
        BenchmarkSpec("Mermin-Bell-5", "Generic", lambda: algorithms.mermin_bell(5)),
        BenchmarkSpec("VQE-10", "Generic", lambda: algorithms.vqe_ansatz(10)),
        BenchmarkSpec("VQE-20", "Generic", lambda: algorithms.vqe_ansatz(20)),
        BenchmarkSpec(
            "Adder-10", "Generic", lambda: algorithms.ripple_carry_adder(10)
        ),
        BenchmarkSpec("BV-14", "Generic", lambda: algorithms.bernstein_vazirani(14)),
        BenchmarkSpec("QSim-rand-5", "QSim", lambda: qsim.qsim_random(5, seed=5)),
        BenchmarkSpec("QSim-rand-10", "QSim", lambda: qsim.qsim_random(10, seed=10)),
        BenchmarkSpec("H2-4", "QSim", lambda: qsim.h2_circuit()),
        BenchmarkSpec("QAOA-rand-5", "QAOA", lambda: qaoa.qaoa_random(5, seed=5)),
        BenchmarkSpec(
            "QAOA-regu3-20", "QAOA", lambda: qaoa.qaoa_regular(20, 3, seed=20)
        ),
        BenchmarkSpec(
            "QAOA-regu4-10", "QAOA", lambda: qaoa.qaoa_regular(10, 4, seed=10)
        ),
    ]


def find(name: str) -> BenchmarkSpec:
    """Look up a benchmark by display name in either suite."""
    for spec in main_suite() + small_suite():
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"no benchmark named {name!r}")
