"""QAOA benchmark circuits (Sec. V-A).

Two families, exactly as the paper constructs them:

* ``qaoa_random`` — "randomly placing ZZ gates between all pairs of qubits
  with a probability of 0.5" (probability configurable);
* ``qaoa_regular`` — "ZZ interactions are placed to qubit pairs with an edge
  in the regular graph" for a random d-regular graph.

Each ZZ interaction is an ``rzz(gamma)`` gate; a mixer layer of ``rx(beta)``
follows each cost layer, and an initial Hadamard layer prepares ``|+>^n``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..circuits.circuit import QuantumCircuit


def _qaoa_from_edges(
    num_qubits: int,
    edges: list[tuple[int, int]],
    p_layers: int,
    seed: int,
    name: str,
) -> QuantumCircuit:
    """Assemble a p-layer QAOA circuit over *edges*."""
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, name)
    for q in range(num_qubits):
        circ.h(q)
    for _ in range(p_layers):
        gamma = float(rng.uniform(0, np.pi))
        beta = float(rng.uniform(0, np.pi))
        for a, b in edges:
            circ.rzz(2.0 * gamma, a, b)
        for q in range(num_qubits):
            circ.rx(2.0 * beta, q)
    return circ


def qaoa_random(
    num_qubits: int,
    edge_prob: float = 0.5,
    p_layers: int = 1,
    seed: int | None = 0,
) -> QuantumCircuit:
    """QAOA on an Erdos-Renyi graph (paper's ``QAOA-rand-n``)."""
    rng = np.random.default_rng(seed)
    edges = [
        (i, j)
        for i in range(num_qubits)
        for j in range(i + 1, num_qubits)
        if rng.random() < edge_prob
    ]
    if not edges:
        edges = [(0, 1)]
    return _qaoa_from_edges(
        num_qubits, edges, p_layers, seed or 0, f"qaoa-rand-{num_qubits}"
    )


def qaoa_regular(
    num_qubits: int,
    degree: int,
    p_layers: int = 1,
    seed: int | None = 0,
) -> QuantumCircuit:
    """QAOA on a random d-regular graph (paper's ``QAOA-regu{d}-n``)."""
    if num_qubits * degree % 2 != 0:
        raise ValueError(
            f"no {degree}-regular graph on {num_qubits} qubits (odd product)"
        )
    if degree >= num_qubits:
        raise ValueError("degree must be < num_qubits")
    graph = nx.random_regular_graph(degree, num_qubits, seed=seed)
    edges = [(min(a, b), max(a, b)) for a, b in graph.edges()]
    return _qaoa_from_edges(
        num_qubits,
        sorted(edges),
        p_layers,
        seed or 0,
        f"qaoa-regu{degree}-{num_qubits}",
    )


def qaoa_interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Recover the ZZ interaction graph from a QAOA circuit (for analysis)."""
    g = nx.Graph()
    g.add_nodes_from(range(circuit.num_qubits))
    for gate in circuit.gates:
        if gate.name == "rzz":
            g.add_edge(*gate.qubits)
    return g
