"""Algorithmic (generic) benchmark circuits.

Synthesized equivalents of the QASMBench/SupermarQ circuits in Table II:
Bernstein-Vazirani, quantum volume, ripple-carry adder, Mermin-Bell, VQE
ansatz, an HHL-like structured circuit, GHZ, QFT, and the repetition
phase-code syndrome circuit used in Figs. 22-24.  Each generator matches the
structural statistics of the paper's version (qubit count, 2Q-gate scale,
degree) — the metric that drives every experiment.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import quantum_volume_circuit


def bernstein_vazirani(num_qubits: int, secret: int | None = None) -> QuantumCircuit:
    """BV with *num_qubits* total (last qubit is the oracle ancilla).

    Table II's BV-50 has 50 qubits and 22 two-qubit gates, i.e. a secret with
    ~22 set bits.  With ``secret=None`` a dense-ish default alternating
    pattern matching the paper's counts is used: every other bit set.
    """
    if num_qubits < 2:
        raise ValueError("BV needs >= 2 qubits")
    data = num_qubits - 1
    if secret is None:
        secret = sum(1 << i for i in range(0, data, 2))
    circ = QuantumCircuit(num_qubits, f"bv-{num_qubits}")
    anc = num_qubits - 1
    for q in range(data):
        circ.h(q)
    circ.x(anc)
    circ.h(anc)
    for q in range(data):
        if (secret >> q) & 1:
            circ.cx(q, anc)
    for q in range(data):
        circ.h(q)
    circ.h(anc)
    return circ


def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation ladder."""
    circ = QuantumCircuit(num_qubits, f"ghz-{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def qft(num_qubits: int, with_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform with controlled-phase ladder."""
    circ = QuantumCircuit(num_qubits, f"qft-{num_qubits}")
    for i in range(num_qubits):
        circ.h(i)
        for j in range(i + 1, num_qubits):
            circ.cp(math.pi / (2 ** (j - i)), j, i)
    if with_swaps:
        for i in range(num_qubits // 2):
            circ.swap(i, num_qubits - 1 - i)
    return circ


def ripple_carry_adder(num_qubits: int = 10) -> QuantumCircuit:
    """Cuccaro-style ripple-carry adder (paper's ``Adder-10``).

    Adds two ``(n-2)/2``-bit registers using MAJ/UMA blocks; *num_qubits*
    must be even and >= 4 (two registers + carry-in + carry-out).
    """
    if num_qubits < 4 or num_qubits % 2 != 0:
        raise ValueError("adder needs an even qubit count >= 4")
    n = (num_qubits - 2) // 2
    circ = QuantumCircuit(num_qubits, f"adder-{num_qubits}")
    cin = 0
    a = list(range(1, 1 + n))
    b = list(range(1 + n, 1 + 2 * n))
    cout = num_qubits - 1

    def maj(x: int, y: int, z: int) -> None:
        circ.cx(z, y)
        circ.cx(z, x)
        circ.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circ.ccx(x, y, z)
        circ.cx(z, x)
        circ.cx(x, y)

    # Seed some input state so the circuit is non-trivial.
    for q in a[::2]:
        circ.x(q)
    maj(cin, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    circ.cx(a[n - 1], cout)
    for i in reversed(range(1, n)):
        uma(a[i - 1], b[i], a[i])
    uma(cin, b[0], a[0])
    return circ


def mermin_bell(num_qubits: int) -> QuantumCircuit:
    """Mermin-Bell inequality test circuit (SupermarQ).

    GHZ preparation, a dense layer of pairwise ZZ-parity entanglers
    (giving the high degree-per-qubit in Table II: 7.6 for n=10), then the
    Mermin-operator basis rotations.
    """
    circ = QuantumCircuit(num_qubits, f"mermin-bell-{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    # All-to-all parity entanglers plus a next-nearest layer, reproducing
    # SupermarQ's dense Mermin-operator construction (67 2Q gates at n=10).
    for i in range(num_qubits):
        for j in range(i + 1, num_qubits):
            circ.cz(i, j)
    for i in range(num_qubits - 2):
        circ.cz(i, i + 2)
    for q in range(num_qubits):
        circ.rz(math.pi / (q + 2), q)
        circ.h(q)
    return circ


def vqe_ansatz(num_qubits: int, layers: int = 1, seed: int = 0) -> QuantumCircuit:
    """Hardware-efficient VQE ansatz (SupermarQ VQE proxy).

    RY rotation layer + linear CX entangler chain per layer; Table II's
    VQE-10 has 9 two-qubit gates (= one chain over 10 qubits).
    """
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, f"vqe-{num_qubits}")
    for _ in range(layers):
        for q in range(num_qubits):
            circ.ry(float(rng.uniform(0, 2 * math.pi)), q)
        for q in range(num_qubits - 1):
            circ.cx(q, q + 1)
    for q in range(num_qubits):
        circ.ry(float(rng.uniform(0, 2 * math.pi)), q)
    return circ


def hhl_like(num_qubits: int = 7, seed: int = 1) -> QuantumCircuit:
    """HHL-structured circuit (QASMBench ``hhl_n7`` proxy).

    Phase-estimation block (H layer + controlled-phase ladder), controlled
    rotations onto the ancilla, inverse QPE.  Sized so the 7-qubit instance
    lands near Table II's 196 two-qubit gates.
    """
    if num_qubits < 4:
        raise ValueError("hhl_like needs >= 4 qubits")
    rng = np.random.default_rng(seed)
    clock = list(range((num_qubits - 2)))
    system = num_qubits - 2
    anc = num_qubits - 1
    circ = QuantumCircuit(num_qubits, f"hhl-{num_qubits}")

    def qpe(inverse: bool) -> None:
        qubits = clock if not inverse else list(reversed(clock))
        for c in qubits:
            circ.h(c)
            # Controlled Hamiltonian-evolution proxy: CP ladder + CX pair.
            reps = 2 ** min(c, 3)
            for _ in range(reps):
                circ.cp(float(rng.uniform(0, math.pi)), c, system)
                circ.cx(c, system)
                circ.rz(float(rng.uniform(0, math.pi)), system)
                circ.cx(c, system)

    qpe(inverse=False)
    # Controlled ancilla rotations from every clock qubit.
    for c in clock:
        circ.cx(c, anc)
        circ.ry(float(rng.uniform(0, math.pi / 2)), anc)
        circ.cx(c, anc)
    qpe(inverse=True)
    return circ


def phase_code(num_qubits: int, rounds: int = 1) -> QuantumCircuit:
    """Repetition phase-flip code syndrome extraction (``Phase-Code-n``).

    Alternating data/ancilla qubits; each round measures the XX stabilizer
    of neighbouring data qubits onto the ancilla between them.  Used by
    Figs. 22-24 at n = 100 and 200.
    """
    if num_qubits < 3:
        raise ValueError("phase code needs >= 3 qubits")
    circ = QuantumCircuit(num_qubits, f"phase-code-{num_qubits}")
    data = list(range(0, num_qubits, 2))
    ancilla = list(range(1, num_qubits, 2))
    for d in data:
        circ.h(d)
    for _ in range(rounds):
        for a in ancilla:
            circ.h(a)
        for a in ancilla:
            circ.cx(a, a - 1)
            if a + 1 < num_qubits:
                circ.cx(a, a + 1)
        for a in ancilla:
            circ.h(a)
    return circ


def quantum_volume(num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """Quantum-volume circuit (depth = width), re-exported for Table II."""
    return quantum_volume_circuit(num_qubits, depth=num_qubits, seed=seed)
