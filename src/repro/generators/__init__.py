"""Benchmark circuit generators: QAOA, QSim, algorithmic circuits, suites."""

from .algorithms import (
    bernstein_vazirani,
    ghz,
    hhl_like,
    mermin_bell,
    phase_code,
    qft,
    quantum_volume,
    ripple_carry_adder,
    vqe_ansatz,
)
from .qaoa import qaoa_interaction_graph, qaoa_random, qaoa_regular
from .qsim import h2_circuit, lih_circuit, pauli_string_circuit, qsim_random, qsim_random_strings
from .suite import BenchmarkSpec, find, main_suite, small_suite

__all__ = [
    "BenchmarkSpec",
    "bernstein_vazirani",
    "find",
    "ghz",
    "h2_circuit",
    "hhl_like",
    "lih_circuit",
    "main_suite",
    "mermin_bell",
    "pauli_string_circuit",
    "phase_code",
    "qaoa_interaction_graph",
    "qaoa_random",
    "qaoa_regular",
    "qft",
    "qsim_random",
    "qsim_random_strings",
    "quantum_volume",
    "ripple_carry_adder",
    "small_suite",
    "vqe_ansatz",
]
