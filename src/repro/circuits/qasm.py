"""OpenQASM 2.0 subset parser and emitter.

Supports the subset needed for benchmark interchange: a single quantum
register, the standard-library gates in :mod:`repro.circuits.gates`,
``measure``, ``barrier``, and arithmetic parameter expressions built from
numbers, ``pi``, ``+ - * /``, parentheses and unary minus.

Custom ``gate`` definitions, ``if`` statements and ``opaque`` declarations are
not supported (none of the paper's benchmarks require them after
transpilation).
"""

from __future__ import annotations

import math
import re

from .circuit import QuantumCircuit
from .gates import BARRIER, GATE_NUM_PARAMS, MEASURE, Gate


class QASMError(ValueError):
    """Raised on malformed QASM input."""


_TOKEN_RE = re.compile(
    r"\s*(?:(\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)|(pi)|([+\-*/()]))"
)


def _eval_expr(text: str) -> float:
    """Evaluate a QASM parameter expression safely (no ``eval``)."""
    tokens: list[str] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise QASMError(f"bad expression: {text!r} at {pos}")
        tokens.append(m.group(0).strip())
        pos = m.end()

    # Recursive-descent: expr := term (('+'|'-') term)*
    #                    term := factor (('*'|'/') factor)*
    #                    factor := ['-'] (number | pi | '(' expr ')')
    idx = 0

    def peek() -> str | None:
        return tokens[idx] if idx < len(tokens) else None

    def take() -> str:
        nonlocal idx
        tok = tokens[idx]
        idx += 1
        return tok

    def factor() -> float:
        tok = peek()
        if tok is None:
            raise QASMError(f"unexpected end of expression: {text!r}")
        if tok == "-":
            take()
            return -factor()
        if tok == "+":
            take()
            return factor()
        if tok == "(":
            take()
            val = expr()
            if peek() != ")":
                raise QASMError(f"missing ')' in {text!r}")
            take()
            return val
        if tok == "pi":
            take()
            return math.pi
        take()
        try:
            return float(tok)
        except ValueError as exc:
            raise QASMError(f"bad number {tok!r} in {text!r}") from exc

    def term() -> float:
        val = factor()
        while peek() in ("*", "/"):
            op = take()
            rhs = factor()
            val = val * rhs if op == "*" else val / rhs
        return val

    def expr() -> float:
        val = term()
        while peek() in ("+", "-"):
            op = take()
            rhs = term()
            val = val + rhs if op == "+" else val - rhs
        return val

    result = expr()
    if idx != len(tokens):
        raise QASMError(f"trailing tokens in expression {text!r}")
    return result


_STMT_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][\w]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]*)$"
)
_QARG_RE = re.compile(r"^(?P<reg>[a-zA-Z_][\w]*)\s*\[\s*(?P<idx>\d+)\s*\]$")


def parse_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 *text* into a :class:`QuantumCircuit`."""
    # Strip comments and normalize statements.
    text = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in text.split(";") if s.strip()]

    qreg_sizes: dict[str, int] = {}
    qreg_offsets: dict[str, int] = {}
    total_qubits = 0
    circuit: QuantumCircuit | None = None
    pending: list[Gate] = []

    def qubit_index(arg: str) -> int:
        m = _QARG_RE.match(arg.strip())
        if not m:
            raise QASMError(f"bad qubit argument {arg!r}")
        reg, idx = m.group("reg"), int(m.group("idx"))
        if reg not in qreg_sizes:
            raise QASMError(f"unknown register {reg!r}")
        if idx >= qreg_sizes[reg]:
            raise QASMError(f"index {idx} out of range for register {reg!r}")
        return qreg_offsets[reg] + idx

    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        if stmt.startswith("qreg"):
            m = re.match(r"qreg\s+([a-zA-Z_][\w]*)\s*\[\s*(\d+)\s*\]", stmt)
            if not m:
                raise QASMError(f"bad qreg statement {stmt!r}")
            reg, size = m.group(1), int(m.group(2))
            qreg_offsets[reg] = total_qubits
            qreg_sizes[reg] = size
            total_qubits += size
            continue
        if stmt.startswith("creg"):
            continue
        if circuit is None:
            if total_qubits == 0:
                raise QASMError("gate before any qreg declaration")
            circuit = QuantumCircuit(total_qubits, name)
            circuit.extend(pending)

        if stmt.startswith("measure"):
            m = re.match(r"measure\s+(.+?)\s*->\s*.+", stmt)
            if not m:
                raise QASMError(f"bad measure statement {stmt!r}")
            circuit.append(Gate(MEASURE, (qubit_index(m.group(1)),)))
            continue
        if stmt.startswith("barrier"):
            args = stmt[len("barrier"):].strip()
            qubits: list[int] = []
            if args:
                for a in args.split(","):
                    a = a.strip()
                    if "[" in a:
                        qubits.append(qubit_index(a))
                    else:
                        base = qreg_offsets[a]
                        qubits.extend(range(base, base + qreg_sizes[a]))
            circuit._gates.append(Gate(BARRIER, tuple(qubits) or tuple(range(total_qubits))))
            continue

        m = _STMT_RE.match(stmt)
        if not m:
            raise QASMError(f"unparseable statement {stmt!r}")
        gname = m.group("name").lower()
        params_text = m.group("params")
        args_text = m.group("args").strip()
        params = (
            tuple(_eval_expr(p) for p in params_text.split(",")) if params_text else ()
        )
        qubits = tuple(qubit_index(a) for a in args_text.split(",") if a.strip())
        if gname == "u":
            gname = "u3"
        expected = GATE_NUM_PARAMS.get(gname)
        if expected is not None and len(params) != expected:
            raise QASMError(
                f"gate {gname!r} expects {expected} params, got {len(params)}"
            )
        circuit.append(Gate(gname, qubits, params))

    if circuit is None:
        if total_qubits == 0:
            raise QASMError("no qreg declared")
        circuit = QuantumCircuit(total_qubits, name)
    return circuit


def _fmt_param(p: float) -> str:
    """Render a parameter, preferring exact multiples of pi."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if abs(p - num * math.pi / denom) < 1e-12:
                frac = f"pi/{denom}" if denom != 1 else "pi"
                if num == 1:
                    return frac
                if num == -1:
                    return f"-{frac}"
                return f"{num}*{frac}"
    if abs(p) < 1e-12:
        return "0"
    return repr(float(p))


def emit_qasm(circuit: QuantumCircuit) -> str:
    """Serialize *circuit* to OpenQASM 2.0."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    num_measured = sum(1 for g in circuit.gates if g.name == MEASURE)
    if num_measured:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for g in circuit.gates:
        if g.name == MEASURE:
            q = g.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        if g.name == BARRIER:
            args = ", ".join(f"q[{q}]" for q in g.qubits)
            lines.append(f"barrier {args};")
            continue
        name = "u" if g.name == "u3" else g.name
        params = f"({', '.join(_fmt_param(p) for p in g.params)})" if g.params else ""
        args = ", ".join(f"q[{q}]" for q in g.qubits)
        lines.append(f"{name}{params} {args};")
    return "\n".join(lines) + "\n"
