"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.gates.Gate` objects
over ``num_qubits`` wires, with a fluent builder API mirroring the common
Qiskit surface (``circ.h(0)``, ``circ.cx(0, 1)``, ...).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Iterator

from .gates import BARRIER, MEASURE, Gate, GateError


class CircuitError(ValueError):
    """Raised on invalid circuit operations."""


class QuantumCircuit:
    """An ordered gate list over a fixed number of qubits.

    Parameters
    ----------
    num_qubits:
        Number of wires. Gate qubit indices must be in ``[0, num_qubits)``.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx: int) -> Gate:
        return self._gates[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantumCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._gates)})"
        )

    @property
    def gates(self) -> list[Gate]:
        """The gate list (treat as read-only)."""
        return self._gates

    # -- mutation ------------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append *gate*, validating its qubit indices against the register."""
        if any(q >= self.num_qubits for q in gate.qubits):
            raise CircuitError(
                f"gate {gate} exceeds register of {self.num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append a gate by name."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate in *gates*."""
        for g in gates:
            self.append(g)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all gates of *other* (must fit this register)."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError("composed circuit has more qubits than target")
        return self.extend(other.gates)

    # -- builder API ---------------------------------------------------------

    def id(self, q: int) -> "QuantumCircuit":
        return self.add("id", [q])

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", [q])

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", [q])

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", [q])

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", [q], [theta])

    def p(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("p", [q], [theta])

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u3", [q], [theta, phi, lam])

    def cx(self, c: int, t: int) -> "QuantumCircuit":
        return self.add("cx", [c, t])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", [a, b])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", [a, b], [theta])

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rxx", [a, b], [theta])

    def ryy(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("ryy", [a, b], [theta])

    def cp(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("cp", [a, b], [theta])

    def ccx(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.add("ccx", [a, b, c])

    def ccz(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.add("ccz", [a, b, c])

    def measure(self, q: int) -> "QuantumCircuit":
        return self.add(MEASURE, [q])

    def measure_all(self) -> "QuantumCircuit":
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        self._gates.append(Gate(BARRIER, qs))
        return self

    # -- statistics ----------------------------------------------------------

    @property
    def unitary_gates(self) -> list[Gate]:
        """All gates excluding measure/barrier directives."""
        return [g for g in self._gates if not g.is_directive]

    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(g.name for g in self._gates)

    @property
    def num_1q_gates(self) -> int:
        """Number of single-qubit unitary gates."""
        return sum(1 for g in self._gates if g.is_one_qubit)

    @property
    def num_2q_gates(self) -> int:
        """Number of two-qubit unitary gates."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def two_qubit_gates(self) -> list[Gate]:
        """List of the two-qubit unitary gates, in order."""
        return [g for g in self._gates if g.is_two_qubit]

    def interaction_pairs(self) -> Counter:
        """Counter of unordered qubit pairs joined by a 2Q gate."""
        pairs: Counter = Counter()
        for g in self._gates:
            if g.is_two_qubit:
                pairs[g.key()] += 1
        return pairs

    def degree_per_qubit(self) -> float:
        """Average number of distinct partners per active qubit (Table II)."""
        partners: dict[int, set[int]] = {}
        for g in self._gates:
            if g.is_two_qubit:
                a, b = g.qubits
                partners.setdefault(a, set()).add(b)
                partners.setdefault(b, set()).add(a)
        if not partners:
            return 0.0
        return sum(len(v) for v in partners.values()) / len(partners)

    def two_qubit_gates_per_qubit(self) -> float:
        """Average number of 2Q gates touching each qubit (Table II)."""
        touch: Counter = Counter()
        for g in self._gates:
            if g.is_two_qubit:
                for q in g.qubits:
                    touch[q] += 1
        if not touch:
            return 0.0
        return sum(touch.values()) / len(touch)

    def depth(self, two_qubit_only: bool = False) -> int:
        """Circuit depth via greedy wire-front layering.

        With ``two_qubit_only`` the depth counts only layers containing at
        least one 2Q gate and ignores 1Q gates entirely — the paper's
        "number of parallel two-qubit layers" metric.
        """
        front = [0] * self.num_qubits
        for g in self._gates:
            if g.is_directive and g.name == BARRIER:
                level = max((front[q] for q in g.qubits), default=0)
                for q in g.qubits:
                    front[q] = level
                continue
            if two_qubit_only and not g.is_entangling:
                continue
            level = max(front[q] for q in g.qubits) + 1
            for q in g.qubits:
                front[q] = level
        return max(front, default=0)

    def active_qubits(self) -> set[int]:
        """Qubits touched by at least one gate."""
        out: set[int] = set()
        for g in self._gates:
            out.update(g.qubits)
        return out

    # -- transforms ----------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow copy (gates are immutable)."""
        c = QuantumCircuit(self.num_qubits, name or self.name)
        c._gates = list(self._gates)
        return c

    def remapped(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Relabel qubits according to *mapping*."""
        n = num_qubits if num_qubits is not None else self.num_qubits
        c = QuantumCircuit(n, self.name)
        for g in self._gates:
            c.append(g.remapped(mapping))
        return c

    def without_directives(self) -> "QuantumCircuit":
        """Copy with measure/barrier removed."""
        c = QuantumCircuit(self.num_qubits, self.name)
        c._gates = [g for g in self._gates if not g.is_directive]
        return c

    def reversed(self) -> "QuantumCircuit":
        """Copy with the gate order reversed (used by SABRE layout search)."""
        c = QuantumCircuit(self.num_qubits, self.name)
        c._gates = list(reversed([g for g in self._gates if not g.is_directive]))
        return c


def random_angle(rng) -> float:
    """Uniform angle in ``[0, 2*pi)`` from a ``numpy`` generator."""
    return float(rng.uniform(0.0, 2.0 * math.pi))
