"""Basis translation and peephole simplification.

The RAA native gate set is ``{CZ, U3}`` (Sec. II: Rydberg CZ + Raman 1Q).
FAA and superconducting backends use ``{CX, U3}``.  This module lowers every
supported gate to either basis and provides a 1Q-merge peephole that fuses
runs of adjacent single-qubit gates into one ``u3`` — the bulk of what
"Qiskit optimization level 3" contributes to the paper's gate counts.
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate, GateError, one_qubit_matrix


def u3_params_from_matrix(m: np.ndarray) -> tuple[float, float, float]:
    """Recover ``(theta, phi, lam)`` such that ``U3(theta,phi,lam) ~ m``.

    The result is exact up to global phase.
    """
    # Normalize global phase so that m[0,0] is real non-negative.
    a = abs(m[0, 0])
    theta = 2.0 * math.atan2(abs(m[1, 0]), a)
    if abs(m[1, 0]) < 1e-12 and a < 1e-12:  # pragma: no cover - degenerate
        return 0.0, 0.0, 0.0
    if a > 1e-12:
        phase = m[0, 0] / a
    else:
        phase = m[1, 0] / abs(m[1, 0])
    mn = m / phase
    if abs(mn[1, 0]) > 1e-12:
        phi = math.atan2(mn[1, 0].imag, mn[1, 0].real)
    else:
        phi = 0.0
    if abs(mn[0, 1]) > 1e-12:
        lam = math.atan2((-mn[0, 1]).imag, (-mn[0, 1]).real)
    else:
        lam = math.atan2(mn[1, 1].imag, mn[1, 1].real) - phi
    return theta, phi, lam


def merge_1q_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse maximal runs of adjacent 1Q gates on each wire into single ``u3``.

    Identity results (up to phase) are dropped entirely.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(q: int) -> None:
        m = pending.pop(q, None)
        if m is None:
            return
        theta, phi, lam = u3_params_from_matrix(m)
        if abs(theta) < 1e-10 and abs((phi + lam) % (2 * math.pi)) < 1e-10:
            return  # identity up to phase
        out.append(Gate("u3", (q,), (theta, phi, lam)))

    for g in circuit.gates:
        if g.is_one_qubit:
            q = g.qubits[0]
            m = one_qubit_matrix(g)
            pending[q] = m @ pending.get(q, np.eye(2, dtype=complex))
            continue
        for q in g.qubits:
            flush(q)
        out.append(g)
    for q in sorted(pending):
        flush(q)
    return out


def _lower_gate(g: Gate, basis_2q: str) -> list[Gate]:
    """Lower one gate to ``{basis_2q, u3-family}``; may recurse."""
    if g.is_one_qubit or g.is_directive:
        return [g]

    def h(q: int) -> Gate:
        return Gate("h", (q,))

    def rz(theta: float, q: int) -> Gate:
        return Gate("rz", (q,), (theta,))

    name = g.name
    if name == "cx":
        if basis_2q == "cx":
            return [g]
        c, t = g.qubits
        return [h(t), Gate("cz", (c, t)), h(t)]
    if name == "cz":
        if basis_2q == "cz":
            return [g]
        a, b = g.qubits
        return [h(b), Gate("cx", (a, b)), h(b)]
    if name == "swap":
        a, b = g.qubits
        inner = [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "iswap":
        a, b = g.qubits
        inner = [
            Gate("s", (a,)),
            Gate("s", (b,)),
            Gate("h", (a,)),
            Gate("cx", (a, b)),
            Gate("cx", (b, a)),
            Gate("h", (b,)),
        ]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "rzz":
        (theta,) = g.params
        a, b = g.qubits
        inner = [Gate("cx", (a, b)), rz(theta, b), Gate("cx", (a, b))]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "rxx":
        (theta,) = g.params
        a, b = g.qubits
        inner = (
            [h(a), h(b)]
            + _lower_gate(Gate("rzz", (a, b), (theta,)), basis_2q)
            + [h(a), h(b)]
        )
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "ryy":
        (theta,) = g.params
        a, b = g.qubits
        pre = [Gate("rx", (a,), (math.pi / 2,)), Gate("rx", (b,), (math.pi / 2,))]
        post = [Gate("rx", (a,), (-math.pi / 2,)), Gate("rx", (b,), (-math.pi / 2,))]
        inner = pre + _lower_gate(Gate("rzz", (a, b), (theta,)), basis_2q) + post
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "cp":
        (theta,) = g.params
        a, b = g.qubits
        inner = [
            rz(theta / 2, a),
            rz(theta / 2, b),
            Gate("cx", (a, b)),
            rz(-theta / 2, b),
            Gate("cx", (a, b)),
        ]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "crz":
        (theta,) = g.params
        a, b = g.qubits
        inner = [
            rz(theta / 2, b),
            Gate("cx", (a, b)),
            rz(-theta / 2, b),
            Gate("cx", (a, b)),
        ]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "ccz":
        a, b, c = g.qubits
        inner = [h(c), Gate("ccx", (a, b, c)), h(c)]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "ccx":
        a, b, c = g.qubits
        inner = [
            h(c),
            Gate("cx", (b, c)),
            Gate("tdg", (c,)),
            Gate("cx", (a, c)),
            Gate("t", (c,)),
            Gate("cx", (b, c)),
            Gate("tdg", (c,)),
            Gate("cx", (a, c)),
            Gate("t", (b,)),
            Gate("t", (c,)),
            Gate("cx", (a, b)),
            h(c),
            Gate("t", (a,)),
            Gate("tdg", (b,)),
            Gate("cx", (a, b)),
        ]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    if name == "cswap":
        a, b, c = g.qubits
        inner = [Gate("cx", (c, b)), Gate("ccx", (a, b, c)), Gate("cx", (c, b))]
        return [x for gg in inner for x in _lower_gate(gg, basis_2q)]
    raise GateError(f"cannot lower gate {name!r} to basis {basis_2q!r}")


def lower_to_basis(
    circuit: QuantumCircuit, basis_2q: str = "cz", merge_1q: bool = True
) -> QuantumCircuit:
    """Lower *circuit* to ``{basis_2q}`` + single-qubit gates.

    Parameters
    ----------
    basis_2q:
        ``"cz"`` for the RAA native set or ``"cx"`` for FAA/superconducting.
    merge_1q:
        Fuse adjacent 1Q gates into ``u3`` afterwards (default on, matching
        the paper's use of Qiskit optimization level 3).
    """
    if basis_2q not in ("cz", "cx"):
        raise GateError(f"unsupported 2Q basis {basis_2q!r}")
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for g in circuit.gates:
        out.extend(_lower_gate(g, basis_2q))
    if merge_1q:
        out = merge_1q_runs(out)
    return out


def lower_to_two_qubit(circuit: QuantumCircuit, merge_1q: bool = True) -> QuantumCircuit:
    """Decompose >=3-qubit gates but keep 1Q/2Q gates atomic.

    This matches the paper's gate accounting: a logical two-qubit gate
    (CX, CZ, RZZ, ...) counts as *one* compiled two-qubit gate and executes
    in one interaction stage; only multi-qubit gates and inserted SWAPs are
    expanded.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for g in circuit.gates:
        if g.num_qubits >= 3 and not g.is_directive:
            out.extend(x for x in _lower_gate(g, "cx"))
        else:
            out.append(g)
    if merge_1q:
        out = merge_1q_runs(out)
    return out


def decompose_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand every SWAP into 3 CX (the paper's 'SWAP ~ 3 CZs' accounting)."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for g in circuit.gates:
        if g.name == "swap":
            a, b = g.qubits
            out.append(Gate("cx", (a, b)))
            out.append(Gate("cx", (b, a)))
            out.append(Gate("cx", (a, b)))
        else:
            out.append(g)
    return out


def cancel_adjacent_2q_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove immediately-adjacent identical self-inverse 2Q gates (CX/CZ/SWAP).

    Adjacency is on the DAG: both wires of the second gate must come straight
    from the first gate with nothing in between.
    """
    out: list[Gate] = []
    last_on_wire: dict[int, int] = {}
    for g in circuit.gates:
        if (
            g.name in ("cx", "cz", "swap")
            and all(q in last_on_wire for q in g.qubits)
            and len({last_on_wire[q] for q in g.qubits}) == 1
        ):
            prev_idx = last_on_wire[g.qubits[0]]
            prev = out[prev_idx]
            if prev is not None and prev.name == g.name and set(prev.qubits) == set(g.qubits):
                directed_ok = g.name != "cx" or prev.qubits == g.qubits
                if directed_ok:
                    out[prev_idx] = None  # type: ignore[call-overload]
                    for q in g.qubits:
                        del last_on_wire[q]
                    continue
        idx = len(out)
        out.append(g)
        for q in g.qubits:
            last_on_wire[q] = idx
    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    result.extend(g for g in out if g is not None)
    return result
