"""Dependency DAG over a circuit's gates.

The router and SABRE both consume circuits through this view: the *front
layer* is the set of gates with no unexecuted predecessor, exactly as defined
in the paper (Sec. III-C) and in Li et al.'s SABRE.

The DAG is the standard wire-dependency DAG: gate ``g2`` depends on ``g1``
when they share a qubit and ``g1`` precedes ``g2`` in program order (with the
transitive closure implied by intermediate gates on the shared wire).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from collections.abc import Iterable

from .circuit import QuantumCircuit
from .gates import Gate


class DAGCircuit:
    """Wire-dependency DAG with an executable-front-layer API.

    Nodes are integer gate indices into ``self.gates``.  Construction is
    O(gates x arity); each "execute" is O(out-degree).
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.num_qubits = circuit.num_qubits
        self.gates: list[Gate] = [g for g in circuit.gates if not g.is_directive]
        n = len(self.gates)
        #: per-gate arity flags, precomputed so schedulers skip the property
        self.two_qubit: list[bool] = [g.is_two_qubit for g in self.gates]
        self.one_qubit: list[bool] = [g.is_one_qubit for g in self.gates]
        self.successors: list[list[int]] = [[] for _ in range(n)]
        self.predecessor_count: list[int] = [0] * n
        last_on_wire: dict[int, int] = {}
        for i, g in enumerate(self.gates):
            for q in g.qubits:
                prev = last_on_wire.get(q)
                if prev is not None:
                    self.successors[prev].append(i)
                    self.predecessor_count[i] += 1
                last_on_wire[q] = i
        self._remaining_preds = list(self.predecessor_count)
        self._front: set[int] = {i for i in range(n) if self._remaining_preds[i] == 0}
        #: the same indices kept sorted, so front iteration needs no re-sort
        self._front_sorted: list[int] = sorted(self._front)
        self._executed: list[bool] = [False] * n
        self._num_executed = 0

    # -- front layer ----------------------------------------------------------

    @property
    def front_layer(self) -> set[int]:
        """Indices of gates whose predecessors have all executed."""
        return self._front

    def front_indices(self) -> list[int]:
        """Current front layer as a sorted list (a copy, safe to execute over)."""
        return list(self._front_sorted)

    def front_gates(self) -> list[tuple[int, Gate]]:
        """``(index, gate)`` pairs of the current front layer, sorted by index."""
        gates = self.gates
        return [(i, gates[i]) for i in self._front_sorted]

    def execute(self, index: int) -> list[int]:
        """Mark gate *index* executed; return indices newly added to the front."""
        if index not in self._front:
            raise ValueError(f"gate {index} is not in the front layer")
        self._front.discard(index)
        del self._front_sorted[bisect_left(self._front_sorted, index)]
        self._executed[index] = True
        self._num_executed += 1
        newly: list[int] = []
        for succ in self.successors[index]:
            self._remaining_preds[succ] -= 1
            if self._remaining_preds[succ] == 0:
                self._front.add(succ)
                insort(self._front_sorted, succ)
                newly.append(succ)
        return newly

    def execute_many(self, indices: Iterable[int]) -> list[int]:
        """Execute several front-layer gates; return all indices newly added
        to the front, in unlock order (feed for incremental worklists)."""
        newly: list[int] = []
        for i in list(indices):
            newly.extend(self.execute(i))
        return newly

    @property
    def done(self) -> bool:
        """True when every gate has been executed."""
        return self._num_executed == len(self.gates)

    @property
    def num_remaining(self) -> int:
        """Number of unexecuted gates."""
        return len(self.gates) - self._num_executed

    def reset(self) -> None:
        """Return the DAG to the initial (nothing-executed) state."""
        self._remaining_preds = list(self.predecessor_count)
        self._front = {
            i for i in range(len(self.gates)) if self._remaining_preds[i] == 0
        }
        self._front_sorted = sorted(self._front)
        self._executed = [False] * len(self.gates)
        self._num_executed = 0

    # -- static analyses --------------------------------------------------------

    def topological_layers(self) -> list[list[int]]:
        """ASAP layers: each layer's gates have all predecessors in earlier layers."""
        remaining = list(self.predecessor_count)
        layer = deque(i for i in range(len(self.gates)) if remaining[i] == 0)
        layers: list[list[int]] = []
        while layer:
            layers.append(sorted(layer))
            nxt: deque[int] = deque()
            for i in layers[-1]:
                for s in self.successors[i]:
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        nxt.append(s)
            layer = nxt
        return layers

    def gate_layer_index(self) -> list[int]:
        """ASAP layer number for every gate (used by the gamma^layer decay)."""
        out = [0] * len(self.gates)
        for li, layer in enumerate(self.topological_layers()):
            for i in layer:
                out[i] = li
        return out

    def descendants_count(self) -> list[int]:
        """Number of (not necessarily distinct-path) reachable successors per gate.

        Computed on the transitive reduction we store; used as a criticality
        hint by schedulers.  Reachability sets are arbitrary-precision
        integer bitsets (bit *s* set = gate *s* reachable), so the union of
        two sets is one word-parallel ``|`` instead of a per-element hash
        merge and memory stays O(n^2 / 64) bits instead of O(n^2) pointers.
        """
        n = len(self.gates)
        reach: list[int] = [0] * n
        order: list[int] = [i for layer in self.topological_layers() for i in layer]
        for i in reversed(order):
            acc = 0
            for s in self.successors[i]:
                acc |= reach[s] | (1 << s)
            reach[i] = acc
        return [r.bit_count() for r in reach]
