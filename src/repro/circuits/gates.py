"""Gate taxonomy for the circuit IR.

A :class:`Gate` is an immutable record: a name, the qubits it acts on, and
optional real parameters.  The module also provides unitary matrices for the
standard gates so tests can verify decompositions numerically.

Only the gate *metadata* (arity, whether the gate is diagonal, whether it is
an entangling two-qubit gate) is consulted by the compiler; matrices are used
exclusively for verification.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

#: Names of gates acting on a single qubit.
ONE_QUBIT_GATES = frozenset(
    {
        "id",
        "x",
        "y",
        "z",
        "h",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "rx",
        "ry",
        "rz",
        "u",
        "u1",
        "u2",
        "u3",
        "p",
    }
)

#: Names of gates acting on exactly two qubits.
TWO_QUBIT_GATES = frozenset(
    {"cx", "cz", "swap", "rzz", "rxx", "ryy", "cp", "crz", "iswap"}
)

#: Names of gates acting on three qubits (decomposed before routing).
THREE_QUBIT_GATES = frozenset({"ccx", "ccz", "cswap"})

#: Two-qubit gates that are symmetric under qubit exchange.
SYMMETRIC_GATES = frozenset({"cz", "swap", "rzz", "rxx", "ryy", "cp", "iswap", "ccz"})

#: Gates diagonal in the computational basis (commute with each other).
DIAGONAL_GATES = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "u1", "p", "cz", "rzz", "cp", "crz", "ccz"})

#: Number of parameters each parameterised gate expects.
GATE_NUM_PARAMS = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "u": 3,
    "rzz": 1,
    "rxx": 1,
    "ryy": 1,
    "cp": 1,
    "crz": 1,
}

#: Name of the measurement pseudo-gate.
MEASURE = "measure"
#: Name of the barrier pseudo-gate.
BARRIER = "barrier"


class GateError(ValueError):
    """Raised when a gate is constructed with inconsistent metadata."""


@dataclass(frozen=True)
class Gate:
    """An immutable gate application.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic (``"cz"``, ``"u3"``, ...).
    qubits:
        Tuple of distinct qubit indices the gate acts on.
    params:
        Tuple of real parameters (rotation angles in radians).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(f"duplicate qubits in gate {self.name}: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise GateError(f"negative qubit index in gate {self.name}: {self.qubits}")
        expected = self.expected_arity(self.name)
        if expected is not None and len(self.qubits) != expected:
            raise GateError(
                f"gate {self.name!r} expects {expected} qubits, got {len(self.qubits)}"
            )
        nparams = GATE_NUM_PARAMS.get(self.name)
        if nparams is not None and len(self.params) != nparams:
            raise GateError(
                f"gate {self.name!r} expects {nparams} params, got {len(self.params)}"
            )

    @staticmethod
    def expected_arity(name: str) -> int | None:
        """Return the number of qubits gate *name* acts on, if fixed."""
        if name in ONE_QUBIT_GATES or name == MEASURE:
            return 1
        if name in TWO_QUBIT_GATES:
            return 2
        if name in THREE_QUBIT_GATES:
            return 3
        return None

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate touches."""
        return len(self.qubits)

    @property
    def is_one_qubit(self) -> bool:
        """True for single-qubit unitary gates (not measure/barrier)."""
        return self.name in ONE_QUBIT_GATES

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit unitary gates."""
        return self.name in TWO_QUBIT_GATES

    @property
    def is_entangling(self) -> bool:
        """True for multi-qubit unitary gates (arity >= 2)."""
        return self.name in TWO_QUBIT_GATES or self.name in THREE_QUBIT_GATES

    @property
    def is_symmetric(self) -> bool:
        """True if exchanging the qubits leaves the gate invariant."""
        return self.name in SYMMETRIC_GATES

    @property
    def is_diagonal(self) -> bool:
        """True if the gate is diagonal in the computational basis."""
        return self.name in DIAGONAL_GATES

    @property
    def is_directive(self) -> bool:
        """True for non-unitary pseudo-ops (measure, barrier)."""
        return self.name in (MEASURE, BARRIER)

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit *q*."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def key(self) -> tuple[int, int]:
        """Canonical unordered qubit pair for a two-qubit gate."""
        if len(self.qubits) != 2:
            raise GateError(f"key() requires a 2-qubit gate, got {self.name}")
        a, b = self.qubits
        return (a, b) if a < b else (b, a)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.params:
            ps = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({ps}) q{list(self.qubits)}"
        return f"{self.name} q{list(self.qubits)}"


# ---------------------------------------------------------------------------
# Unitary matrices (verification only)
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)

_FIXED_1Q = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Standard U3 matrix (OpenQASM convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def one_qubit_matrix(gate: Gate) -> np.ndarray:
    """Return the 2x2 unitary of a single-qubit *gate*."""
    name, params = gate.name, gate.params
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name == "rx":
        (theta,) = params
        return _u3(theta, -math.pi / 2, math.pi / 2)
    if name == "ry":
        (theta,) = params
        return _u3(theta, 0.0, 0.0)
    if name == "rz":
        (theta,) = params
        return np.diag([cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)])
    if name in ("p", "u1"):
        (theta,) = params
        return np.diag([1.0, cmath.exp(1j * theta)])
    if name == "u2":
        phi, lam = params
        return _u3(math.pi / 2, phi, lam)
    if name in ("u3", "u"):
        return _u3(*params)
    raise GateError(f"no matrix known for 1q gate {name!r}")


def two_qubit_matrix(gate: Gate) -> np.ndarray:
    """Return the 4x4 unitary of a two-qubit *gate*.

    Qubit ordering: ``qubits[0]`` is the most-significant bit, matching the
    tensor-product convention ``U = U_{q0 q1}`` on basis ``|q0 q1>``.
    """
    name, params = gate.name, gate.params
    if name == "cx":
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if name == "iswap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if name == "rzz":
        (theta,) = params
        e = cmath.exp(-1j * theta / 2)
        f = cmath.exp(1j * theta / 2)
        return np.diag([e, f, f, e])
    if name == "rxx":
        (theta,) = params
        c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = s
        return m
    if name == "ryy":
        (theta,) = params
        c, s = math.cos(theta / 2), 1j * math.sin(theta / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = s
        m[1, 2] = m[2, 1] = -s
        return m
    if name == "cp":
        (theta,) = params
        return np.diag([1, 1, 1, cmath.exp(1j * theta)]).astype(complex)
    if name == "crz":
        (theta,) = params
        return np.diag(
            [1, 1, cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)]
        ).astype(complex)
    raise GateError(f"no matrix known for 2q gate {name!r}")


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary of *gate* (1Q or 2Q only)."""
    if gate.is_one_qubit:
        return one_qubit_matrix(gate)
    if gate.is_two_qubit:
        return two_qubit_matrix(gate)
    raise GateError(f"gate_matrix supports 1Q/2Q gates, got {gate.name}")


def matrices_equal_up_to_phase(a: np.ndarray, b: np.ndarray, tol: float = 1e-9) -> bool:
    """True if ``a == e^{i phi} b`` for some global phase phi."""
    if a.shape != b.shape:
        return False
    # Find the largest-magnitude entry of b to fix the phase.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < tol:
        return bool(np.allclose(a, b, atol=tol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-7:
        return False
    return bool(np.allclose(a, phase * b, atol=tol))
