"""Quantum-circuit substrate: IR, DAG, QASM I/O, basis lowering, generators."""

from .circuit import CircuitError, QuantumCircuit
from .dag import DAGCircuit
from .decompose import cancel_adjacent_2q_pairs, lower_to_basis, merge_1q_runs
from .gates import Gate, GateError, gate_matrix, matrices_equal_up_to_phase
from .qasm import QASMError, emit_qasm, parse_qasm
from .random_circuits import quantum_volume_circuit, random_circuit

__all__ = [
    "CircuitError",
    "DAGCircuit",
    "Gate",
    "GateError",
    "QASMError",
    "QuantumCircuit",
    "cancel_adjacent_2q_pairs",
    "emit_qasm",
    "gate_matrix",
    "lower_to_basis",
    "matrices_equal_up_to_phase",
    "merge_1q_runs",
    "parse_qasm",
    "quantum_volume_circuit",
    "random_circuit",
]
