"""Random generic circuits with controlled structure.

Figures 15 and 21 of the paper sweep two structural knobs of "arbitrary"
circuits:

* **2Q gates per qubit** — how many two-qubit gates touch an average qubit
  (controls circuit volume / depth);
* **degree per qubit** — how many *distinct* partners an average qubit
  interacts with (controls locality).

:func:`random_circuit` hits both targets by first sampling an interaction
graph with the requested average degree and then distributing the requested
number of gates over its edges.
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import QuantumCircuit


def _interaction_graph_edges(
    num_qubits: int, degree_per_qubit: float, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Sample an undirected graph with average degree ~ *degree_per_qubit*."""
    target_edges = max(1, round(num_qubits * degree_per_qubit / 2.0))
    max_edges = num_qubits * (num_qubits - 1) // 2
    target_edges = min(target_edges, max_edges)
    edges: set[tuple[int, int]] = set()
    # Seed with a Hamiltonian-path backbone so the graph is connected whenever
    # the budget allows; connectivity keeps the gate distribution meaningful.
    order = rng.permutation(num_qubits)
    for i in range(num_qubits - 1):
        if len(edges) >= target_edges:
            break
        a, b = int(order[i]), int(order[i + 1])
        edges.add((min(a, b), max(a, b)))
    while len(edges) < target_edges:
        a, b = rng.integers(0, num_qubits, size=2)
        if a == b:
            continue
        edges.add((min(int(a), int(b)), max(int(a), int(b))))
    return sorted(edges)


def random_circuit(
    num_qubits: int,
    gates_per_qubit: float,
    degree_per_qubit: float,
    seed: int | None = None,
    one_qubit_prob: float = 0.5,
) -> QuantumCircuit:
    """Random circuit with target 2Q-gates-per-qubit and degree-per-qubit.

    Parameters
    ----------
    num_qubits:
        Register size.
    gates_per_qubit:
        Target average number of 2Q gates touching each qubit.
    degree_per_qubit:
        Target average number of distinct interaction partners per qubit.
    seed:
        RNG seed for reproducibility.
    one_qubit_prob:
        Probability of inserting a random 1Q gate after each 2Q gate.
    """
    if num_qubits < 2:
        raise ValueError("random_circuit needs at least 2 qubits")
    degree_per_qubit = min(degree_per_qubit, float(num_qubits - 1))
    rng = np.random.default_rng(seed)
    edges = _interaction_graph_edges(num_qubits, degree_per_qubit, rng)
    num_2q = max(1, round(num_qubits * gates_per_qubit / 2.0))

    name = f"arb-{num_qubits}q-g{gates_per_qubit:g}-d{degree_per_qubit:g}"
    circ = QuantumCircuit(num_qubits, name)
    one_qubit_pool = ("h", "t", "s", "x", "rz")
    # Round-robin over edges first so every edge is used (degree target),
    # then sample the remainder uniformly (gate-count target).
    schedule: list[tuple[int, int]] = []
    reps, rem = divmod(num_2q, len(edges))
    for _ in range(reps):
        schedule.extend(edges)
    if rem:
        picks = rng.choice(len(edges), size=rem, replace=False)
        schedule.extend(edges[int(i)] for i in picks)
    rng.shuffle(schedule)  # type: ignore[arg-type]

    for a, b in schedule:
        if rng.random() < 0.5:
            a, b = b, a
        circ.cx(a, b)
        if rng.random() < one_qubit_prob:
            g = one_qubit_pool[int(rng.integers(0, len(one_qubit_pool)))]
            q = int(rng.integers(0, num_qubits))
            if g == "rz":
                circ.rz(float(rng.uniform(0, 2 * math.pi)), q)
            else:
                circ.add(g, [q])
    return circ


def quantum_volume_circuit(
    num_qubits: int, depth: int | None = None, seed: int | None = None
) -> QuantumCircuit:
    """Quantum-volume-style model circuit (QV-n in Table II).

    Each of *depth* rounds pairs up a random permutation of the qubits and
    applies a random SU(4)-like block (3 CX + 1Q dressing) on each pair.
    """
    rng = np.random.default_rng(seed)
    depth = depth if depth is not None else num_qubits
    circ = QuantumCircuit(num_qubits, f"qv-{num_qubits}")
    for _ in range(depth):
        perm = rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            for q in (a, b):
                circ.u(
                    float(rng.uniform(0, math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    q,
                )
            circ.cx(a, b)
            circ.rz(float(rng.uniform(0, 2 * math.pi)), b)
            circ.cx(b, a)
            circ.ry(float(rng.uniform(0, 2 * math.pi)), a)
            circ.cx(a, b)
            for q in (a, b):
                circ.u(
                    float(rng.uniform(0, math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(rng.uniform(0, 2 * math.pi)),
                    q,
                )
    return circ
