"""SABRE qubit mapping and routing (Li, Ding, Xie — ASPLOS 2019).

This is the SWAP-insertion engine used by every baseline in the paper
("All baselines are using Qiskit Optimization Level 3 with SABRE") and by
Atomique itself for intra-array conflicts on the complete multipartite
coupling graph (Sec. III-A, Fig. 5).

The implementation follows the published algorithm:

* the *front layer* holds 2Q gates with no unexecuted predecessors;
* executable gates (physically adjacent endpoints) are flushed greedily;
* otherwise the swap candidate set is every coupling edge touching a qubit
  of the front layer, scored by the sum of front-layer distances plus a
  weighted *extended set* lookahead, with a decay factor discouraging
  thrashing on recently swapped qubits;
* the initial layout is refined by forward/backward passes over the circuit
  (the "reverse traversal" trick from the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.coupling import CouplingMap
from .layout import Layout

EXTENDED_SET_SIZE = 20
EXTENDED_SET_WEIGHT = 0.5
DECAY_INCREMENT = 0.001
DECAY_RESET_INTERVAL = 5


@dataclass
class SabreResult:
    """Output of a SABRE routing run.

    Attributes
    ----------
    circuit:
        Routed circuit on *physical* qubits; inserted SWAPs carry the name
        ``"swap"`` and can be counted/decomposed downstream.
    initial_layout / final_layout:
        Logical->physical maps before and after routing.
    num_swaps:
        Number of inserted SWAP gates.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int = 0
    swap_gate_indices: list[int] = field(default_factory=list)


def _extended_set(dag: DAGCircuit, front: set[int], limit: int) -> list[int]:
    """Successor 2Q gates of the front layer, up to *limit* entries."""
    out: list[int] = []
    seen: set[int] = set()
    queue = sorted(front)
    qi = 0
    while qi < len(queue) and len(out) < limit:
        node = queue[qi]
        qi += 1
        for succ in dag.successors[node]:
            if succ in seen:
                continue
            seen.add(succ)
            if dag.gates[succ].is_two_qubit:
                out.append(succ)
                if len(out) >= limit:
                    break
            queue.append(succ)
    return out


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout | None = None,
    seed: int = 7,
) -> SabreResult:
    """Route *circuit* onto *coupling* inserting SWAPs, SABRE-style.

    The returned circuit acts on physical qubit indices.  1Q gates and
    directives pass straight through at the current mapping.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit has {circuit.num_qubits} qubits, device only "
            f"{coupling.num_qubits}"
        )
    rng = np.random.default_rng(seed)
    layout = (initial_layout or Layout.trivial(circuit.num_qubits)).copy()
    init_layout = layout.copy()
    dist = coupling.distance_matrix()
    dag = DAGCircuit(circuit)
    out = QuantumCircuit(coupling.num_qubits, circuit.name)
    decay = np.ones(coupling.num_qubits)
    num_swaps = 0
    swap_indices: list[int] = []
    steps_since_progress = 0

    def flush_executable() -> bool:
        """Execute every currently-runnable front gate; True if any ran."""
        progressed = False
        changed = True
        while changed:
            changed = False
            for idx in dag.front_indices():
                g = dag.gates[idx]
                if g.is_two_qubit:
                    pa, pb = layout.physical(g.qubits[0]), layout.physical(g.qubits[1])
                    if not coupling.is_adjacent(pa, pb):
                        continue
                    out.append(Gate(g.name, (pa, pb), g.params))
                else:
                    out.append(
                        Gate(g.name, tuple(layout.physical(q) for q in g.qubits), g.params)
                    )
                dag.execute(idx)
                changed = True
                progressed = True
        return progressed

    flush_executable()
    while not dag.done:
        front_2q = [i for i in dag.front_layer if dag.gates[i].is_two_qubit]
        if not front_2q:
            # Only 1Q gates remain blocked (cannot happen: 1Q always runs).
            flush_executable()
            continue
        ext = _extended_set(dag, dag.front_layer, EXTENDED_SET_SIZE)

        # Candidate swaps: edges touching a front-layer qubit.
        active_phys: set[int] = set()
        for i in front_2q:
            for q in dag.gates[i].qubits:
                active_phys.add(layout.physical(q))
        candidates: set[tuple[int, int]] = set()
        for p in active_phys:
            for nb in coupling.neighbors(p):
                candidates.add((min(p, nb), max(p, nb)))

        # Score every candidate edge exactly once.  Instead of copying the
        # layout per edge we apply the swap in place, measure, and swap
        # back (swap_physical is an involution) — same numbers, no O(n)
        # dict rebuild per candidate.
        front_pairs = [dag.gates[i].qubits for i in front_2q]
        ext_pairs = [dag.gates[i].qubits for i in ext]
        physical = layout.physical
        scores: dict[tuple[int, int], float] = {}
        for edge in candidates:
            p1, p2 = edge
            layout.swap_physical(p1, p2)
            front_cost = 0.0
            for a, b in front_pairs:
                front_cost += dist[physical(a), physical(b)]
            front_cost /= len(front_pairs)
            ext_cost = 0.0
            if ext_pairs:
                for a, b in ext_pairs:
                    ext_cost += dist[physical(a), physical(b)]
                ext_cost /= len(ext_pairs)
            layout.swap_physical(p1, p2)
            scores[edge] = max(decay[p1], decay[p2]) * (
                front_cost + EXTENDED_SET_WEIGHT * ext_cost
            )

        scored = sorted(candidates, key=lambda e: (scores[e], e))
        best_score = scores[scored[0]]
        ties = [e for e in scored if scores[e] <= best_score + 1e-12]
        p1, p2 = ties[int(rng.integers(0, len(ties)))]

        out.append(Gate("swap", (p1, p2)))
        swap_indices.append(len(out) - 1)
        num_swaps += 1
        layout.swap_physical(p1, p2)
        decay[p1] += DECAY_INCREMENT
        decay[p2] += DECAY_INCREMENT
        steps_since_progress += 1
        if steps_since_progress >= DECAY_RESET_INTERVAL:
            decay[:] = 1.0
            steps_since_progress = 0
        if flush_executable():
            decay[:] = 1.0
            steps_since_progress = 0

    return SabreResult(
        circuit=out,
        initial_layout=init_layout,
        final_layout=layout,
        num_swaps=num_swaps,
        swap_gate_indices=swap_indices,
    )


def sabre_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    num_iterations: int = 3,
    seed: int = 7,
    initial_layout: Layout | None = None,
) -> Layout:
    """Find an initial layout by SABRE forward/backward traversal.

    Each iteration routes the circuit forward then backward, feeding the
    final layout of each pass in as the initial layout of the next.
    """
    layout = initial_layout or _spread_layout(circuit.num_qubits, coupling, seed)
    forward = circuit.without_directives()
    backward = circuit.reversed()
    for it in range(num_iterations):
        res_f = sabre_route(forward, coupling, layout, seed=seed + 2 * it)
        layout = res_f.final_layout
        res_b = sabre_route(backward, coupling, layout, seed=seed + 2 * it + 1)
        layout = res_b.final_layout
    return layout


def _spread_layout(num_logical: int, coupling: CouplingMap, seed: int) -> Layout:
    """Random-but-reproducible starting layout over the device."""
    rng = np.random.default_rng(seed)
    physical = rng.permutation(coupling.num_qubits)[:num_logical]
    return Layout.from_physical_list(int(p) for p in physical)


def route_with_sabre(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout_iterations: int = 2,
    seed: int = 7,
    initial_layout: Layout | None = None,
) -> SabreResult:
    """Full SABRE pipeline: layout search then final routing pass."""
    clean = circuit.without_directives()
    if initial_layout is None:
        initial_layout = sabre_layout(
            clean, coupling, num_iterations=layout_iterations, seed=seed
        )
    return sabre_route(clean, coupling, initial_layout, seed=seed)
