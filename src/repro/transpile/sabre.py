"""SABRE qubit mapping and routing (Li, Ding, Xie — ASPLOS 2019).

This is the SWAP-insertion engine used by every baseline in the paper
("All baselines are using Qiskit Optimization Level 3 with SABRE") and by
Atomique itself for intra-array conflicts on the complete multipartite
coupling graph (Sec. III-A, Fig. 5).

The implementation follows the published algorithm:

* the *front layer* holds 2Q gates with no unexecuted predecessors;
* executable gates (physically adjacent endpoints) are flushed greedily;
* otherwise the swap candidate set is every coupling edge touching a qubit
  of the front layer, scored by the sum of front-layer distances plus a
  weighted *extended set* lookahead, with a decay factor discouraging
  thrashing on recently swapped qubits;
* the initial layout is refined by forward/backward passes over the circuit
  (the "reverse traversal" trick from the paper).

Scoring is *incremental* (:class:`_IncrementalScorer`): front and extended
pair costs are running integer sums, each candidate edge carries the exact
integer cost *delta* its swap would cause, and a committed swap only
refreshes the deltas of candidates touching the swapped qubits (or the
partners of pairs they host).  All bookkeeping is integer-exact, so the
floating-point scores — and therefore the chosen swap sequence — are
bit-identical to the naive rescoring loop (pinned by the golden corpus in
``tests/transpile/golden_sabre.json`` and a per-decision differential test).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.coupling import CouplingMap
from .layout import Layout

EXTENDED_SET_SIZE = 20
EXTENDED_SET_WEIGHT = 0.5
DECAY_INCREMENT = 0.001
DECAY_RESET_INTERVAL = 5


@dataclass
class SabreResult:
    """Output of a SABRE routing run.

    Attributes
    ----------
    circuit:
        Routed circuit on *physical* qubits; inserted SWAPs carry the name
        ``"swap"`` and can be counted/decomposed downstream.
    initial_layout / final_layout:
        Logical->physical maps before and after routing.
    num_swaps:
        Number of inserted SWAP gates.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int = 0
    swap_gate_indices: list[int] = field(default_factory=list)


def _extended_set(dag: DAGCircuit, front: set[int], limit: int) -> list[int]:
    """Successor 2Q gates of the front layer, up to *limit* entries."""
    out: list[int] = []
    seen: set[int] = set()
    queue = sorted(front)
    qi = 0
    while qi < len(queue) and len(out) < limit:
        node = queue[qi]
        qi += 1
        for succ in dag.successors[node]:
            if succ in seen:
                continue
            seen.add(succ)
            if dag.gates[succ].is_two_qubit:
                out.append(succ)
                if len(out) >= limit:
                    break
            queue.append(succ)
    return out


class _IncrementalScorer:
    """Delta-scored swap candidates over numpy index arrays.

    One instance lives for the duration of a :func:`sabre_route` call and
    owns the logical<->physical position arrays.  The candidate set is the
    coupling edges touching a physical qubit of the front layer; each
    candidate stores the *integer* change its swap would make to the summed
    front / extended-set distances.  Because front-layer gates are pairwise
    qubit-disjoint, every active physical qubit has exactly one front
    partner, which makes the front delta a handful of vectorized distance
    gathers; extended-set pairs may share qubits, so their delta is
    accumulated per ext pair over the candidates that touch one.

    An *epoch* spans the decisions between two front-layer changes:
    :meth:`begin_epoch` rebuilds the pair structures and scores every
    candidate, :meth:`commit` applies a chosen swap and refreshes only the
    candidates whose cost that swap could have moved.
    """

    def __init__(self, coupling: CouplingMap, l2p: np.ndarray) -> None:
        self._dist = coupling.distance_matrix()
        self._nbrs = coupling.neighbor_lists()
        n = coupling.num_qubits
        self._n = n
        self.l2p = l2p
        self._p2l = np.full(n, -1, dtype=np.int64)
        present = l2p >= 0
        self._p2l[l2p[present]] = np.flatnonzero(present)
        #: physical -> its single front partner's physical position (or -1)
        self._partner = np.full(n, -1, dtype=np.int64)
        #: physical hosts a front-layer qubit
        self._active = np.zeros(n, dtype=bool)
        #: physical hosts an extended-set pair endpoint
        self._hostext = np.zeros(n, dtype=bool)
        #: scratch flags for the affected-candidate mask
        self._aff = np.zeros(n, dtype=bool)
        #: per-physical-qubit candidate edge codes (min*n + max), lazy
        self._edge_codes: list[np.ndarray | None] = [None] * n
        self._E = 0
        self._F = 0

    # -- helpers ---------------------------------------------------------------

    def _codes_for(self, p: int) -> np.ndarray:
        codes = self._edge_codes[p]
        if codes is None:
            nb = self._nbrs[p]
            codes = np.where(nb < p, nb * self._n + p, p * self._n + nb)
            codes.sort()
            self._edge_codes[p] = codes
        return codes

    def _front_delta(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        """Exact integer front-cost change of swapping each ``(s1, s2)``."""
        dist = self._dist
        part1 = self._partner[s1]
        part2 = self._partner[s2]
        d = np.zeros(len(s1), dtype=np.int64)
        m = part1 >= 0
        if m.any():
            d[m] = dist[s2[m], part1[m]].astype(np.int64) - dist[s1[m], part1[m]]
        m = part2 >= 0
        if m.any():
            d[m] += dist[s1[m], part2[m]].astype(np.int64) - dist[s2[m], part2[m]]
        # A candidate swapping the two endpoints of one front pair leaves its
        # distance unchanged; the two one-sided terms double-subtracted it.
        m = part1 == s2
        if m.any():
            d[m] += 2 * dist[s1[m], s2[m]].astype(np.int64)
        return d

    def _ext_delta(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        """Exact integer extended-set cost change per candidate swap."""
        d = np.zeros(len(s1), dtype=np.int64)
        if not self._E:
            return d
        sub = np.flatnonzero(self._hostext[s1] | self._hostext[s2])
        if not len(sub):
            return d
        dist = self._dist
        ss1, ss2 = s1[sub], s2[sub]
        acc = np.zeros(len(sub), dtype=np.int64)
        for k in range(self._E):
            u = int(self._pea[k])
            v = int(self._peb[k])
            t1u = ss1 == u
            t2u = ss2 == u
            t1v = ss1 == v
            t2v = ss2 == v
            touched = t1u | t2u | t1v | t2v
            if not touched.any():
                continue
            idx = np.flatnonzero(touched)
            a = np.where(t1u[idx], ss2[idx], np.where(t2u[idx], ss1[idx], u))
            b = np.where(t1v[idx], ss2[idx], np.where(t2v[idx], ss1[idx], v))
            acc[idx] += dist[a, b].astype(np.int64) - int(dist[u, v])
        d[sub] = acc
        return d

    # -- epoch lifecycle -------------------------------------------------------

    def begin_epoch(
        self,
        front_pairs: list[tuple[int, ...]],
        ext_pairs: list[tuple[int, ...]],
    ) -> None:
        """Rebuild pair structures and score every candidate from scratch."""
        n = self._n
        l2p = self.l2p
        fa = np.fromiter((p[0] for p in front_pairs), np.int64, len(front_pairs))
        fb = np.fromiter((p[1] for p in front_pairs), np.int64, len(front_pairs))
        self._pfa = l2p[fa]
        self._pfb = l2p[fb]
        self._F = len(front_pairs)
        self._E = len(ext_pairs)
        if ext_pairs:
            ea = np.fromiter((p[0] for p in ext_pairs), np.int64, len(ext_pairs))
            eb = np.fromiter((p[1] for p in ext_pairs), np.int64, len(ext_pairs))
            self._pea = l2p[ea]
            self._peb = l2p[eb]
        else:
            self._pea = self._peb = np.empty(0, dtype=np.int64)

        self._partner.fill(-1)
        self._partner[self._pfa] = self._pfb
        self._partner[self._pfb] = self._pfa
        self._active.fill(False)
        self._active[self._pfa] = True
        self._active[self._pfb] = True
        self._hostext.fill(False)
        if self._E:
            self._hostext[self._pea] = True
            self._hostext[self._peb] = True

        dist = self._dist
        self._base_front = int(dist[self._pfa, self._pfb].astype(np.int64).sum())
        self._base_ext = (
            int(dist[self._pea, self._peb].astype(np.int64).sum()) if self._E else 0
        )

        act = np.unique(np.concatenate([self._pfa, self._pfb]))
        codes = np.unique(np.concatenate([self._codes_for(int(p)) for p in act]))
        self._codes = codes
        self._cp1 = codes // n
        self._cp2 = codes % n
        self._dfront = self._front_delta(self._cp1, self._cp2)
        self._dext = self._ext_delta(self._cp1, self._cp2)

    def scores(self, decay: np.ndarray) -> np.ndarray:
        """Float scores of every candidate, identical to the naive formula."""
        front_cost = (self._base_front + self._dfront) / self._F
        if self._E:
            total = front_cost + EXTENDED_SET_WEIGHT * (
                (self._base_ext + self._dext) / self._E
            )
        else:
            total = front_cost
        return np.maximum(decay[self._cp1], decay[self._cp2]) * total

    def select(self, decay: np.ndarray, rng: np.random.Generator) -> int:
        """Pick the candidate index SABRE-style (min score, seeded ties)."""
        sc = self.scores(decay)
        best = sc.min()
        ties = np.flatnonzero(sc <= best + 1e-12)
        if len(ties) > 1:
            order = np.lexsort((self._cp2[ties], self._cp1[ties], sc[ties]))
            ties = ties[order]
        # The naive loop draws once per decision even for a single tie;
        # keep the rng stream identical.
        return int(ties[int(rng.integers(0, len(ties)))])

    def edge(self, idx: int) -> tuple[int, int]:
        return int(self._cp1[idx]), int(self._cp2[idx])

    def commit(self, idx: int) -> None:
        """Apply candidate *idx*'s swap and delta-refresh touched candidates."""
        p1 = int(self._cp1[idx])
        p2 = int(self._cp2[idx])
        self._base_front += int(self._dfront[idx])
        self._base_ext += int(self._dext[idx])

        # Affected vertices: the swapped qubits plus the partners of every
        # pair they host — only candidates touching one can change delta.
        w1 = int(self._partner[p1])
        w2 = int(self._partner[p2])
        affected = [p1, p2]
        if w1 >= 0:
            affected.append(w1)
        if w2 >= 0:
            affected.append(w2)
        if self._E:
            pea, peb = self._pea, self._peb
            m = (pea == p1) | (pea == p2)
            if m.any():
                affected.extend(int(x) for x in peb[m])
            m = (peb == p1) | (peb == p2)
            if m.any():
                affected.extend(int(x) for x in pea[m])

        # Swap the physical contents.
        l1 = int(self._p2l[p1])
        l2 = int(self._p2l[p2])
        if l1 >= 0:
            self.l2p[l1] = p2
        if l2 >= 0:
            self.l2p[l2] = p1
        self._p2l[p1] = l2
        self._p2l[p2] = l1

        # Re-point the physical pair-position arrays.
        for arr in (self._pfa, self._pfb, self._pea, self._peb):
            if not len(arr):
                continue
            m1 = arr == p1
            m2 = arr == p2
            arr[m1] = p2
            arr[m2] = p1

        # Front partners move with their qubits (no-op for a swap between
        # the two endpoints of one pair).
        if w1 != p2:
            self._partner[p1] = w2
            self._partner[p2] = w1
            if w1 >= 0:
                self._partner[w1] = p2
            if w2 >= 0:
                self._partner[w2] = p1
        self._hostext[p1], self._hostext[p2] = (
            bool(self._hostext[p2]),
            bool(self._hostext[p1]),
        )

        # Candidate set: active membership only changes when exactly one of
        # the swapped positions hosted a front qubit.
        a1 = bool(self._active[p1])
        a2 = bool(self._active[p2])
        if a1 != a2:
            self._active[p1] = a2
            self._active[p2] = a1
            newly = p1 if a2 else p2
            keep = self._active[self._cp1] | self._active[self._cp2]
            old_codes = self._codes[keep]
            merged = np.union1d(old_codes, self._codes_for(newly))
            dfront = np.empty(len(merged), dtype=np.int64)
            dext = np.empty(len(merged), dtype=np.int64)
            pos = np.searchsorted(merged, old_codes)
            dfront[pos] = self._dfront[keep]
            dext[pos] = self._dext[keep]
            # Fresh entries all touch `newly` ∈ affected, so the refresh
            # below computes them; stale slots never survive it.
            self._codes = merged
            self._cp1 = merged // self._n
            self._cp2 = merged % self._n
            self._dfront = dfront
            self._dext = dext

        aff = self._aff
        for a in affected:
            aff[a] = True
        mask = aff[self._cp1] | aff[self._cp2]
        for a in affected:
            aff[a] = False
        touched = np.flatnonzero(mask)
        if len(touched):
            s1 = self._cp1[touched]
            s2 = self._cp2[touched]
            self._dfront[touched] = self._front_delta(s1, s2)
            self._dext[touched] = self._ext_delta(s1, s2)


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout | None = None,
    seed: int = 7,
    dag: DAGCircuit | None = None,
    _audit=None,
) -> SabreResult:
    """Route *circuit* onto *coupling* inserting SWAPs, SABRE-style.

    The returned circuit acts on physical qubit indices.  1Q gates and
    directives pass straight through at the current mapping.

    ``dag`` optionally supplies a prebuilt dependency DAG of *circuit*
    (it is reset and consumed) so repeated routes of the same circuit —
    the layout search's 2xN reverse traversals — skip reconstruction.
    ``_audit`` is a test hook called once per swap decision with the
    scorer's candidate arrays and the exact state a naive rescoring loop
    needs to reproduce them.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit has {circuit.num_qubits} qubits, device only "
            f"{coupling.num_qubits}"
        )
    rng = np.random.default_rng(seed)
    layout = (initial_layout or Layout.trivial(circuit.num_qubits)).copy()
    init_layout = layout.copy()
    if dag is None:
        dag = DAGCircuit(circuit)
    else:
        dag.reset()
    coupling.distance_matrix()  # materialize the cached artifact up front
    out = QuantumCircuit(coupling.num_qubits, circuit.name)
    decay = np.ones(coupling.num_qubits)
    num_swaps = 0
    swap_indices: list[int] = []
    steps_since_progress = 0

    l2p_map = layout.as_dict()
    num_slots = max(l2p_map) + 1 if l2p_map else 0
    l2p = np.full(num_slots, -1, dtype=np.int64)
    for q, p in l2p_map.items():
        l2p[q] = p
    scorer = _IncrementalScorer(coupling, l2p)

    gates = dag.gates
    two_qubit = dag.two_qubit
    adj = coupling.adj

    def flush_executable() -> bool:
        """Execute every currently-runnable front gate; True if any ran."""
        progressed = False
        changed = True
        while changed:
            changed = False
            for idx in dag.front_indices():
                g = gates[idx]
                if two_qubit[idx]:
                    qa, qb = g.qubits
                    pa = int(l2p[qa])
                    pb = int(l2p[qb])
                    if pb not in adj[pa]:
                        continue
                    out.append(Gate(g.name, (pa, pb), g.params))
                else:
                    out.append(
                        Gate(g.name, tuple(int(l2p[q]) for q in g.qubits), g.params)
                    )
                dag.execute(idx)
                changed = True
                progressed = True
        return progressed

    flush_executable()
    front_dirty = True
    while not dag.done:
        front_2q = [i for i in dag.front_layer if two_qubit[i]]
        if not front_2q:
            # Only 1Q gates remain blocked (cannot happen: 1Q always runs).
            flush_executable()
            front_dirty = True
            continue
        if front_dirty:
            ext = _extended_set(dag, dag.front_layer, EXTENDED_SET_SIZE)
            front_pairs = [gates[i].qubits for i in front_2q]
            ext_pairs = [gates[i].qubits for i in ext]
            scorer.begin_epoch(front_pairs, ext_pairs)
            front_dirty = False

        if _audit is not None:
            _audit(scorer, front_pairs, ext_pairs, l2p, decay)
        chosen = scorer.select(decay, rng)
        p1, p2 = scorer.edge(chosen)

        out.append(Gate("swap", (p1, p2)))
        swap_indices.append(len(out) - 1)
        num_swaps += 1
        scorer.commit(chosen)
        decay[p1] += DECAY_INCREMENT
        decay[p2] += DECAY_INCREMENT
        steps_since_progress += 1
        if steps_since_progress >= DECAY_RESET_INTERVAL:
            decay[:] = 1.0
            steps_since_progress = 0
        if flush_executable():
            decay[:] = 1.0
            steps_since_progress = 0
            front_dirty = True

    final_layout = Layout({q: int(l2p[q]) for q in sorted(l2p_map)})
    return SabreResult(
        circuit=out,
        initial_layout=init_layout,
        final_layout=final_layout,
        num_swaps=num_swaps,
        swap_gate_indices=swap_indices,
    )


def sabre_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    num_iterations: int = 3,
    seed: int = 7,
    initial_layout: Layout | None = None,
    forward_dag: DAGCircuit | None = None,
    backward_dag: DAGCircuit | None = None,
) -> Layout:
    """Find an initial layout by SABRE forward/backward traversal.

    Each iteration routes the circuit forward then backward, feeding the
    final layout of each pass in as the initial layout of the next.  The
    forward/backward dependency DAGs are built once and reset per route
    instead of reconstructed 2x per iteration; callers that already hold
    them (:func:`route_with_sabre`) can pass them in.
    """
    layout = initial_layout or _spread_layout(circuit.num_qubits, coupling, seed)
    forward = circuit.without_directives()
    backward = circuit.reversed()
    fwd = forward_dag if forward_dag is not None else DAGCircuit(forward)
    bwd = backward_dag if backward_dag is not None else DAGCircuit(backward)
    for it in range(num_iterations):
        res_f = sabre_route(forward, coupling, layout, seed=seed + 2 * it, dag=fwd)
        layout = res_f.final_layout
        res_b = sabre_route(
            backward, coupling, layout, seed=seed + 2 * it + 1, dag=bwd
        )
        layout = res_b.final_layout
    return layout


def _spread_layout(num_logical: int, coupling: CouplingMap, seed: int) -> Layout:
    """Random-but-reproducible starting layout over the device."""
    rng = np.random.default_rng(seed)
    physical = rng.permutation(coupling.num_qubits)[:num_logical]
    return Layout.from_physical_list(int(p) for p in physical)


def route_with_sabre(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout_iterations: int = 2,
    seed: int = 7,
    initial_layout: Layout | None = None,
) -> SabreResult:
    """Full SABRE pipeline: layout search then final routing pass."""
    clean = circuit.without_directives()
    fwd_dag = DAGCircuit(clean)
    if initial_layout is None:
        initial_layout = sabre_layout(
            clean,
            coupling,
            num_iterations=layout_iterations,
            seed=seed,
            forward_dag=fwd_dag,
            backward_dag=DAGCircuit(clean.reversed()),
        )
    return sabre_route(clean, coupling, initial_layout, seed=seed, dag=fwd_dag)
