"""Greedy shortest-path SWAP router (pre-SABRE generation).

Routes each front-layer two-qubit gate as soon as it is reached by swapping
one endpoint along a BFS shortest path until the pair is adjacent — no
lookahead, no extended set, no layout search.  This models the routing
quality of earlier compilers such as Baker et al.'s long-range FAA compiler
(the paper runs Baker's open-source implementation, which predates SABRE's
heuristics).
"""

from __future__ import annotations

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.coupling import CouplingMap
from .layout import Layout, dense_layout
from .sabre import SabreResult


def path_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout | None = None,
) -> SabreResult:
    """Route *circuit* by swapping along shortest paths, gate by gate."""
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit has {circuit.num_qubits} qubits, device only "
            f"{coupling.num_qubits}"
        )
    layout = (
        initial_layout or dense_layout(circuit.num_qubits, coupling)
    ).copy()
    init_layout = layout.copy()
    dag = DAGCircuit(circuit)
    out = QuantumCircuit(coupling.num_qubits, circuit.name)
    num_swaps = 0
    swap_indices: list[int] = []

    while not dag.done:
        for idx in sorted(dag.front_layer):
            g = dag.gates[idx]
            if not g.is_two_qubit:
                out.append(
                    Gate(g.name, tuple(layout.physical(q) for q in g.qubits), g.params)
                )
                dag.execute(idx)
                break
            pa, pb = layout.physical(g.qubits[0]), layout.physical(g.qubits[1])
            if not coupling.is_adjacent(pa, pb):
                path = coupling.shortest_path(pa, pb)
                # Swap the first endpoint down the path until adjacent.
                for hop in path[1:-1]:
                    out.append(Gate("swap", (pa, hop)))
                    swap_indices.append(len(out) - 1)
                    num_swaps += 1
                    layout.swap_physical(pa, hop)
                    pa = hop
            out.append(Gate(g.name, (pa, pb), g.params))
            dag.execute(idx)
            break

    return SabreResult(
        circuit=out,
        initial_layout=init_layout,
        final_layout=layout,
        num_swaps=num_swaps,
        swap_gate_indices=swap_indices,
    )
