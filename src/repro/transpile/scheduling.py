"""ASAP scheduling utilities.

Turns a routed circuit into parallel execution layers and computes the
paper's depth metric ("number of parallel two-qubit layers") plus wall-clock
execution time for the fidelity model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.gates import Gate
from ..hardware.parameters import HardwareParams


@dataclass
class Schedule:
    """ASAP layers of a circuit.

    ``layers[t]`` is the list of gates executing in parallel at step *t*.
    """

    layers: list[list[Gate]]

    @property
    def depth(self) -> int:
        return len(self.layers)

    @property
    def two_qubit_depth(self) -> int:
        """Number of layers containing at least one 2Q gate."""
        return sum(1 for layer in self.layers if any(g.is_two_qubit for g in layer))

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock time: each layer costs its slowest gate."""
        total = 0.0
        for layer in self.layers:
            t = 0.0
            for g in layer:
                t = max(t, params.t_2q if g.is_entangling else params.t_1q)
            total += t
        return total


def asap_schedule(circuit: QuantumCircuit) -> Schedule:
    """Greedy ASAP layering on the wire-dependency DAG."""
    dag = DAGCircuit(circuit)
    layers = [
        [dag.gates[i] for i in layer] for layer in dag.topological_layers()
    ]
    return Schedule(layers=layers)


def two_qubit_depth(circuit: QuantumCircuit) -> int:
    """The paper's depth metric: parallel 2Q layers only."""
    return circuit.depth(two_qubit_only=True)
