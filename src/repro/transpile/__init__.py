"""Mapping & routing substrate: layouts, SABRE, ASAP scheduling."""

from .layout import Layout, LayoutError, dense_layout
from .pathrouter import path_route
from .sabre import SabreResult, route_with_sabre, sabre_layout, sabre_route
from .scheduling import Schedule, asap_schedule, two_qubit_depth

__all__ = [
    "Layout",
    "LayoutError",
    "SabreResult",
    "Schedule",
    "asap_schedule",
    "dense_layout",
    "path_route",
    "route_with_sabre",
    "sabre_layout",
    "sabre_route",
    "two_qubit_depth",
]
