"""Logical-to-physical qubit layouts.

A :class:`Layout` is a bijection between the circuit's logical qubits and a
subset of the device's physical qubits.  Besides the trivial identity layout
we provide a *dense* layout (BFS-grown connected subgraph of maximum
degree-sum), which stands in for Qiskit's ``DenseLayout`` in the Fig. 21
ablation baseline.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..hardware.coupling import CouplingMap


class LayoutError(ValueError):
    """Raised on inconsistent layouts."""


class Layout:
    """Bidirectional logical <-> physical map."""

    def __init__(self, logical_to_physical: dict[int, int]) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise LayoutError("layout is not injective")

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        """Identity layout on ``num_qubits``."""
        return cls({q: q for q in range(num_qubits)})

    @classmethod
    def from_physical_list(cls, physical: Iterable[int]) -> "Layout":
        """Logical *i* -> ``physical[i]``."""
        return cls({i: p for i, p in enumerate(physical)})

    def physical(self, logical: int) -> int:
        """Physical qubit hosting *logical*."""
        return self._l2p[logical]

    def logical(self, physical: int) -> int | None:
        """Logical qubit at *physical*, or None if the site is empty."""
        return self._p2l.get(physical)

    def swap_physical(self, p1: int, p2: int) -> None:
        """Apply a SWAP between physical sites *p1* and *p2* in place."""
        l1, l2 = self._p2l.get(p1), self._p2l.get(p2)
        if l1 is not None:
            self._l2p[l1] = p2
        if l2 is not None:
            self._l2p[l2] = p1
        if l1 is not None:
            self._p2l[p2] = l1
        elif p2 in self._p2l:
            del self._p2l[p2]
        if l2 is not None:
            self._p2l[p1] = l2
        elif p1 in self._p2l:
            del self._p2l[p1]

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def as_dict(self) -> dict[int, int]:
        """Logical -> physical mapping as a plain dict."""
        return dict(self._l2p)

    @property
    def num_qubits(self) -> int:
        return len(self._l2p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Layout({self._l2p})"


def dense_layout(num_logical: int, coupling: CouplingMap) -> Layout:
    """Connected dense region of the device, greedily grown by degree.

    Mirrors Qiskit's DenseLayout intent: start from the highest-degree
    physical qubit and BFS-grow picking the neighbour with the most
    connections back into the chosen set.
    """
    if num_logical > coupling.num_qubits:
        raise LayoutError(
            f"circuit needs {num_logical} qubits, device has {coupling.num_qubits}"
        )
    start = max(range(coupling.num_qubits), key=coupling.degree)
    chosen = [start]
    chosen_set = {start}
    while len(chosen) < num_logical:
        frontier: set[int] = set()
        for q in chosen:
            frontier |= coupling.neighbors(q) - chosen_set
        if not frontier:
            # Disconnected device: jump to the best remaining qubit.
            rest = [q for q in range(coupling.num_qubits) if q not in chosen_set]
            best = max(rest, key=coupling.degree)
        else:
            best = max(
                frontier,
                key=lambda q: (len(coupling.neighbors(q) & chosen_set), coupling.degree(q)),
            )
        chosen.append(best)
        chosen_set.add(best)
    return Layout.from_physical_list(chosen)
