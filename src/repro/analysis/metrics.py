"""Uniform result records shared by every architecture/compiler harness.

Each compiler run — Atomique, the FAA baselines, superconducting, the solver
proxies — reduces to a :class:`CompiledMetrics` record carrying the paper's
reporting vocabulary: 2Q gate count, parallel-2Q-layer depth, fidelity
report, additional CNOTs from SWAP insertion, compile and execution times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..noise.fidelity import FidelityReport

if TYPE_CHECKING:
    from ..core.program import Program
    from ..hardware.parameters import HardwareParams


@dataclass
class CompiledMetrics:
    """One (benchmark, architecture) evaluation row."""

    benchmark: str
    architecture: str
    num_qubits: int
    num_2q_gates: int
    num_1q_gates: int
    depth: int
    fidelity: FidelityReport
    additional_cnots: int = 0
    compile_seconds: float = 0.0
    execution_seconds: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total_fidelity(self) -> float:
        return self.fidelity.total

    def row(self) -> dict[str, object]:
        """Flat dict for table printing."""
        return {
            "benchmark": self.benchmark,
            "arch": self.architecture,
            "qubits": self.num_qubits,
            "2q": self.num_2q_gates,
            "1q": self.num_1q_gates,
            "depth": self.depth,
            "fidelity": round(self.total_fidelity, 4),
            "add_cnot": self.additional_cnots,
            "compile_s": round(self.compile_seconds, 4),
            "exec_s": round(self.execution_seconds, 6),
        }


def program_aggregates(
    program: "Program", params: "HardwareParams"
) -> dict[str, float]:
    """The program-level numbers every scoring adapter reads, in one place.

    For a columnar :class:`~repro.core.program.ProgramStore` each entry is
    a column reduction over the store's cached numpy column views
    (occupancy counts via vectorized offset-table compares, distance and
    duration sums computed elementwise then accumulated in stage order, so
    the floats stay bit-identical to the scalar walk) — no stage objects
    are materialized, and a spilling store seek-reads just the columns it
    needs from its binary segments.  The legacy object representation
    computes the same values through its property walk, so adapters need
    not care which they were handed.
    """
    return {
        "num_2q_gates": program.num_2q_gates,
        "num_1q_gates": program.num_1q_gates,
        "two_qubit_depth": program.two_qubit_depth,
        "num_moves": program.num_moves,
        "execution_seconds": program.execution_time(params),
        "avg_move_distance_m": program.avg_move_distance(params),
        "total_move_distance_m": program.total_move_distance(params),
        "overlap_rejections": float(program.overlap_rejections),
        "cooling_events": float(program.num_cooling_events),
        "num_transfers": float(program.num_transfers),
    }


def geometric_mean(values: list[float], floor: float = 1e-12) -> float:
    """Geometric mean with a floor for zero entries (the paper's GMean)."""
    if not values:
        return 0.0
    logs = [math.log(max(v, floor)) for v in values]
    return math.exp(sum(logs) / len(logs))


def improvement_ratio(baseline: float, ours: float, floor: float = 1e-12) -> float:
    """``baseline / ours`` with a floor (used for depth/2Q reduction factors)."""
    return max(baseline, floor) / max(ours, floor)


def format_table(rows: list[dict[str, object]]) -> str:
    """Render rows as an aligned text table (benchmark harness output)."""
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in cols
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    lines = [header, sep]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)
