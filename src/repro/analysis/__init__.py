"""Metrics records, geometric means, and table formatting for experiments."""

from .metrics import (
    CompiledMetrics,
    format_table,
    geometric_mean,
    improvement_ratio,
)

__all__ = [
    "CompiledMetrics",
    "format_table",
    "geometric_mean",
    "improvement_ratio",
]
