"""Atomique reproduction: a quantum compiler for reconfigurable neutral atom arrays."""

__version__ = "1.0.0"
