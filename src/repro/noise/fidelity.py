"""End-to-end fidelity estimation (Sec. V-A).

``F = F_1Q * F_2Q * F_transfer * F_mov`` where ``F_mov`` multiplies the four
movement terms of Sec. IV.  Two entry points:

* :func:`estimate_raa_fidelity` — consumes a compiled :class:`RAAProgram`;
* :func:`estimate_circuit_fidelity` — consumes a routed FAA/superconducting
  circuit (no movement terms; SWAPs already expanded into the gate counts).

Both return a :class:`FidelityReport` whose ``breakdown()`` provides the
``-log(F)`` error decomposition plotted in Fig. 18's second row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit
from ..core.program import Program, ProgramStore
from ..hardware.parameters import HardwareParams
from . import movement_noise as mov


@dataclass(frozen=True)
class FidelityReport:
    """All multiplicative fidelity terms of one execution."""

    f_1q: float = 1.0
    f_2q: float = 1.0
    f_transfer: float = 1.0
    f_mov_heating: float = 1.0
    f_mov_loss: float = 1.0
    f_mov_cooling: float = 1.0
    f_mov_deco: float = 1.0

    @property
    def f_mov(self) -> float:
        """Eq. 1: product of the four movement terms."""
        return (
            self.f_mov_heating
            * self.f_mov_loss
            * self.f_mov_cooling
            * self.f_mov_deco
        )

    @property
    def total(self) -> float:
        return self.f_1q * self.f_2q * self.f_transfer * self.f_mov

    def breakdown(self) -> dict[str, float]:
        """``-log(fidelity)`` per error source (Fig. 18 bottom row)."""

        def neglog(x: float) -> float:
            if x <= 0.0:
                return float("inf")
            return -math.log(x)

        return {
            "1Q Gate": neglog(self.f_1q),
            "2Q Gate": neglog(self.f_2q),
            "Transfer": neglog(self.f_transfer),
            "Move Heating": neglog(self.f_mov_heating),
            "Move Cooling": neglog(self.f_mov_cooling),
            "Move Atom Loss": neglog(self.f_mov_loss),
            "Move Decoherence": neglog(self.f_mov_deco),
        }


def _one_qubit_term(
    num_1q: int, num_1q_layers: int, num_qubits: int, params: HardwareParams
) -> float:
    """``f1q^N1Q * exp(-T1Q/T1 * N)`` with layered cumulative time."""
    gate_term = params.f_1q**num_1q
    t_1q_total = num_1q_layers * params.t_1q
    return gate_term * math.exp(-t_1q_total / params.t1 * num_qubits)


def _two_qubit_term(
    num_2q: int, num_2q_layers: int, num_qubits: int, params: HardwareParams
) -> float:
    """``f2q^N2Q * exp(-T2Q/T1 * N)`` with layered cumulative time."""
    gate_term = params.f_2q**num_2q
    t_2q_total = num_2q_layers * params.t_2q
    return gate_term * math.exp(-t_2q_total / params.t1 * num_qubits)


def estimate_raa_fidelity(
    program: Program, params: HardwareParams
) -> FidelityReport:
    """Fidelity of a compiled RAA program (movement terms included).

    Accepts either program representation.  For a columnar
    :class:`~repro.core.program.ProgramStore` the aggregates are column
    reductions — stage-occupancy counts off the offset table and the
    ``n_vib`` column read as-is (same values, same order as the object
    walk); no stage views are materialized.
    """
    n = program.num_qubits
    if isinstance(program, ProgramStore):
        num_1q_layers = program.num_1q_stages
        num_moving = program.num_moving_stages
        # column arrays, not per-gate python floats: a dense store hands
        # over one cached numpy view, a SpillingProgramStore one array
        # per flushed binary segment (seek-read, no JSONL replay) plus
        # the in-memory tail — same values, same gate order either way
        f_heating = mov.movement_heating_fidelity_arrays(
            program.gate_n_vib_arrays(), params
        )
    else:
        num_1q_layers = sum(1 for s in program.stages if s.one_qubit_gates)
        num_moving = sum(1 for s in program.stages if s.moves)
        f_heating = mov.movement_heating_fidelity(
            [g.n_vib for s in program.stages for g in s.gates], params
        )

    f_transfer = (1.0 - params.p_transfer_loss) ** program.num_transfers
    if program.num_transfers:
        f_transfer *= math.exp(
            -program.num_transfers * params.t_transfer / params.t1 * n
        )

    return FidelityReport(
        f_1q=_one_qubit_term(program.num_1q_gates, num_1q_layers, n, params),
        f_2q=_two_qubit_term(
            program.num_2q_gates, program.two_qubit_depth, n, params
        ),
        f_transfer=f_transfer,
        f_mov_heating=f_heating,
        f_mov_loss=mov.movement_loss_fidelity(program.atom_loss_log, params),
        f_mov_cooling=mov.cooling_fidelity(program.num_cooling_cz, params),
        f_mov_deco=mov.movement_decoherence_fidelity(num_moving, n, params),
    )


def estimate_circuit_fidelity(
    circuit: QuantumCircuit,
    params: HardwareParams,
    num_qubits: int | None = None,
) -> FidelityReport:
    """Fidelity of a routed circuit on a fixed-coupling device.

    SWAPs must already be decomposed (or they count as a single 2Q gate,
    matching the caller's accounting choice).  No movement terms.
    """
    n = num_qubits if num_qubits is not None else len(circuit.active_qubits())
    n = max(n, 1)
    num_1q = circuit.num_1q_gates
    num_2q = circuit.num_2q_gates
    depth_2q = circuit.depth(two_qubit_only=True)
    # 1Q layers: total depth minus 2Q layers is a close upper bound.
    depth_all = circuit.depth()
    num_1q_layers = max(depth_all - depth_2q, 1 if num_1q else 0)
    return FidelityReport(
        f_1q=_one_qubit_term(num_1q, num_1q_layers, n, params),
        f_2q=_two_qubit_term(num_2q, depth_2q, n, params),
    )
