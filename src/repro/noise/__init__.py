"""Fidelity estimation: movement overhead (Sec. IV) + end-to-end model (Sec. V-A)."""

from .fidelity import FidelityReport, estimate_circuit_fidelity, estimate_raa_fidelity
from .movement_noise import (
    atom_loss_probability,
    cooling_fidelity,
    heating_gate_factor,
    movement_decoherence_fidelity,
    movement_heating_fidelity,
    movement_loss_fidelity,
)

__all__ = [
    "FidelityReport",
    "atom_loss_probability",
    "cooling_fidelity",
    "estimate_circuit_fidelity",
    "estimate_raa_fidelity",
    "heating_gate_factor",
    "movement_decoherence_fidelity",
    "movement_heating_fidelity",
    "movement_loss_fidelity",
]
