"""Atom-movement overhead models (Sec. IV, Eqs. 1-2).

Four multiplicative fidelity terms characterize movement:

* ``F_mov_heating`` — heating degrades each two-qubit gate in proportion to
  the pair's vibrational quantum number (Eq. 2);
* ``F_mov_loss`` — hot atoms escape the trap with an erf-model probability;
* ``F_mov_cooling`` — swapping an overheated AOD with a pre-cooled twin
  costs 2 CZ per atom;
* ``F_mov_deco`` — qubits decohere for the duration of every move.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np
from scipy.special import erf

from ..hardware.parameters import HardwareParams


def heating_gate_factor(n_vib: float, params: HardwareParams) -> float:
    """Per-gate heating fidelity factor: ``1 - lam * (1 - f2q) * n_vib``.

    Clamped at 0 — beyond that the gate is certainly lost.
    """
    val = 1.0 - params.lam * (1.0 - params.f_2q) * n_vib
    return max(val, 0.0)


def movement_heating_fidelity(
    gate_n_vibs: Sequence[float], params: HardwareParams
) -> float:
    """Eq. 2 over all executed 2Q gates.

    *gate_n_vibs* is typically a :class:`~repro.core.program.ProgramStore`
    n_vib column consumed as-is (no per-gate objects); the product runs in
    column order, which is gate execution order.
    """
    f = 1.0
    for nv in gate_n_vibs:
        f *= heating_gate_factor(nv, params)
    return f


def movement_heating_fidelity_arrays(
    chunks: Iterable[np.ndarray], params: HardwareParams
) -> float:
    """Eq. 2 over ``n_vib`` column arrays (the vectorized fast path).

    Bit-identical to :func:`movement_heating_fidelity` on the same values:
    the per-gate factor ``max(1 - (lam * (1 - f2q)) * n, 0)`` is computed
    elementwise in float64 (IEEE ops match the scalar path exactly), and
    the running product accumulates sequentially in column order.
    *chunks* lets a spilling store hand over one array per flushed
    segment without concatenating.
    """
    coef = params.lam * (1.0 - params.f_2q)
    f = 1.0
    for arr in chunks:
        factors = np.maximum(
            1.0 - coef * np.asarray(arr, dtype=np.float64), 0.0
        )
        for v in factors.tolist():
            f *= v
    return f


def atom_loss_probability(n_vib: float, params: HardwareParams) -> float:
    """Sec. IV loss model: ``1 - 0.5 (1 + erf((n_max - n) / sqrt(2 n)))``.

    Zero at ``n_vib = 0``; ~0.5 at ``n_vib = n_max``; approaches 1 beyond.
    """
    if n_vib <= 0.0:
        return 0.0
    z = (params.n_vib_max - n_vib) / math.sqrt(2.0 * n_vib)
    return 1.0 - 0.5 * (1.0 + float(erf(z)))


def movement_loss_fidelity(
    move_n_vibs: Sequence[float], params: HardwareParams
) -> float:
    """Probability no atom is lost across all (atom, move) events."""
    f = 1.0
    for nv in move_n_vibs:
        f *= 1.0 - atom_loss_probability(nv, params)
    return f


def cooling_fidelity(num_cooling_cz: int, params: HardwareParams) -> float:
    """Fidelity cost of cooling swaps: ``f2q ** (2 * N_AOD)`` per event."""
    return params.f_2q**num_cooling_cz


def movement_decoherence_fidelity(
    num_moving_stages: int, num_qubits: int, params: HardwareParams
) -> float:
    """``prod_i exp(-N * T_mov / T1)`` over stages with movement."""
    exponent = -num_moving_stages * num_qubits * params.t_per_move / params.t1
    return math.exp(exponent)
