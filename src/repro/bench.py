"""Router compile-speed benchmark harness (``python -m repro bench --perf``).

Times end-to-end routing (:meth:`HighParallelismRouter.route`) on the
Table II generator suite at 50+ qubit scale and writes ``BENCH_router.json``
so successive PRs can track the compile-time trajectory.

Each entry runs the full pipeline once (array mapping, SABRE, atom mapping)
to obtain the transpiled circuit and locations, then times the router alone
with a min-of-N protocol (N repeats, best wall-clock kept) — the router is
the compile-time hot path this harness guards.

``SEED_ROUTER_SECONDS`` records the pre-refactor (seed) router under the
same protocol on the reference dev machine, so the emitted speedups compare
the incremental constraint engine against the snapshot/rebuild baseline.
On other machines the absolute times shift but the ratios stay indicative;
re-baseline by rerunning the seed commit with this same protocol.
"""

from __future__ import annotations

import datetime
import json
import os
import statistics
import subprocess
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

DEFAULT_OUTPUT = "BENCH_router.json"

#: Every ``--perf`` run appends one timestamped record here (commit,
#: machine fingerprint, per-workload timings) — the snapshot view in
#: ``BENCH_router.json`` keeps only the latest run, the trajectory file
#: accumulates the history.  Resolved relative to the report's directory.
TRAJECTORY_RELPATH = Path("benchmarks") / "results" / "trajectory.jsonl"

#: Seed-router wall-clock (seconds, min-of-9) measured at the seed commit
#: with this file's protocol on the reference dev machine.
SEED_ROUTER_SECONDS: dict[str, float] = {
    "QAOA-rand-50": 0.203912,
    "QAOA-rand-100": 1.223197,
    "QAOA-rand-200": 7.205349,
    "QAOA-regu5-40": 0.020069,
    "QAOA-regu6-100": 0.101698,
    "QAOA-regu6-200": 0.526207,
    "QSim-rand-40": 0.047898,
    "QSim-rand-50": 0.051641,
    "QSim-rand-100": 0.133746,
    "BV-50": 0.002050,
    "BV-70": 0.003270,
}

#: Emission-phase wall-clock (seconds, min-of-N) at the PR 4 commit — the
#: object-graph emitter this PR's columnar ProgramStore replaced.  The
#: window is the router's *record-keeping* blocks only: Raman-pulse /
#: Move / RydbergGate / cooling record creation, the heating+loss history,
#: and the stage close — constraint search and DAG bookkeeping (front
#: scans, ``execute``) excluded.  Measured on the reference dev machine by
#: instrumenting the pre-columnar route() with this exact window; the
#: current router reports the same window as ``ProgramStore.emit_seconds``.
PR3_EMIT_SECONDS: dict[str, float] = {
    "QAOA-rand-50": 0.014784,
    "QAOA-rand-100": 0.068051,
    "QAOA-rand-200": 0.400269,
    "QAOA-regu5-40": 0.001658,
    "QAOA-regu6-100": 0.006731,
    "QAOA-regu6-200": 0.019950,
    "QSim-rand-40": 0.006440,
    "QSim-rand-50": 0.008218,
    "QSim-rand-100": 0.021240,
    "BV-50": 0.000430,
    "BV-70": 0.000603,
}

#: SABRE pass wall-clock at the PR 2 commit (the pre-incremental-scoring
#: baseline, from that revision's BENCH_router.json ``pass_seconds``), so
#: the SABRE trajectory is tracked alongside the router's.
PR2_SABRE_SECONDS: dict[str, float] = {
    "QAOA-rand-50": 0.149801,
    "QAOA-rand-100": 1.074444,
    "QAOA-rand-200": 8.758710,
    "QAOA-regu5-40": 0.018411,
    "QAOA-regu6-100": 0.265486,
    "QAOA-regu6-200": 1.746363,
    "QSim-rand-40": 0.023431,
    "QSim-rand-50": 0.042937,
    "QSim-rand-100": 0.223162,
    "BV-50": 0.021422,
    "BV-70": 0.054201,
}


#: Router wall-clock (seconds, this file's protocol) at the PR 6 commit
#: (router unchanged since PR 5) — the pre-pruning router this PR's
#: index-side candidate pruning, vectorized batch probe, and 1Q worklist
#: are measured against.  Re-measured at the PR 6 commit on the current
#: reference machine because the machine slowed ~1.35x after the original
#: PR 5 recording (that recording's QAOA-rand-200 was 0.864s; the same
#: commit now measures 1.164s), so only a same-host re-baseline keeps
#: ``probe_speedup_vs_pr5`` honest.  On other machines the absolute times
#: shift but the ratio stays indicative (re-baseline by rerunning the
#: PR 6 commit with this protocol).
PR5_ROUTER_SECONDS: dict[str, float] = {
    "QAOA-rand-50": 0.048724,
    "QAOA-rand-100": 0.226216,
    "QAOA-rand-200": 1.163988,
    "QAOA-regu5-40": 0.012216,
    "QAOA-regu6-100": 0.025022,
    "QAOA-regu6-200": 0.090958,
    "QSim-rand-40": 0.014162,
    "QSim-rand-50": 0.017198,
    "QSim-rand-100": 0.054281,
    "BV-50": 0.001225,
    "BV-70": 0.001385,
}


def codec_timings(program, repeats: int = 3) -> dict:
    """Min-of-N encode+decode wall-clock of both program codecs.

    ``v2`` is the JSON text round trip (``program_to_dict`` → ``dumps`` →
    ``loads`` → ``program_from_dict``); ``v3`` the binary columnar round
    trip (:func:`repro.core.binformat.encode_program` / ``decode_program``).
    Both sides decode all the way back to a live store, so the ratio is
    the end-to-end result-path cost a service transfer pays.
    """
    from .core import binformat
    from .core.serialize import program_from_dict, program_to_dict

    best_v2 = best_v3 = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        text = json.dumps(program_to_dict(program, columnar=True))
        program_from_dict(json.loads(text))
        best_v2 = min(best_v2, time.perf_counter() - t0)
        t0 = time.perf_counter()
        binformat.decode_program(binformat.encode_program(program))
        best_v3 = min(best_v3, time.perf_counter() - t0)
    return {
        "v2": round(best_v2, 6),
        "v3": round(best_v3, 6),
        "speedup": round(best_v2 / best_v3, 3) if best_v3 else None,
    }


def _machine_fingerprint() -> dict:
    import platform

    return {
        "host": platform.node(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def _git_commit() -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def append_trajectory(report: dict, output: Path) -> Path | None:
    """Append one timestamped record of *report* to the trajectory file.

    The record carries the commit, a machine fingerprint, the report's
    median speedups, and the per-workload timing columns — enough to
    reconstruct every trajectory plot without keeping old snapshots.
    Returns the path written, or None when the append failed (a perf run
    must not die on a read-only checkout)."""
    path = output.resolve().parent / TRAJECTORY_RELPATH
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": _git_commit(),
        "machine": _machine_fingerprint(),
        "medians": {
            key: value
            for key, value in report.items()
            if key.startswith("median_")
        },
        "workloads": {
            row["name"]: {
                "router_seconds": row["router_seconds"],
                "emit_seconds": row["emit_seconds"],
                "probe_seconds": row["probe_seconds"],
                "sabre_seconds": row["sabre_seconds"],
                "codec_seconds": row["codec_seconds"],
            }
            for row in report["results"]
        },
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
    except OSError:
        return None
    return path


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark entry: display name and a circuit factory."""

    name: str
    factory: Callable[[], "object"]
    repeats: int = 5


def bench_suite() -> list[BenchSpec]:
    """The 50+ qubit Table II generator suite (plus scaled-up instances)."""
    from .generators import qaoa_random, qaoa_regular, qsim_random
    from .generators.algorithms import bernstein_vazirani

    # Sub-10ms workloads run min-of-9 — their emission window is
    # sub-millisecond, so min-of-5 is noise-bound — matching the protocol
    # the seed router baseline itself was recorded with (min-of-9), so
    # speedup_vs_seed stays apples-to-apples.  The PR 3 emission baselines
    # for these entries were recorded with >= as many repeats (min-of-9 or
    # min-of-15), which can only understate emit_speedup_vs_pr3.
    return [
        BenchSpec("QAOA-rand-50", lambda: qaoa_random(50, seed=50)),
        BenchSpec("QAOA-rand-100", lambda: qaoa_random(100, seed=100), repeats=3),
        BenchSpec("QAOA-rand-200", lambda: qaoa_random(200, seed=200), repeats=2),
        BenchSpec("QAOA-regu5-40", lambda: qaoa_regular(40, 5, seed=40), repeats=9),
        BenchSpec("QAOA-regu6-100", lambda: qaoa_regular(100, 6, seed=100)),
        BenchSpec(
            "QAOA-regu6-200", lambda: qaoa_regular(200, 6, seed=200), repeats=3
        ),
        BenchSpec("QSim-rand-40", lambda: qsim_random(40, seed=40), repeats=9),
        BenchSpec("QSim-rand-50", lambda: qsim_random(50, seed=50), repeats=9),
        BenchSpec("QSim-rand-100", lambda: qsim_random(100, seed=100), repeats=3),
        BenchSpec("BV-50", lambda: bernstein_vazirani(50), repeats=9),
        BenchSpec("BV-70", lambda: bernstein_vazirani(70), repeats=9),
    ]


def bench_router(
    specs: list[BenchSpec] | None = None,
    output: str | Path | None = DEFAULT_OUTPUT,
) -> dict:
    """Run the router benchmark; return (and optionally write) the report."""
    from .core import AtomiqueCompiler, AtomiqueConfig
    from .core.router import HighParallelismRouter
    from .experiments import raa_for

    specs = specs if specs is not None else bench_suite()
    rows = []
    for spec in specs:
        circuit = spec.factory()
        raa = raa_for(circuit)
        compiler = AtomiqueCompiler(raa, AtomiqueConfig(seed=7))
        result = compiler.compile(circuit)
        best = float("inf")
        best_emit = float("inf")
        best_probe = float("inf")
        for _ in range(max(1, spec.repeats)):
            # A fresh router per repeat, constructed inside the timed
            # region, keeps every measurement cold: the router now persists
            # its location-epoch caches (site cache, LocationIndex) across
            # route() calls, while the recorded seed baseline rebuilt them
            # per call.  Timing construction too is slightly conservative.
            t0 = time.perf_counter()
            router = HighParallelismRouter(
                result.architecture, result.locations, compiler.config.router
            )
            program = router.route(result.transpiled)
            best = min(best, time.perf_counter() - t0)
            best_emit = min(best_emit, program.emit_seconds)
            best_probe = min(best_probe, program.probe_seconds)
        codec = codec_timings(program)
        seed_s = SEED_ROUTER_SECONDS.get(spec.name)
        pr5_router = PR5_ROUTER_SECONDS.get(spec.name)
        sabre_s = result.pass_seconds.get("sabre_swap")
        pr2_sabre = PR2_SABRE_SECONDS.get(spec.name)
        pr3_emit = PR3_EMIT_SECONDS.get(spec.name)
        rows.append(
            {
                "name": spec.name,
                "qubits": circuit.num_qubits,
                "stages": len(program.stages),
                "two_qubit_gates": program.num_2q_gates,
                "router_seconds": round(best, 6),
                "seed_router_seconds": seed_s,
                "speedup_vs_seed": round(seed_s / best, 3) if seed_s else None,
                # constraint-probe trajectory: the router's candidate-probe
                # window (ProgramStore.probe_seconds: the _select_gates
                # place_pair scan), plus the whole-router-pass speedup over
                # the pre-pruning PR 5/6 recording
                "probe_seconds": round(best_probe, 6),
                "pr5_router_seconds": pr5_router,
                "probe_speedup_vs_pr5": (
                    round(pr5_router / best, 3) if pr5_router else None
                ),
                # emission-phase trajectory: the router's record-keeping
                # window (ProgramStore.emit_seconds) vs the PR 3/4-era
                # object-graph emitter measured with the same window
                "emit_seconds": round(best_emit, 6),
                "pr3_emit_seconds": pr3_emit,
                "emit_speedup_vs_pr3": (
                    round(pr3_emit / best_emit, 3)
                    if best_emit and pr3_emit
                    else None
                ),
                # SABRE trajectory: one full-pipeline compile, vs the PR 2
                # (pre-incremental-scoring) recording of the same pass
                "sabre_seconds": round(sabre_s, 6) if sabre_s else None,
                "pr2_sabre_seconds": pr2_sabre,
                "sabre_speedup_vs_pr2": (
                    round(pr2_sabre / sabre_s, 3) if sabre_s and pr2_sabre else None
                ),
                # program-codec trajectory: min-of-N encode+decode round
                # trip of this workload's compiled program, JSON v2 vs
                # binary columnar v3 (both back to a live store)
                "codec_seconds": codec,
                # one full-pipeline compile, per-pass (pipeline instrumentation)
                "pass_seconds": {
                    name: round(seconds, 6)
                    for name, seconds in result.pass_seconds.items()
                },
            }
        )
    speedups = [r["speedup_vs_seed"] for r in rows if r["speedup_vs_seed"]]
    sabre_speedups = [
        r["sabre_speedup_vs_pr2"] for r in rows if r["sabre_speedup_vs_pr2"]
    ]
    emit_speedups = [
        r["emit_speedup_vs_pr3"] for r in rows if r["emit_speedup_vs_pr3"]
    ]
    probe_speedups = [
        r["probe_speedup_vs_pr5"] for r in rows if r["probe_speedup_vs_pr5"]
    ]
    codec_speedups = [
        r["codec_seconds"]["speedup"]
        for r in rows
        if r["codec_seconds"]["speedup"]
    ]
    report = {
        "protocol": "min wall-clock over N repeats of cold router "
        "construction + route() on the pre-transpiled circuit (a fresh "
        "router per repeat — the router caches location-epoch artifacts "
        "across calls since PR 3); seed baseline measured identically at "
        "the seed commit; sabre_seconds is the SABRE pass of one "
        "full-pipeline compile vs the PR 2 recording; emit_seconds is the "
        "router's record-keeping window (ProgramStore.emit_seconds: pulse/"
        "move/gate/cooling record emission + heating/loss history + stage "
        "close, DAG bookkeeping and constraint search excluded) vs the "
        "object-graph emitter measured with the same window at PR 4; "
        "probe_seconds is the candidate-probe window (the _select_gates "
        "place_pair scan) and probe_speedup_vs_pr5 the whole-router-pass "
        "speedup over the pre-pruning PR 5/6 recording; codec_seconds is "
        "the min-of-N encode+decode round trip of the compiled program, "
        "JSON v2 (dumps+loads via program_to_dict/from_dict) vs binary "
        "columnar v3 (binformat.encode_program/decode_program), both "
        "decoding back to a live store",
        "median_speedup_vs_seed": (
            round(statistics.median(speedups), 3) if speedups else None
        ),
        "median_sabre_speedup_vs_pr2": (
            round(statistics.median(sabre_speedups), 3) if sabre_speedups else None
        ),
        "median_emit_speedup_vs_pr3": (
            round(statistics.median(emit_speedups), 3) if emit_speedups else None
        ),
        "median_probe_speedup_vs_pr5": (
            round(statistics.median(probe_speedups), 3) if probe_speedups else None
        ),
        "median_codec_speedup": (
            round(statistics.median(codec_speedups), 3) if codec_speedups else None
        ),
        "results": rows,
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
        append_trajectory(report, Path(output))
    return report


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`bench_router` report."""
    lines = [
        f"{'benchmark':18s} {'qubits':>6s} {'stages':>6s} "
        f"{'router ms':>10s} {'seed ms':>9s} {'speedup':>8s} "
        f"{'sabre ms':>9s} {'vs PR2':>8s} {'emit ms':>8s} {'vs PR3':>8s} "
        f"{'probe ms':>9s} {'vs PR5':>8s}"
    ]
    for r in report["results"]:
        seed_ms = (
            f"{r['seed_router_seconds'] * 1e3:9.1f}"
            if r["seed_router_seconds"]
            else "      n/a"
        )
        speedup = (
            f"{r['speedup_vs_seed']:7.2f}x" if r["speedup_vs_seed"] else "     n/a"
        )
        sabre_ms = (
            f"{r['sabre_seconds'] * 1e3:9.1f}" if r.get("sabre_seconds") else "      n/a"
        )
        sabre_speedup = (
            f"{r['sabre_speedup_vs_pr2']:7.2f}x"
            if r.get("sabre_speedup_vs_pr2")
            else "     n/a"
        )
        emit_ms = (
            f"{r['emit_seconds'] * 1e3:8.2f}" if r.get("emit_seconds") else "     n/a"
        )
        emit_speedup = (
            f"{r['emit_speedup_vs_pr3']:7.2f}x"
            if r.get("emit_speedup_vs_pr3")
            else "     n/a"
        )
        probe_ms = (
            f"{r['probe_seconds'] * 1e3:9.2f}"
            if r.get("probe_seconds") is not None
            else "      n/a"
        )
        probe_speedup = (
            f"{r['probe_speedup_vs_pr5']:7.2f}x"
            if r.get("probe_speedup_vs_pr5")
            else "     n/a"
        )
        lines.append(
            f"{r['name']:18s} {r['qubits']:6d} {r['stages']:6d} "
            f"{r['router_seconds'] * 1e3:10.1f} {seed_ms} {speedup} "
            f"{sabre_ms} {sabre_speedup} {emit_ms} {emit_speedup} "
            f"{probe_ms} {probe_speedup}"
        )
    lines.append(f"median speedup vs seed: {report['median_speedup_vs_seed']}x")
    lines.append(
        "median sabre speedup vs PR2: "
        f"{report['median_sabre_speedup_vs_pr2']}x"
    )
    lines.append(
        "median emit speedup vs PR3: "
        f"{report['median_emit_speedup_vs_pr3']}x"
    )
    lines.append(
        "median router speedup vs PR5: "
        f"{report['median_probe_speedup_vs_pr5']}x"
    )
    lines.append(
        "median codec speedup (binary v3 vs JSON v2): "
        f"{report['median_codec_speedup']}x"
    )
    return "\n".join(lines)
