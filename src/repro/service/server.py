"""The compile-service daemon: an async front-end over ``compile_many``'s
job model.

:class:`CompileService` owns a persistent :class:`~repro.service.queue.JobQueue`
and a set of *shards*.  Each shard is one worker process (a single-process
``ProcessPoolExecutor``) fed by its own asyncio dispatcher, and keeps a
long-lived pipeline prefix cache installed by
:func:`repro.experiments.batch.init_worker_prefix_cache` — jobs that agree
on a (circuit, architecture) prefix are routed to the same shard, so the
in-memory layer hits across jobs of one run, and the disk layer
(:class:`~repro.core.pipeline.DiskPipelineCache`, shared directory) hits
across daemon restarts.  An optional :class:`ResultCache` short-circuits
whole jobs the service has compiled before.

Fault tolerance (see docs/ARCHITECTURE.md "Failure model"):

- A dispatched job holds a **lease** (:meth:`JobQueue.acquire`), extended
  by a heartbeat task while the attempt runs; a lease-reaper requeues
  jobs whose lease expired because a dispatcher lost track of them.
- A worker-process crash (``BrokenProcessPool``) is contained to its
  shard: the pool and its prefix cache are rebuilt, the in-flight job is
  retried, and a poison job that keeps killing its worker dead-letters
  as FAILED once its attempts reach ``max_retries``.
- Per-job **timeouts** (pool mode) kill the stuck worker, rebuild the
  shard, and charge the attempt; per-job ``max_retries`` bounds every
  retry path.
- Infrastructure failures retry; deterministic compile errors (the job
  itself raising) fail immediately — retrying a deterministic failure
  can only waste attempts.

``inline=True`` executes jobs in the server process instead of worker
pools — deterministic single-process mode for tests and tiny deployments;
results are identical either way because compiles are seeded and
deterministic.  Timeouts are not preemptive inline (nothing can interrupt
the in-process compile).

:class:`ServiceServer` exposes the service over a JSON-lines socket
protocol (one request object per line, one response per line), Unix or
TCP.  ``python -m repro serve`` boots the pair; see
:mod:`repro.service.client` for the matching client.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path
from typing import Any

from ..baselines.registry import available_backends, get_backend
from ..core.pipeline import (
    DiskPipelineCache,
    PipelineCache,
    _architecture_fingerprint,
    _circuit_fingerprint,
)
from ..experiments import batch
from ..experiments.batch import CompileJob, ResultCache
from ..hardware.raa import RAAArchitecture
from . import faults
from .queue import JobQueue, JobState, QueueError
from .wire import (
    WIRE_GZIP_ENCODING,
    WireError,
    decode_job,
    decode_job_control,
    decode_line,
    decode_metrics,
    encode_line,
    encode_metrics,
)

log = logging.getLogger("repro.service")

#: Default lease duration; heartbeats land every third of this, so a
#: healthy attempt can miss two heartbeats before the reaper acts.
DEFAULT_LEASE_SECONDS = 30.0


class ServiceError(RuntimeError):
    """A request the service must reject (unknown backend, bad payload,
    submission after draining started)."""


class _RetryableJobError(RuntimeError):
    """An infrastructure failure of one attempt (crash/timeout): the job
    itself may be fine, so it goes through the retry budget rather than
    failing outright."""


def _prefix_shard(job: CompileJob, shards: int) -> int:
    """Stable shard for *job*: jobs sharing a pipeline prefix co-locate.

    Keyed exactly like the head of every :class:`PipelineCache` key —
    (circuit fingerprint, architecture fingerprint) — so a sweep over one
    circuit lands on one shard and reuses its warm prefix cache.
    """
    arch = job.options.raa or RAAArchitecture.default()
    digest = hashlib.sha256(
        f"{_circuit_fingerprint(job.circuit)}|"
        f"{_architecture_fingerprint(arch)}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") % shards


def _execute_wire_job(payload: dict[str, Any], attempt: int = 0) -> dict[str, Any]:
    """Decode, compile, and re-encode one job (runs inside a shard worker).

    Module-level so ``ProcessPoolExecutor`` can pickle it; the worker's
    prefix cache (installed by the pool initializer) is injected by
    :func:`repro.experiments.batch.with_worker_prefix_cache` inside
    ``batch._run_job``.  The fault-injection context includes the attempt
    number so chaos plans can target "only the first attempt of job X".
    """
    job = decode_job(payload)
    context = f"{job.backend}:{job.circuit.name}#a{attempt}"
    faults.maybe_exit("worker.crash", context)
    faults.maybe_sleep("job.slow", context)
    return encode_metrics(batch._run_job(job))


class CompileService:
    """Job submission/status/result orchestration over sharded workers."""

    def __init__(
        self,
        spool_dir: str | Path | None = None,
        shards: int = 2,
        prefix_cache_dir: str | Path | None = None,
        result_cache_dir: str | Path | None = None,
        inline: bool = False,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        fault_plan: "faults.FaultPlan | str | dict[str, Any] | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.shards = shards
        self.inline = inline
        self.lease_seconds = lease_seconds
        self.fault_plan = faults.FaultPlan.coerce(fault_plan)
        self.queue = JobQueue(spool_dir)
        self._owner = f"daemon-{os.getpid()}"
        self._prefix_cache_dir = (
            str(prefix_cache_dir) if prefix_cache_dir is not None else None
        )
        self._result_cache = (
            ResultCache(result_cache_dir) if result_cache_dir is not None else None
        )
        self._shard_queues: list[asyncio.Queue[str]] = []
        self._pools: list[ProcessPoolExecutor] = []
        #: inline mode: one long-lived prefix cache per shard, mirroring
        #: what the pool initializer builds inside each worker process
        self.shard_caches: list[PipelineCache] = []
        self._dispatchers: list[asyncio.Task[None]] = []
        self._reaper: asyncio.Task[None] | None = None
        self._events: dict[str, asyncio.Event] = {}
        self._inflight: dict[str, asyncio.Future[Any]] = {}
        self._accepting = True
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        fault_spec = (
            self.fault_plan.to_spec() if self.fault_plan is not None else None
        )
        # spawn, not fork: a forked worker inherits the daemon's listening
        # socket, so after a daemon hard-kill the orphaned worker keeps the
        # old listener alive and silently black-holes client connects meant
        # for the replacement daemon.
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=batch.init_worker_prefix_cache,
            initargs=(self._prefix_cache_dir, fault_spec),
        )

    async def start(self) -> None:
        """Spin up shard queues/workers and re-dispatch spooled jobs."""
        if self._started:
            return
        self._started = True
        if self.fault_plan is not None:
            faults.install(self.fault_plan)
        self._shard_queues = [asyncio.Queue() for _ in range(self.shards)]
        if self.inline:
            self.shard_caches = [
                DiskPipelineCache(self._prefix_cache_dir)
                if self._prefix_cache_dir is not None
                else PipelineCache()
                for _ in range(self.shards)
            ]
        else:
            self._pools = [self._make_pool() for _ in range(self.shards)]
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard))
            for shard in range(self.shards)
        ]
        self._reaper = asyncio.create_task(self._reap_expired_leases())
        # Jobs spooled by a previous daemon: PENDING (including interrupted
        # RUNNING ones, already demoted by the queue's loader) re-enqueue;
        # jobs the loader dead-lettered just need their waiter event.
        for record in self.queue.jobs():
            if record.state is JobState.PENDING:
                self._events[record.job_id] = asyncio.Event()
                self._shard_queues[record.shard % self.shards].put_nowait(
                    record.job_id
                )

    async def drain(self) -> int:
        """Stop accepting, finish everything queued, shut workers down.

        Returns the number of jobs that reached a terminal state during
        the drain.  Idempotent; the service cannot be restarted after."""
        self._accepting = False
        in_flight = sum(
            1 for r in self.queue.jobs() if not r.state.terminal
        )
        for q in self._shard_queues:
            await q.join()
        await self.aclose()
        return in_flight

    async def aclose(self) -> None:
        """Tear down dispatchers and worker pools (no waiting for jobs)."""
        self._accepting = False
        tasks = list(self._dispatchers)
        if self._reaper is not None:
            tasks.append(self._reaper)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        self._reaper = None
        for pool in self._pools:
            # Kill workers still computing (e.g. a cancelled job's
            # attempt): their results are discarded anyway, and a live
            # worker would block interpreter exit until it finishes.
            victims = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in victims:
                try:
                    proc.kill()
                except Exception:
                    pass
        self._pools = []

    # -- job APIs ------------------------------------------------------------

    async def submit(
        self,
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
        job_key: str | None = None,
    ) -> str:
        """Validate and enqueue a wire-encoded job; returns its id.

        Validation happens here, not on the worker: an unknown backend or
        a malformed circuit fails the *submission*, with the registry's
        known-backends message, instead of producing a FAILED job later.

        With a *job_key*, submission is idempotent: a key the queue has
        already seen returns the existing job's id without enqueuing
        anything, so a client may safely resubmit after a lost response.
        """
        if not self._started:
            await self.start()
        if job_key is not None:
            existing = self.queue.by_key(job_key)
            if existing is not None:
                return existing.job_id
        if not self._accepting:
            raise ServiceError("service is draining; submissions are closed")
        try:
            job = decode_job(payload)
            get_backend(job.backend)  # raises with the known-backends list
        except (WireError, ValueError) as exc:
            raise ServiceError(str(exc)) from exc
        shard = _prefix_shard(job, self.shards)
        record = self.queue.submit(
            payload,
            shard=shard,
            job_key=job_key,
            timeout=timeout,
            max_retries=max_retries,
        )
        self._events[record.job_id] = asyncio.Event()
        hit = self._result_cache.get(job) if self._result_cache else None
        if hit is not None:
            self.queue.mark_done(record.job_id, encode_metrics(hit))
            self._events[record.job_id].set()
        else:
            self._shard_queues[shard].put_nowait(record.job_id)
        return record.job_id

    def status(self, job_id: str) -> dict[str, Any]:
        try:
            return self.queue.get(job_id).summary()
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc

    async def result(
        self, job_id: str, wait: bool = False, timeout: float | None = None
    ) -> dict[str, Any]:
        """The wire-encoded metrics of a finished job.

        ``wait=True`` blocks until the job reaches a terminal state (or
        *timeout* seconds pass).  FAILED and CANCELLED jobs raise with the
        recorded error."""
        try:
            record = self.queue.get(job_id)
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc
        if wait and not record.state.terminal:
            event = self._events.get(job_id)
            if event is not None:
                try:
                    await asyncio.wait_for(event.wait(), timeout)
                except asyncio.TimeoutError:
                    raise ServiceError(
                        f"timed out waiting for {job_id} "
                        f"(state={record.state.value})"
                    ) from None
        if record.state is JobState.DONE:
            payload = self.queue.load_result(job_id)
            if payload is None:
                raise ServiceError(f"result of {job_id} is missing from spool")
            return payload
        if record.state is JobState.FAILED:
            raise ServiceError(
                f"job {job_id} failed after {record.attempts} attempt(s): "
                f"{record.error}"
            )
        if record.state is JobState.CANCELLED:
            raise ServiceError(f"job {job_id} was cancelled")
        raise ServiceError(
            f"job {job_id} is not finished (state={record.state.value})"
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING or RUNNING job.

        A RUNNING job's lease is revoked and its in-flight future is
        cancelled best-effort — a worker-process compile cannot be
        interrupted mid-flight, so the attempt may run to completion, but
        its result is discarded and the job stays CANCELLED."""
        try:
            cancelled = self.queue.cancel(job_id)
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc
        if cancelled:
            future = self._inflight.get(job_id)
            if future is not None:
                future.cancel()
            event = self._events.get(job_id)
            if event is not None:
                event.set()
        return cancelled

    def jobs(self) -> list[dict[str, Any]]:
        return [r.summary() for r in self.queue.jobs()]

    def stats(self) -> dict[str, Any]:
        counts: dict[str, int] = {s.value: 0 for s in JobState}
        per_shard = [0] * self.shards
        retried = dead_lettered = 0
        for record in self.queue.jobs():
            counts[record.state.value] += 1
            per_shard[record.shard % self.shards] += 1
            if record.attempts > 1:
                retried += 1
            if record.state is JobState.FAILED:
                dead_lettered += 1
        return {
            "shards": self.shards,
            "inline": self.inline,
            "accepting": self._accepting,
            "owner": self._owner,
            "lease_seconds": self.lease_seconds,
            "jobs": counts,
            "jobs_per_shard": per_shard,
            "retried_jobs": retried,
            "dead_lettered": dead_lettered,
            "quarantined_spool_files": len(self.queue.quarantined),
            "prefix_cache_dir": self._prefix_cache_dir,
            "backends": available_backends(),
            "faults": (
                self.fault_plan.to_spec() if self.fault_plan is not None else None
            ),
        }

    # -- execution -----------------------------------------------------------

    async def _dispatch(self, shard: int) -> None:
        queue = self._shard_queues[shard]
        while True:
            job_id = await queue.get()
            try:
                await self._run_one(job_id, shard)
            except asyncio.CancelledError:
                raise
            except Exception:
                # Bookkeeping failed (e.g. the spool directory went
                # read-only or full).  The dispatcher must outlive any
                # single job, or every later job on this shard strands in
                # PENDING; record the failure if the spool lets us.
                log.exception(
                    "shard %d: bookkeeping failure while running %s",
                    shard,
                    job_id,
                )
                try:
                    self.queue.mark_failed(
                        job_id, traceback.format_exc(limit=8)
                    )
                except Exception:
                    log.exception(
                        "shard %d: could not record the failure of %s — "
                        "the job stays in its last spooled state",
                        shard,
                        job_id,
                    )
                self._finish(job_id)
            finally:
                queue.task_done()

    async def _heartbeat(self, job_id: str) -> None:
        interval = max(self.lease_seconds / 3.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            if not self.queue.heartbeat(job_id, self.lease_seconds):
                return  # job left RUNNING (cancelled/reaped): stop beating

    async def _reap_expired_leases(self) -> None:
        """Requeue (or dead-letter) RUNNING jobs whose lease expired.

        With healthy dispatchers the heartbeat keeps leases alive and this
        never fires; it is the backstop for a dispatcher that died or a
        daemon that froze past its lease, and the hook multi-daemon
        deployments need to steal work from a dead peer."""
        interval = max(self.lease_seconds / 2.0, 0.1)
        while True:
            await asyncio.sleep(interval)
            for record in self.queue.expired_leases():
                log.warning(
                    "lease expired for %s (owner %s, attempt %d/%d)",
                    record.job_id,
                    record.owner,
                    record.attempts,
                    record.max_retries,
                )
                state = self.queue.retry_or_fail(
                    record.job_id,
                    f"lease expired after {self.lease_seconds}s "
                    f"(owner {record.owner})",
                )
                if state is JobState.PENDING:
                    self._shard_queues[record.shard % self.shards].put_nowait(
                        record.job_id
                    )
                else:
                    self._finish(record.job_id)

    def _finish(self, job_id: str) -> None:
        event = self._events.get(job_id)
        if event is not None:
            event.set()

    def _rebuild_shard(self, shard: int, kill: bool = False) -> None:
        """Replace a shard's worker pool (crash containment / timeout).

        ``kill=True`` terminates worker processes still running (a timed-
        out job's worker keeps computing otherwise); the fresh pool
        rebuilds its prefix cache from the shared disk directory, so only
        the in-memory layer is lost."""
        if self.inline:
            return
        pool = self._pools[shard]
        victims = (
            list((getattr(pool, "_processes", None) or {}).values())
            if kill
            else []
        )
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in victims:
            try:
                proc.kill()
            except Exception:
                pass
        self._pools[shard] = self._make_pool()
        log.warning("shard %d: worker pool rebuilt (kill=%s)", shard, kill)

    async def _execute(self, record: Any, shard: int) -> dict[str, Any]:
        """Run one attempt, translating infrastructure failures into
        :class:`_RetryableJobError` for the retry path."""
        if self.inline:
            job = decode_job(record.payload)
            context = f"{job.backend}:{job.circuit.name}#a{record.attempts}"
            faults.maybe_sleep("job.slow", context)
            return self._execute_inline(record.payload, shard)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._pools[shard], _execute_wire_job, record.payload, record.attempts
        )
        self._inflight[record.job_id] = future
        try:
            if record.timeout is not None:
                return await asyncio.wait_for(future, record.timeout)
            return await future
        except asyncio.TimeoutError:
            self._rebuild_shard(shard, kill=True)
            raise _RetryableJobError(
                f"attempt {record.attempts} timed out after {record.timeout}s "
                f"(worker killed, shard {shard} pool rebuilt)"
            ) from None
        except BrokenProcessPool:
            self._rebuild_shard(shard)
            raise _RetryableJobError(
                f"attempt {record.attempts} crashed its worker "
                f"(BrokenProcessPool; shard {shard} pool rebuilt)"
            ) from None
        finally:
            self._inflight.pop(record.job_id, None)

    async def _run_one(self, job_id: str, shard: int) -> None:
        record = self.queue.get(job_id)
        if record.state is not JobState.PENDING:
            return  # cancelled while queued, or a duplicate enqueue
        self.queue.acquire(
            job_id, owner=self._owner, lease_seconds=self.lease_seconds
        )
        attempt = record.attempts
        beat = asyncio.create_task(self._heartbeat(job_id))
        try:
            encoded = await self._execute(record, shard)
        except asyncio.CancelledError:
            # Job-level cancellation (cancel() revoked the lease and
            # cancelled the in-flight future) and dispatcher-task
            # cancellation (aclose()) both land here; a task cancel must
            # propagate even when the job was also cancelled, or the
            # dispatcher swallows it and aclose() waits forever.
            task = asyncio.current_task()
            dying = task is not None and task.cancelling()
            if self.queue.get(job_id).state is not JobState.CANCELLED:
                # Hand the attempt back uncharged: on shutdown the next
                # daemon re-runs it from the spool; otherwise (the future
                # was cancelled out from under us) re-enqueue it here.
                self.queue.requeue(job_id, refund_attempt=True)
                if not dying:
                    self._shard_queues[shard].put_nowait(job_id)
            if dying:
                raise
            return
        except _RetryableJobError as exc:
            log.warning("job %s: %s", job_id, exc)
            state = self.queue.retry_or_fail(job_id, str(exc))
            if state is JobState.PENDING:
                self._shard_queues[shard].put_nowait(job_id)
            else:
                log.error(
                    "job %s dead-lettered after %d attempt(s): %s",
                    job_id,
                    self.queue.get(job_id).attempts,
                    exc,
                )
                self._finish(job_id)
            return
        except Exception:
            # The job itself raised — deterministic, so retrying cannot
            # help; fail it now with the traceback.
            error = traceback.format_exc(limit=8)
            log.warning("job %s failed:\n%s", job_id, error)
            self.queue.mark_failed(job_id, error)
            self._finish(job_id)
            return
        finally:
            beat.cancel()
        current = self.queue.get(job_id)
        if current.state is not JobState.RUNNING or current.attempts != attempt:
            # Cancelled or reaped while the attempt ran: discard the late
            # result (the reaped case re-runs and produces it again).
            log.warning(
                "job %s: discarding result of superseded attempt %d "
                "(state=%s, attempts=%d)",
                job_id,
                attempt,
                current.state.value,
                current.attempts,
            )
            return
        self.queue.mark_done(job_id, encoded)
        if self._result_cache is not None:
            try:
                self._result_cache.put(
                    decode_job(record.payload), decode_metrics(encoded)
                )
            except OSError:
                pass  # cache write failure must not fail a DONE job
        self._finish(job_id)
        # Chaos hook: a deterministic stand-in for "SIGKILL mid-run" —
        # fires only under an installed fault plan.
        faults.maybe_exit("daemon.exit", job_id)

    def _execute_inline(self, payload: dict[str, Any], shard: int) -> dict[str, Any]:
        job = decode_job(payload)
        cache = self.shard_caches[shard]
        if job.options.pipeline_cache is None:
            job = replace(
                job, options=replace(job.options, pipeline_cache=cache)
            )
        return encode_metrics(get_backend(job.backend).compile(job.circuit, job.options))


# -- socket front-end --------------------------------------------------------


class ServiceServer:
    """JSON-lines socket server exposing a :class:`CompileService`.

    One request object per line; every response is a single line with an
    ``ok`` flag.  Supported ops: ``ping``, ``backends``, ``submit``
    (optional ``timeout``/``max_retries``/``key``), ``status``, ``result``
    (optional ``wait``/``timeout``), ``cancel``, ``jobs``, ``stats``,
    ``drain``.

    Requests may arrive gzip-wrapped (``{"enc": "gzip+b64", "data": ...}``)
    — large submissions cross the socket compressed.  Responses are
    compressed only for peers that negotiated it (a wrapped request, or an
    ``"enc": "gzip+b64"`` request field) and only past the 64 KiB
    threshold, so old clients are unaffected.  The stream line limit is
    raised past asyncio's 64 KiB default so large plain-JSON lines (an old
    client submitting a big circuit) still frame correctly.
    """

    #: per-line stream buffer cap (asyncio defaults to 64 KiB, which a
    #: large uncompressed submission legitimately exceeds)
    MAX_LINE_BYTES = 32 * 2**20

    def __init__(
        self,
        service: CompileService,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._drained = asyncio.Event()

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def start(self) -> None:
        await self.service.start()
        if self.socket_path is not None:
            stale = Path(self.socket_path)
            if stale.is_socket():  # leftover of a killed daemon
                stale.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path, limit=self.MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle,
                host=self.host,
                port=self.port,
                limit=self.MAX_LINE_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Serve requests until a ``drain`` op completes, then stop."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._drained.wait()

    async def aclose(self) -> None:
        self._drained.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request, wrapped = decode_line(line)
                except WireError as exc:
                    request, wrapped = None, False
                    response = {"ok": False, "error": str(exc)}
                else:
                    response = await self._respond(request)
                # Chaos hook: drop the connection after the request was
                # processed but before the response line leaves — the
                # window where a client cannot know whether its submit
                # landed, which is what idempotency keys are for.
                if faults.fires(
                    "socket.drop", str((request or {}).get("op", ""))
                ):
                    break
                accepts_gzip = wrapped or (
                    request is not None
                    and request.get("enc") == WIRE_GZIP_ENCODING
                )
                writer.write(encode_line(response, compress=accepts_gzip))
                await writer.drain()
                if response.get("op") == "drain" and response.get("ok"):
                    self._drained.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, request: dict[str, Any]) -> dict[str, Any]:
        try:
            op = request["op"]
        except (KeyError, TypeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        service = self.service
        try:
            if op == "ping":
                # the "enc" field doubles as a capability advert: clients
                # only gzip-compress their requests to daemons that answer
                # with it (an old daemon's ping lacks the field)
                return {"ok": True, "op": op, "enc": WIRE_GZIP_ENCODING}
            if op == "backends":
                return {"ok": True, "op": op, "backends": available_backends()}
            if op == "submit":
                control = decode_job_control(request)
                job_id = await service.submit(
                    request.get("job"),
                    timeout=control.timeout,
                    max_retries=control.max_retries,
                    job_key=control.key,
                )
                return {"ok": True, "op": op, "id": job_id}
            if op == "status":
                return {"ok": True, "op": op, "job": service.status(request["id"])}
            if op == "result":
                payload = await service.result(
                    request["id"],
                    wait=bool(request.get("wait", False)),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, "op": op, "metrics": payload}
            if op == "cancel":
                return {
                    "ok": True,
                    "op": op,
                    "cancelled": service.cancel(request["id"]),
                }
            if op == "jobs":
                return {"ok": True, "op": op, "jobs": service.jobs()}
            if op == "stats":
                return {"ok": True, "op": op, "stats": service.stats()}
            if op == "drain":
                finished = await service.drain()
                return {"ok": True, "op": op, "finished": finished}
        except WireError as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        except ServiceError as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        except KeyError as exc:
            return {"ok": False, "op": op, "error": f"missing field {exc}"}
        return {"ok": False, "error": f"unknown op {op!r}"}


async def _serve(
    socket_path: str | None,
    host: str,
    port: int,
    spool_dir: str | None,
    shards: int,
    prefix_cache_dir: str | None,
    result_cache_dir: str | None,
    inline: bool,
    lease_seconds: float,
    fault_spec: str | None,
) -> None:
    service = CompileService(
        spool_dir=spool_dir,
        shards=shards,
        prefix_cache_dir=prefix_cache_dir,
        result_cache_dir=result_cache_dir,
        inline=inline,
        lease_seconds=lease_seconds,
        fault_plan=fault_spec if fault_spec is not None else faults.active(),
    )
    server = ServiceServer(service, socket_path=socket_path, host=host, port=port)
    await server.start()
    # Machine-parseable readiness line: the smoke harness and `repro submit
    # --wait-for` poll for it before connecting.
    print(f"repro-serve: listening on {server.address}", flush=True)
    try:
        await server.serve_until_drained()
    finally:
        await server.aclose()
        print("repro-serve: drained, shutting down", flush=True)


def serve_forever(
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    spool_dir: str | None = None,
    shards: int = 2,
    prefix_cache_dir: str | None = None,
    result_cache_dir: str | None = None,
    inline: bool = False,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    fault_spec: str | None = None,
) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    # Chaos harnesses arm a whole daemon subprocess via the environment;
    # an explicit --faults spec wins over it.
    faults.install_from_env()
    try:
        asyncio.run(
            _serve(
                socket_path,
                host,
                port,
                spool_dir,
                shards,
                prefix_cache_dir,
                result_cache_dir,
                inline,
                lease_seconds,
                fault_spec,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0
