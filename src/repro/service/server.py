"""The compile-service daemon: an async front-end over ``compile_many``'s
job model.

:class:`CompileService` owns a persistent :class:`~repro.service.queue.JobQueue`
and a set of *shards*.  Each shard is one worker process (a single-process
``ProcessPoolExecutor``) fed by its own asyncio dispatcher, and keeps a
long-lived pipeline prefix cache installed by
:func:`repro.experiments.batch.init_worker_prefix_cache` — jobs that agree
on a (circuit, architecture) prefix are routed to the same shard, so the
in-memory layer hits across jobs of one run, and the disk layer
(:class:`~repro.core.pipeline.DiskPipelineCache`, shared directory) hits
across daemon restarts.  An optional :class:`ResultCache` short-circuits
whole jobs the service has compiled before.

Fault tolerance (see docs/ARCHITECTURE.md "Failure model"):

- A dispatched job holds a **lease** (:meth:`JobQueue.acquire`), extended
  by a heartbeat task while the attempt runs; a lease-reaper requeues
  jobs whose lease expired because a dispatcher lost track of them.
- A worker-process crash (``BrokenProcessPool``) is contained to its
  shard: the pool and its prefix cache are rebuilt, the in-flight job is
  retried, and a poison job that keeps killing its worker dead-letters
  as FAILED once its attempts reach ``max_retries``.
- Per-job **timeouts** (pool mode) kill the stuck worker, rebuild the
  shard, and charge the attempt; per-job ``max_retries`` bounds every
  retry path.
- Infrastructure failures retry; deterministic compile errors (the job
  itself raising) fail immediately — retrying a deterministic failure
  can only waste attempts.

``inline=True`` executes jobs in the server process instead of worker
pools — deterministic single-process mode for tests and tiny deployments;
results are identical either way because compiles are seeded and
deterministic.  Timeouts are not preemptive inline (nothing can interrupt
the in-process compile).

**Farm mode** (``farm=True``): N daemons share one spool (and one
:class:`~repro.core.pipeline.DiskPipelineCache` directory) with no
coordinator.  Shard ownership is elected through
:class:`~repro.service.shards.ShardBoard` lease files — each daemon
claims up to its fair share ``ceil(shards / live_daemons)`` of shards,
renews them on the farm tick, and adopts expired ones (a dead peer's
shards redistribute within one shard-lease).  Every dispatch is guarded
by a :class:`~repro.service.shards.JobClaims` exclusive-create claim
file, so the takeover window and the **work-stealing** path (a daemon
whose owned shards drain takes PENDING jobs from the most backlogged
unowned shard) can never double-run a job.  Worker slots decouple from
logical shards in farm mode (``workers`` local pools, shard → slot by
modulo); peers' record writes are ingested by the queue's fingerprint
``sync`` on the same tick, and cross-daemon cancellation travels as
marker files under ``spool/control/`` applied by the owning daemon.

:class:`ServiceServer` exposes the service over a JSON-lines socket
protocol (one request object per line, one response per line), Unix or
TCP.  ``python -m repro serve`` boots the pair; see
:mod:`repro.service.client` for the matching client and
:mod:`repro.service.http` for the REST gateway in front of it.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import math
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from ..baselines.atomique_adapter import metrics_from_result
from ..baselines.registry import atomique_result, available_backends, get_backend
from ..core.pipeline import (
    DiskPipelineCache,
    PipelineCache,
    _architecture_fingerprint,
    _circuit_fingerprint,
    set_pass_progress_sink,
)
from ..core import binformat
from ..core.serialize import (
    iter_program_doc_chunks,
    program_doc_header,
    program_doc_stages,
    store_header_doc,
)
from ..experiments import batch
from ..experiments.batch import CompileJob, ResultCache
from ..hardware.raa import RAAArchitecture
from . import faults
from .queue import JobQueue, JobRecord, JobState, QueueError
from .shards import DEFAULT_SHARD_LEASE_SECONDS, JobClaims, ShardBoard
from .wire import (
    FRAME_HEADER_LEN,
    FRAME_MAGIC,
    FRAME_VERSION,
    WIRE_GZIP_ENCODING,
    WireError,
    decode_frame_payload,
    decode_job,
    decode_job_control,
    decode_line,
    decode_metrics,
    encode_bindoc_frame,
    encode_frame,
    encode_line,
    encode_metrics,
    parse_frame_header,
)

log = logging.getLogger("repro.service")

#: Default lease duration; heartbeats land every third of this, so a
#: healthy attempt can miss two heartbeats before the reaper acts.
DEFAULT_LEASE_SECONDS = 30.0

#: Stages per program chunk on the streaming ``result`` path (callers can
#: override per-request with ``chunk_stages``).
DEFAULT_STREAM_CHUNK_STAGES = 2048


class ServiceError(RuntimeError):
    """A request the service must reject (unknown backend, bad payload,
    submission after draining started)."""


class _RetryableJobError(RuntimeError):
    """An infrastructure failure of one attempt (crash/timeout): the job
    itself may be fine, so it goes through the retry budget rather than
    failing outright."""


def _prefix_shard(job: CompileJob, shards: int) -> int:
    """Stable shard for *job*: jobs sharing a pipeline prefix co-locate.

    Keyed exactly like the head of every :class:`PipelineCache` key —
    (circuit fingerprint, architecture fingerprint) — so a sweep over one
    circuit lands on one shard and reuses its warm prefix cache.
    """
    arch = job.options.raa or RAAArchitecture.default()
    digest = hashlib.sha256(
        f"{_circuit_fingerprint(job.circuit)}|"
        f"{_architecture_fingerprint(arch)}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") % shards


def _capture_envelope(job: CompileJob) -> dict[str, Any]:
    """Compile an Atomique job keeping its program: {"metrics", "program"}.

    The metrics come out of the same :func:`metrics_from_result` scoring
    the registered backend uses on the same setup path
    (:func:`~repro.baselines.registry.atomique_result`), so capturing the
    program never perturbs them.  The program travels back to the daemon
    (and into the spool) as a v3 binary columnar record — bytes pickle
    across the worker pool boundary like any other payload.
    """
    result = atomique_result(job.circuit, job.options)
    metrics = metrics_from_result(
        result, job.circuit.name, job.options.label or "Atomique"
    )
    return {
        "metrics": encode_metrics(metrics),
        "program": binformat.encode_program(result.program),
    }


def _progress_file_sink(progress_path: str, attempt: int):
    """A pass-progress sink appending JSONL events to the job's spool file.

    One small append per pass — the write is the worker's only mid-compile
    channel back to the daemon(s), and every ``status``/streaming
    ``result`` reader tails the same file (farm peers included).
    """

    def sink(name: str, index: int, total: int, seconds: float) -> None:
        event = {
            "pass": name,
            "index": index,
            "total": total,
            "seconds": seconds,
            "attempt": attempt,
        }
        with open(progress_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(event) + "\n")

    return sink


def _execute_wire_job(
    payload: dict[str, Any],
    attempt: int = 0,
    keep_program: bool = False,
    progress_path: str | None = None,
) -> dict[str, Any]:
    """Decode, compile, and re-encode one job (runs inside a shard worker).

    Module-level so ``ProcessPoolExecutor`` can pickle it; the worker's
    prefix cache (installed by the pool initializer) is injected by
    :func:`repro.experiments.batch.with_worker_prefix_cache` inside
    ``batch._run_job``.  The fault-injection context includes the attempt
    number so chaos plans can target "only the first attempt of job X".

    ``progress_path`` arms the per-pass progress sink: the pipeline
    appends one JSONL event there as each pass completes.

    Returns an envelope ``{"metrics": ..., "program": ...}``; the program
    slot is filled only for ``keep_program`` jobs.
    """
    job = decode_job(payload)
    context = f"{job.backend}:{job.circuit.name}#a{attempt}"
    faults.maybe_exit("worker.crash", context)
    faults.maybe_sleep("job.slow", context)
    previous = (
        set_pass_progress_sink(_progress_file_sink(progress_path, attempt))
        if progress_path is not None
        else None
    )
    try:
        if keep_program:
            return _capture_envelope(batch.with_worker_prefix_cache(job))
        return {"metrics": encode_metrics(batch._run_job(job)), "program": None}
    finally:
        if progress_path is not None:
            set_pass_progress_sink(previous)


class CompileService:
    """Job submission/status/result orchestration over sharded workers."""

    def __init__(
        self,
        spool_dir: str | Path | None = None,
        shards: int = 2,
        prefix_cache_dir: str | Path | None = None,
        result_cache_dir: str | Path | None = None,
        inline: bool = False,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        fault_plan: "faults.FaultPlan | str | dict[str, Any] | None" = None,
        farm: bool = False,
        node: str | None = None,
        workers: int | None = None,
        shard_lease_seconds: float = DEFAULT_SHARD_LEASE_SECONDS,
        farm_tick_seconds: float | None = None,
        steal: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if farm and spool_dir is None:
            raise ValueError("farm mode needs a spool_dir shared by the farm")
        self.shards = shards
        self.inline = inline
        self.lease_seconds = lease_seconds
        self.fault_plan = faults.FaultPlan.coerce(fault_plan)
        self.farm = farm
        self.node = node or f"daemon-{os.getpid()}"
        self._owner = self.node
        # Non-farm keeps the historical one-worker-per-shard shape; a farm
        # daemon covers all logical shards with a small local pool (shard →
        # slot by modulo), since the farm-wide shard count exceeds any one
        # daemon's fair share.
        self.workers = (
            workers if workers is not None else (shards if not farm else
                                                 max(1, min(2, shards)))
        )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.steal = steal
        self.shard_lease_seconds = shard_lease_seconds
        self._farm_tick = (
            farm_tick_seconds
            if farm_tick_seconds is not None
            else max(min(shard_lease_seconds / 4.0, 1.0), 0.05)
        )
        node_digest = hashlib.sha256(self.node.encode()).hexdigest()[:6]
        self.queue = JobQueue(
            spool_dir,
            clock=clock,
            node_id=node_digest if farm else None,
            shared=farm,
        )
        self._board: ShardBoard | None = None
        self._claims: JobClaims | None = None
        if farm:
            assert spool_dir is not None
            self._board = ShardBoard(
                Path(spool_dir) / "shards",
                owner=self.node,
                shards=shards,
                lease_seconds=shard_lease_seconds,
                clock=clock,
            )
            self._claims = JobClaims(
                Path(spool_dir) / "claims",
                owner=self.node,
                lease_seconds=lease_seconds,
                clock=clock,
            )
        self._prefix_cache_dir = (
            str(prefix_cache_dir) if prefix_cache_dir is not None else None
        )
        self._result_cache = (
            ResultCache(result_cache_dir) if result_cache_dir is not None else None
        )
        self._pools: list[ProcessPoolExecutor] = []
        #: inline mode: one long-lived prefix cache per worker slot,
        #: mirroring what the pool initializer builds inside each worker
        self.shard_caches: list[PipelineCache] = []
        self._wake: list[asyncio.Event] = []
        self._dispatchers: list[asyncio.Task[None]] = []
        self._reaper: asyncio.Task[None] | None = None
        self._farm_task: asyncio.Task[None] | None = None
        self._events: dict[str, asyncio.Event] = {}
        self._inflight: dict[str, asyncio.Future[Any]] = {}
        #: shards this daemon currently owns (all of them when not a farm)
        self._owned: set[int] = set(range(shards)) if not farm else set()
        #: unowned-shard jobs this daemon claimed through work-stealing
        self._stolen: set[str] = set()
        #: job_id -> retry-not-before time after a lost claim race
        self._claim_skip: dict[str, float] = {}
        self._steal_count = 0
        self._shards_claimed = 0
        self._shards_lost = 0
        #: cleared by crash-simulation tests so aclose() leaves leases to
        #: expire naturally instead of releasing them gracefully
        self.release_leases_on_close = True
        self._accepting = True
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        fault_spec = (
            self.fault_plan.to_spec() if self.fault_plan is not None else None
        )
        # spawn, not fork: a forked worker inherits the daemon's listening
        # socket, so after a daemon hard-kill the orphaned worker keeps the
        # old listener alive and silently black-holes client connects meant
        # for the replacement daemon.
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=batch.init_worker_prefix_cache,
            initargs=(self._prefix_cache_dir, fault_spec),
        )

    async def start(self) -> None:
        """Spin up worker slots/dispatchers and re-dispatch spooled jobs."""
        if self._started:
            return
        self._started = True
        if self.fault_plan is not None:
            faults.install(self.fault_plan)
        self._wake = [asyncio.Event() for _ in range(self.shards)]
        if self.inline:
            self.shard_caches = [
                DiskPipelineCache(self._prefix_cache_dir)
                if self._prefix_cache_dir is not None
                else PipelineCache()
                for _ in range(self.workers)
            ]
        else:
            self._pools = [self._make_pool() for _ in range(self.workers)]
        if self.farm:
            # Claim our fair share of shards before the first dispatch so
            # the boot backlog does not sit through a whole tick.
            self._farm_step()
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard))
            for shard in range(self.shards)
        ]
        self._reaper = asyncio.create_task(self._reap_expired_leases())
        if self.farm:
            self._farm_task = asyncio.create_task(self._farm_loop())
        # Jobs spooled by a previous daemon: PENDING (including interrupted
        # RUNNING ones, already demoted by the queue's loader when the
        # spool is unshared) wake their shard; every non-terminal record
        # needs a waiter event.
        for record in self.queue.jobs():
            if not record.state.terminal:
                self._events.setdefault(record.job_id, asyncio.Event())
            if record.state is JobState.PENDING:
                self._wake_shard(record.shard % self.shards)

    def _our_backlog(self) -> list[JobRecord]:
        """Non-terminal records this daemon is responsible for finishing."""
        records = [r for r in self.queue.jobs() if not r.state.terminal]
        if not self.farm:
            return records
        return [
            r
            for r in records
            if (r.shard % self.shards) in self._owned
            or r.job_id in self._stolen
            or r.owner == self.node
        ]

    async def drain(self) -> int:
        """Stop accepting, finish everything queued, shut workers down.

        Returns the number of jobs that reached a terminal state during
        the drain.  A farm daemon drains only its own responsibility —
        owned shards, stolen jobs, and its RUNNING attempts — and keeps
        renewing its shard leases meanwhile so peers do not steal the
        backlog it is about to finish.  Idempotent; the service cannot be
        restarted after."""
        self._accepting = False
        if self.farm:
            # Sweep in peers' latest spool writes before judging the
            # backlog: a submission accepted seconds ago on another
            # daemon may not have crossed a farm tick yet.
            self._farm_step()
        in_flight = len(self._our_backlog())
        while self._our_backlog():
            await asyncio.sleep(0.02)
        await self.aclose()
        return in_flight

    async def aclose(self) -> None:
        """Tear down dispatchers and worker pools (no waiting for jobs)."""
        self._accepting = False
        tasks = list(self._dispatchers)
        if self._reaper is not None:
            tasks.append(self._reaper)
        if self._farm_task is not None:
            tasks.append(self._farm_task)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        self._reaper = None
        self._farm_task = None
        if (
            self.farm
            and self._board is not None
            and self.release_leases_on_close
        ):
            # Graceful exit: hand the shards back instantly instead of
            # making peers wait out the lease (crash tests skip this).
            for shard in sorted(self._owned):
                self._board.release(shard)
            self._owned.clear()
        for pool in self._pools:
            # Kill workers still computing (e.g. a cancelled job's
            # attempt): their results are discarded anyway, and a live
            # worker would block interpreter exit until it finishes.
            victims = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in victims:
                try:
                    proc.kill()
                except Exception:
                    pass
        self._pools = []

    # -- job APIs ------------------------------------------------------------

    async def submit(
        self,
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
        job_key: str | None = None,
        priority: int = 0,
        deadline: float | None = None,
        keep_program: bool = False,
    ) -> str:
        """Validate and enqueue a wire-encoded job; returns its id.

        Validation happens here, not on the worker: an unknown backend or
        a malformed circuit fails the *submission*, with the registry's
        known-backends message, instead of producing a FAILED job later.

        With a *job_key*, submission is idempotent: a key the queue has
        already seen returns the existing job's id without enqueuing
        anything, so a client may safely resubmit after a lost response.

        *priority* orders dispatch within a shard (higher first);
        *deadline* is seconds from now the job must dispatch by;
        *keep_program* captures the compiled program for the ``program``
        op (Atomique jobs only — the other backends never build one).
        """
        if not self._started:
            await self.start()
        if self.farm:
            # A key submitted through a peer daemon lives on disk, not in
            # our memory yet: sync before the idempotency check.
            self.queue.sync()
        if job_key is not None:
            existing = self.queue.by_key(job_key)
            if existing is not None:
                return existing.job_id
        if not self._accepting:
            raise ServiceError("service is draining; submissions are closed")
        try:
            job = decode_job(payload)
            get_backend(job.backend)  # raises with the known-backends list
        except (WireError, ValueError) as exc:
            raise ServiceError(str(exc)) from exc
        if keep_program and job.backend != "Atomique":
            raise ServiceError(
                "keep_program captures Atomique stage programs only "
                f"(got backend {job.backend!r})"
            )
        shard = _prefix_shard(job, self.shards)
        record = self.queue.submit(
            payload,
            shard=shard,
            job_key=job_key,
            timeout=timeout,
            max_retries=max_retries,
            priority=priority,
            deadline=(
                self.queue.clock() + deadline if deadline is not None else None
            ),
            keep_program=keep_program,
        )
        event = self._events.setdefault(record.job_id, asyncio.Event())
        # A result-cache hit cannot supply the program, so keep_program
        # jobs always compile.
        hit = (
            self._result_cache.get(job)
            if self._result_cache is not None and not keep_program
            else None
        )
        if hit is not None:
            self.queue.mark_done(record.job_id, encode_metrics(hit))
            event.set()
        else:
            self._wake_shard(shard)
        return record.job_id

    def _lookup(self, job_id: str) -> JobRecord:
        """Get a record, falling back to the shared spool in farm mode
        (the job may have been submitted through a peer daemon)."""
        try:
            return self.queue.get(job_id)
        except QueueError as exc:
            if self.farm:
                record = self.queue.refresh_from_disk(job_id)
                if record is not None:
                    return record
            raise ServiceError(str(exc)) from exc

    def status(self, job_id: str) -> dict[str, Any]:
        summary = self._lookup(job_id).summary()
        # per-pass progress rides along so pollers (socket status op, REST
        # gateway) see how far a RUNNING compile has come
        summary["progress"] = self.progress(job_id)
        return summary

    def progress(self, job_id: str) -> list[dict[str, Any]]:
        """Per-pass progress events of *job_id*, in completion order."""
        return self.queue.load_progress(job_id)

    async def result(
        self, job_id: str, wait: bool = False, timeout: float | None = None
    ) -> dict[str, Any]:
        """The wire-encoded metrics of a finished job.

        ``wait=True`` blocks until the job reaches a terminal state (or
        *timeout* seconds pass).  FAILED and CANCELLED jobs raise with the
        recorded error."""
        record = self._lookup(job_id)
        if wait and not record.state.terminal:
            # The event is set locally by _finish and, for jobs finishing
            # on a peer daemon, by the farm tick's spool sync.
            event = self._events.setdefault(job_id, asyncio.Event())
            try:
                await asyncio.wait_for(event.wait(), timeout)
            except asyncio.TimeoutError:
                raise ServiceError(
                    f"timed out waiting for {job_id} "
                    f"(state={record.state.value})"
                ) from None
            # refresh_from_disk replaces record objects: re-read state
            record = self._lookup(job_id)
        if record.state is JobState.DONE:
            payload = self.queue.load_result(job_id)
            if payload is None:
                raise ServiceError(f"result of {job_id} is missing from spool")
            return payload
        if record.state is JobState.FAILED:
            raise ServiceError(
                f"job {job_id} failed after {record.attempts} attempt(s): "
                f"{record.error}"
            )
        if record.state is JobState.CANCELLED:
            raise ServiceError(f"job {job_id} was cancelled")
        raise ServiceError(
            f"job {job_id} is not finished (state={record.state.value})"
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING or RUNNING job.

        A RUNNING job's lease is revoked and its in-flight future is
        cancelled best-effort — a worker-process compile cannot be
        interrupted mid-flight, so the attempt may run to completion, but
        its result is discarded and the job stays CANCELLED.

        A farm daemon that is not responsible for the job (unowned shard,
        foreign attempt) must not write its record — only owners write,
        or a half-applied cancel races the owner's heartbeat.  It drops a
        marker file instead; the owner applies it on its next tick."""
        record = self._lookup(job_id)
        if (
            self.farm
            and not record.state.terminal
            and (record.shard % self.shards) not in self._owned
            and record.owner != self.node
            and job_id not in self._stolen
        ):
            self._write_cancel_marker(job_id)
            return True
        try:
            cancelled = self.queue.cancel(job_id)
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc
        if cancelled:
            future = self._inflight.get(job_id)
            if future is not None:
                future.cancel()
            event = self._events.get(job_id)
            if event is not None:
                event.set()
        return cancelled

    def _control_dir(self) -> Path:
        assert self.queue.spool_dir is not None
        return self.queue.spool_dir / "control"

    def _write_cancel_marker(self, job_id: str) -> None:
        control = self._control_dir()
        control.mkdir(parents=True, exist_ok=True)
        path = control / f"cancel-{job_id}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({"job_id": job_id, "by": self.node}))
        os.replace(tmp, path)

    def _check_program_available(self, job_id: str) -> None:
        record = self._lookup(job_id)
        if not record.keep_program:
            raise ServiceError(
                f"job {job_id} was not submitted with keep_program; "
                "its compiled program was not captured"
            )
        if record.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} is not finished (state={record.state.value})"
            )

    def program(self, job_id: str) -> dict[str, Any]:
        """The wire-encoded (v2 dict) program of a DONE ``keep_program``
        job — a binary spool record is decoded transparently."""
        self._check_program_available(job_id)
        payload = self.queue.load_program(job_id)
        if payload is None:
            raise ServiceError(f"program of {job_id} is missing from spool")
        return payload

    def program_bytes(self, job_id: str) -> bytes | None:
        """The v3 binary record of a DONE ``keep_program`` job, or None
        when the spool only holds the legacy v2 JSON document."""
        self._check_program_available(job_id)
        return self.queue.load_program_bytes(job_id)

    def jobs(self) -> list[dict[str, Any]]:
        return [r.summary() for r in self.queue.jobs()]

    def stats(self) -> dict[str, Any]:
        counts: dict[str, int] = {s.value: 0 for s in JobState}
        per_shard = [0] * self.shards
        pending_per_shard = [0] * self.shards
        retried = dead_lettered = 0
        for record in self.queue.jobs():
            counts[record.state.value] += 1
            per_shard[record.shard % self.shards] += 1
            if record.state is JobState.PENDING:
                pending_per_shard[record.shard % self.shards] += 1
            if record.attempts > 1:
                retried += 1
            if record.state is JobState.FAILED:
                dead_lettered += 1
        return {
            "shards": self.shards,
            "inline": self.inline,
            "accepting": self._accepting,
            "owner": self._owner,
            "node": self.node,
            "farm": self.farm,
            "workers": self.workers,
            "lease_seconds": self.lease_seconds,
            "jobs": counts,
            "jobs_per_shard": per_shard,
            "pending_per_shard": pending_per_shard,
            "retried_jobs": retried,
            "dead_lettered": dead_lettered,
            "quarantined_spool_files": len(self.queue.quarantined),
            "owned_shards": sorted(self._owned),
            "shard_leases": (
                self._board.snapshot() if self._board is not None else None
            ),
            "steals": self._steal_count,
            "shards_claimed": self._shards_claimed,
            "shards_lost": self._shards_lost,
            "prefix_cache_dir": self._prefix_cache_dir,
            "backends": available_backends(),
            "faults": (
                self.fault_plan.to_spec() if self.fault_plan is not None else None
            ),
        }

    # -- execution -----------------------------------------------------------

    def _wake_shard(self, shard: int) -> None:
        if self._wake:
            self._wake[shard].set()

    def _next_dispatchable(self, shard: int) -> str | None:
        """The highest-ranked runnable job of *shard*, or None.

        Scans the shard backlog in dispatch order (priority desc, EDF,
        FIFO).  A farm daemon only dispatches from shards it owns — plus
        individually stolen jobs — and jobs whose claim was just lost to
        a peer sit out a short backoff.  Jobs whose dispatch deadline
        already passed fail here with a clear error instead of running
        late."""
        owned = (not self.farm) or shard in self._owned
        now = self.queue.clock()
        for record in self.queue.pending_for(shard, self.shards):
            if not owned and record.job_id not in self._stolen:
                continue
            skip_until = self._claim_skip.get(record.job_id)
            if skip_until is not None and now < skip_until:
                continue
            if record.deadline is not None and record.deadline < now:
                self.queue.mark_failed(
                    record.job_id,
                    f"deadline expired {now - record.deadline:.3f}s before "
                    "dispatch",
                )
                self._release_claim(record.job_id)
                self._finish(record.job_id)
                continue
            return record.job_id
        return None

    async def _dispatch(self, shard: int) -> None:
        wake = self._wake[shard]
        while True:
            wake.clear()
            job_id = self._next_dispatchable(shard)
            if job_id is None:
                await wake.wait()
                continue
            try:
                await self._run_one(job_id, shard)
            except asyncio.CancelledError:
                raise
            except Exception:
                # Bookkeeping failed (e.g. the spool directory went
                # read-only or full).  The dispatcher must outlive any
                # single job, or every later job on this shard strands in
                # PENDING; record the failure if the spool lets us.
                log.exception(
                    "shard %d: bookkeeping failure while running %s",
                    shard,
                    job_id,
                )
                try:
                    self.queue.mark_failed(
                        job_id, traceback.format_exc(limit=8)
                    )
                except Exception:
                    log.exception(
                        "shard %d: could not record the failure of %s — "
                        "the job stays in its last spooled state",
                        shard,
                        job_id,
                    )
                self._release_claim(job_id)
                self._finish(job_id)

    async def _heartbeat(self, job_id: str) -> None:
        interval = max(self.lease_seconds / 3.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            if self.farm:
                # Disk is authoritative: a peer may have reaped and
                # re-leased the job while we froze.
                self.queue.refresh_from_disk(job_id)
            held = self.queue.heartbeat(
                job_id,
                self.lease_seconds,
                owner=self.node if self.farm else None,
            )
            if not held:
                return  # job left RUNNING (cancelled/reaped): stop beating

    def _reap_record(self, record: JobRecord) -> None:
        """Requeue (or dead-letter) one expired-lease RUNNING record."""
        log.warning(
            "lease expired for %s (owner %s, attempt %d/%d)",
            record.job_id,
            record.owner,
            record.attempts,
            record.max_retries,
        )
        if self._claims is not None:
            # The dead holder's claim file must go, or nobody can
            # re-dispatch the job we are about to requeue.
            self._claims.revoke(record.job_id)
        state = self.queue.retry_or_fail(
            record.job_id,
            f"lease expired after {self.lease_seconds}s "
            f"(owner {record.owner})",
        )
        if state is JobState.PENDING:
            self._wake_shard(record.shard % self.shards)
        else:
            self._finish(record.job_id)

    async def _reap_expired_leases(self) -> None:
        """Requeue (or dead-letter) RUNNING jobs whose lease expired.

        With healthy dispatchers the heartbeat keeps leases alive and this
        never fires; it is the backstop for a dispatcher that died or a
        daemon that froze past its lease.  In the farm it is also how a
        dead peer's in-flight jobs come back: whoever owns (or has just
        adopted) the shard requeues them.  A farm daemon only reaps on
        shards it owns, its own strays, and its stolen jobs — reaping a
        live peer's territory would race that peer's own reaper."""
        interval = max(self.lease_seconds / 2.0, 0.1)
        while True:
            await asyncio.sleep(interval)
            for record in self.queue.expired_leases():
                if self.farm and not (
                    (record.shard % self.shards) in self._owned
                    or record.owner == self.node
                    or record.job_id in self._stolen
                ):
                    continue
                self._reap_record(record)

    def _finish(self, job_id: str) -> None:
        event = self._events.get(job_id)
        if event is not None:
            event.set()

    def _release_claim(self, job_id: str) -> None:
        """Drop the farm claim and steal bookkeeping of a finished attempt."""
        if self._claims is not None:
            self._claims.release(job_id)
        self._stolen.discard(job_id)
        self._claim_skip.pop(job_id, None)

    # -- farm tick ------------------------------------------------------------

    async def _farm_loop(self) -> None:
        while True:
            await asyncio.sleep(self._farm_tick)
            try:
                self._farm_step()
            except asyncio.CancelledError:
                raise
            except Exception:
                # One failed tick (e.g. a transient spool error) must not
                # kill the farm membership; the next tick retries.
                log.exception("%s: farm tick failed", self.node)

    def _farm_step(self) -> None:
        """One round of farm housekeeping (also run synchronously at boot).

        Order matters: sync first (decisions below see the freshest
        records), then apply cancel markers, renew before claiming (a
        renewal failure lowers our owned count, freeing budget), and
        steal only after whole-shard claims came up empty — whole shards
        preserve cache affinity, single stolen jobs do not."""
        assert self._board is not None
        for record in self.queue.sync():
            event = self._events.setdefault(record.job_id, asyncio.Event())
            if record.state.terminal:
                event.set()
            elif record.state is JobState.PENDING:
                self._wake_shard(record.shard % self.shards)
        self._apply_cancel_markers()
        for shard in sorted(self._owned):
            if not self._board.renew(shard):
                self._owned.discard(shard)
                self._shards_lost += 1
                log.warning("%s: lost the lease on shard %d", self.node, shard)
        if self._accepting:
            self._claim_shards()
            if self.steal and not any(
                self.queue.pending_for(shard, self.shards)
                for shard in self._owned
            ):
                self._try_steal()
        # Re-wake owned shards with work: a job skipped on a lost claim
        # race would otherwise wait for an unrelated wake.
        for shard in self._owned:
            if self.queue.pending_for(shard, self.shards):
                self._wake_shard(shard)

    def _apply_cancel_markers(self) -> None:
        """Apply peers' cancel requests for jobs we are responsible for."""
        control = self._control_dir()
        if not control.is_dir():
            return
        for path in control.glob("cancel-*.json"):
            job_id = path.name[len("cancel-") : -len(".json")]
            try:
                record = self.queue.get(job_id)
            except QueueError:
                record = self.queue.refresh_from_disk(job_id)
            if record is None:
                continue  # not visible yet; keep the marker
            if record.state.terminal:
                # Already finished (possibly cancelled by its owner):
                # the marker is spent either way.
                path.unlink(missing_ok=True)
                continue
            mine = (
                (record.shard % self.shards) in self._owned
                or record.owner == self.node
                or record.job_id in self._stolen
            )
            if not mine:
                continue
            try:
                self.cancel(job_id)
            except ServiceError:
                continue
            path.unlink(missing_ok=True)

    def _claim_shards(self) -> None:
        """Claim free/expired shards up to a fair share of the live farm.

        The budget is ``ceil(shards / live_owners)`` where live owners
        are daemons holding at least one unexpired lease (us included):
        when a peer dies its leases expire, the divisor shrinks, and the
        survivors' budgets grow to cover its territory.  Expired shards
        are ranked by backlog so a dead peer's hottest shard is adopted
        first."""
        assert self._board is not None
        live = self._board.live_owners() | {self.node}
        budget = math.ceil(self.shards / len(live))
        if len(self._owned) >= budget:
            return
        candidates: list[tuple[int, int]] = []
        for row in self._board.snapshot():
            shard = row["shard"]
            if shard in self._owned or not row["expired"]:
                continue
            backlog = len(self.queue.pending_for(shard, self.shards))
            candidates.append((-backlog, shard))
        candidates.sort()
        for _neg_backlog, shard in candidates:
            if len(self._owned) >= budget:
                break
            if self._board.claim(shard):
                self._adopt_shard(shard)

    def _adopt_shard(self, shard: int) -> None:
        """Take over a shard we just claimed: reap its orphans, wake it."""
        self._owned.add(shard)
        self._shards_claimed += 1
        log.info("%s: claimed shard %d", self.node, shard)
        now = self.queue.clock()
        for record in self.queue.jobs():
            if (
                record.shard % self.shards == shard
                and record.state is JobState.RUNNING
                and record.lease_deadline is not None
                and record.lease_deadline < now
            ):
                self._reap_record(record)
        self._wake_shard(shard)

    def _try_steal(self) -> None:
        """Steal one PENDING job from the most backlogged unowned shard.

        Runs only when every owned shard is drained, and only after
        :meth:`_claim_shards` found no whole shard to adopt — a stolen
        single job gives up the prefix-cache affinity a whole-shard claim
        keeps.  The claim file is the handoff guard; ``steal.race`` chaos
        rules widen the window between choosing a victim and claiming
        it."""
        assert self._claims is not None
        best: tuple[int, int] | None = None
        for shard in range(self.shards):
            if shard in self._owned:
                continue
            backlog = len(self.queue.pending_for(shard, self.shards))
            if backlog and (best is None or backlog > best[0]):
                best = (backlog, shard)
        if best is None:
            return
        shard = best[1]
        for record in self.queue.pending_for(shard, self.shards):
            if record.job_id in self._stolen:
                continue
            faults.maybe_sleep("steal.race", f"{self.node}:{record.job_id}")
            if not self._claims.claim(record.job_id):
                continue
            fresh = self.queue.refresh_from_disk(record.job_id)
            if fresh is None or fresh.state is not JobState.PENDING:
                self._claims.release(record.job_id)
                continue
            self._stolen.add(record.job_id)
            self._steal_count += 1
            log.info(
                "%s: stole %s from shard %d (backlog %d)",
                self.node,
                record.job_id,
                shard,
                best[0],
            )
            self._wake_shard(shard)
            return

    def _slot(self, shard: int) -> int:
        """The local worker slot covering a logical shard."""
        return shard % self.workers

    def _rebuild_slot(self, slot: int, kill: bool = False) -> None:
        """Replace a worker slot's pool (crash containment / timeout).

        ``kill=True`` terminates worker processes still running (a timed-
        out job's worker keeps computing otherwise); the fresh pool
        rebuilds its prefix cache from the shared disk directory, so only
        the in-memory layer is lost."""
        if self.inline:
            return
        pool = self._pools[slot]
        victims = (
            list((getattr(pool, "_processes", None) or {}).values())
            if kill
            else []
        )
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in victims:
            try:
                proc.kill()
            except Exception:
                pass
        self._pools[slot] = self._make_pool()
        log.warning("shard %d: worker pool rebuilt (kill=%s)", slot, kill)

    async def _execute(self, record: Any, shard: int) -> dict[str, Any]:
        """Run one attempt, translating infrastructure failures into
        :class:`_RetryableJobError` for the retry path.  Returns the
        ``{"metrics", "program"}`` envelope of :func:`_execute_wire_job`."""
        slot = self._slot(shard)
        progress_path = self.queue.progress_path(record.job_id)
        if self.inline:
            job = decode_job(record.payload)
            context = f"{job.backend}:{job.circuit.name}#a{record.attempts}"
            faults.maybe_sleep("job.slow", context)
            if progress_path is not None:
                sink = _progress_file_sink(str(progress_path), record.attempts)
            else:
                # memory-only queue: record events directly
                def sink(name, index, total, seconds):
                    self.queue.record_progress(
                        record.job_id,
                        {
                            "pass": name,
                            "index": index,
                            "total": total,
                            "seconds": seconds,
                            "attempt": record.attempts,
                        },
                    )

            previous = set_pass_progress_sink(sink)
            try:
                if record.keep_program:
                    return self._execute_inline(record.payload, slot, True)
                return self._execute_inline(record.payload, slot)
            finally:
                set_pass_progress_sink(previous)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._pools[slot],
            _execute_wire_job,
            record.payload,
            record.attempts,
            record.keep_program,
            str(progress_path) if progress_path is not None else None,
        )
        self._inflight[record.job_id] = future
        try:
            if record.timeout is not None:
                return await asyncio.wait_for(future, record.timeout)
            return await future
        except asyncio.TimeoutError:
            self._rebuild_slot(slot, kill=True)
            raise _RetryableJobError(
                f"attempt {record.attempts} timed out after {record.timeout}s "
                f"(worker killed, shard {slot} pool rebuilt)"
            ) from None
        except BrokenProcessPool:
            self._rebuild_slot(slot)
            raise _RetryableJobError(
                f"attempt {record.attempts} crashed its worker "
                f"(BrokenProcessPool; shard {slot} pool rebuilt)"
            ) from None
        finally:
            self._inflight.pop(record.job_id, None)

    async def _run_one(self, job_id: str, shard: int) -> None:
        record = self.queue.get(job_id)
        if record.state is not JobState.PENDING:
            return  # cancelled while queued, or a duplicate wake
        if self._claims is not None and not self._claims.holds(job_id):
            # Farm mode: the exclusive claim file is what makes the
            # takeover window and the steal handoff single-winner.
            if not self._claims.claim(job_id):
                # A peer holds the claim (it is dispatching the job, or
                # died a moment ago): back this job off briefly and let
                # the spool sync surface the outcome.
                self._claim_skip[job_id] = self.queue.clock() + min(
                    self.lease_seconds / 4.0, 0.5
                )
                refreshed = self.queue.refresh_from_disk(job_id)
                if refreshed is not None and refreshed.state.terminal:
                    self._finish(job_id)
                return
            # We hold the claim; disk is authoritative on whether the
            # job is still PENDING (our view may predate a peer's write).
            refreshed = self.queue.refresh_from_disk(job_id)
            if refreshed is None or refreshed.state is not JobState.PENDING:
                self._release_claim(job_id)
                if refreshed is not None and refreshed.state.terminal:
                    self._finish(job_id)
                return
            record = refreshed
        self.queue.acquire(
            job_id, owner=self.node, lease_seconds=self.lease_seconds
        )
        attempt = record.attempts
        beat = asyncio.create_task(self._heartbeat(job_id))
        try:
            encoded = await self._execute(record, shard)
        except asyncio.CancelledError:
            # Job-level cancellation (cancel() revoked the lease and
            # cancelled the in-flight future) and dispatcher-task
            # cancellation (aclose()) both land here; a task cancel must
            # propagate even when the job was also cancelled, or the
            # dispatcher swallows it and aclose() waits forever.
            task = asyncio.current_task()
            dying = task is not None and task.cancelling()
            requeued = False
            if self.queue.get(job_id).state is not JobState.CANCELLED:
                # Hand the attempt back uncharged: on shutdown the next
                # daemon re-runs it from the spool; otherwise (the future
                # was cancelled out from under us) re-wake it here.
                self.queue.requeue(job_id, refund_attempt=True)
                requeued = True
            self._release_claim(job_id)
            if dying:
                raise
            if requeued:
                self._wake_shard(shard)
            return
        except _RetryableJobError as exc:
            log.warning("job %s: %s", job_id, exc)
            state = self.queue.retry_or_fail(job_id, str(exc))
            self._release_claim(job_id)
            if state is JobState.PENDING:
                self._wake_shard(shard)
            else:
                log.error(
                    "job %s dead-lettered after %d attempt(s): %s",
                    job_id,
                    self.queue.get(job_id).attempts,
                    exc,
                )
                self._finish(job_id)
            return
        except Exception:
            # The job itself raised — deterministic, so retrying cannot
            # help; fail it now with the traceback.
            error = traceback.format_exc(limit=8)
            log.warning("job %s failed:\n%s", job_id, error)
            self.queue.mark_failed(job_id, error)
            self._release_claim(job_id)
            self._finish(job_id)
            return
        finally:
            beat.cancel()
        if self.farm:
            # A peer may have reaped (and even re-run) the job while our
            # attempt executed; its spool record, not ours, decides.
            self.queue.refresh_from_disk(job_id)
        current = self.queue.get(job_id)
        superseded = (
            current.state is not JobState.RUNNING
            or current.attempts != attempt
            or (self.farm and current.owner != self.node)
        )
        if superseded:
            # Cancelled or reaped while the attempt ran: discard the late
            # result (the reaped case re-runs and produces it again).
            log.warning(
                "job %s: discarding result of superseded attempt %d "
                "(state=%s, attempts=%d, owner=%s)",
                job_id,
                attempt,
                current.state.value,
                current.attempts,
                current.owner,
            )
            self._release_claim(job_id)
            return
        program_payload = encoded.get("program")
        if program_payload is not None:
            try:
                self.queue.store_program(job_id, program_payload)
            except OSError:
                # The metrics are the contract; a lost program capture
                # degrades the `program` op, not the job.
                log.warning(
                    "job %s: program capture lost to a spool write failure",
                    job_id,
                )
        self.queue.mark_done(job_id, encoded["metrics"])
        self._release_claim(job_id)
        if self._result_cache is not None:
            try:
                self._result_cache.put(
                    decode_job(record.payload),
                    decode_metrics(encoded["metrics"]),
                )
            except OSError:
                pass  # cache write failure must not fail a DONE job
        self._finish(job_id)
        # Chaos hook: a deterministic stand-in for "SIGKILL mid-run" —
        # fires only under an installed fault plan.
        faults.maybe_exit("daemon.exit", job_id)

    def _execute_inline(
        self, payload: dict[str, Any], slot: int, keep_program: bool = False
    ) -> dict[str, Any]:
        job = decode_job(payload)
        cache = self.shard_caches[slot]
        if job.options.pipeline_cache is None:
            job = replace(
                job, options=replace(job.options, pipeline_cache=cache)
            )
        if keep_program:
            return _capture_envelope(job)
        metrics = get_backend(job.backend).compile(job.circuit, job.options)
        return {"metrics": encode_metrics(metrics), "program": None}


# -- socket front-end --------------------------------------------------------


class ServiceServer:
    """Dual-format socket server exposing a :class:`CompileService`.

    Each message is either a JSON line or a length-prefixed binary frame
    (first-byte dispatch — see :mod:`repro.service.wire`); the server
    answers every request in the framing it arrived in, so JSON-only and
    frame-capable clients coexist on one daemon.  Supported ops: ``ping``,
    ``backends``, ``submit`` (optional ``timeout``/``max_retries``/
    ``key``/``priority``/``deadline``/``keep_program``), ``status``,
    ``result`` (optional ``wait``/``timeout``; with ``stream`` the
    response is a message sequence — per-pass ``progress`` events, then
    ``program_header``/``program_chunk`` messages for ``keep_program``
    jobs, then a terminal ``done`` with the metrics), ``program``,
    ``cancel``, ``jobs``, ``stats``, ``drain``.

    Requests may arrive gzip-wrapped (``{"enc": "gzip+b64", "data": ...}``)
    — large submissions cross the socket compressed.  Responses are
    compressed only for peers that negotiated it (a wrapped request, or an
    ``"enc": "gzip+b64"`` request field) and only past the 64 KiB
    threshold, so old clients are unaffected.  The stream line limit is
    raised past asyncio's 64 KiB default so large plain-JSON lines (an old
    client submitting a big circuit) still frame correctly.
    """

    #: per-line stream buffer cap (asyncio defaults to 64 KiB, which a
    #: large uncompressed submission legitimately exceeds)
    MAX_LINE_BYTES = 32 * 2**20

    def __init__(
        self,
        service: CompileService,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._drained = asyncio.Event()

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def start(self) -> None:
        await self.service.start()
        if self.socket_path is not None:
            stale = Path(self.socket_path)
            if stale.is_socket():  # leftover of a killed daemon
                stale.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path, limit=self.MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle,
                host=self.host,
                port=self.port,
                limit=self.MAX_LINE_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Serve requests until a ``drain`` op completes, then stop."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._drained.wait()

    async def aclose(self) -> None:
        self._drained.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                # First-byte dispatch between the two wire formats: the
                # frame magic can never begin a JSON line, so each message
                # independently declares its framing and the response goes
                # back the same way.
                first = await reader.read(1)
                if not first:
                    break
                framed = first == FRAME_MAGIC[:1]
                request: dict[str, Any] | None = None
                wrapped = False
                error: str | None = None
                if framed:
                    try:
                        rest = await reader.readexactly(FRAME_HEADER_LEN - 1)
                        flags, length = parse_frame_header(first + rest)
                        body = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        break  # peer vanished mid-frame: nothing to answer
                    try:
                        request = decode_frame_payload(flags, body)
                    except WireError as exc:
                        error = str(exc)
                elif first == b"\n":
                    error = "bad request: empty line"
                else:
                    line = first + await reader.readline()
                    try:
                        request, wrapped = decode_line(line)
                    except WireError as exc:
                        error = str(exc)
                accepts_gzip = wrapped or (
                    request is not None
                    and request.get("enc") == WIRE_GZIP_ENCODING
                )
                if (
                    error is None
                    and request is not None
                    and request.get("op") == "result"
                    and request.get("stream")
                ):
                    await self._stream_result(
                        request, writer, framed, accepts_gzip
                    )
                    continue
                if error is not None:
                    response = {"ok": False, "error": error}
                else:
                    assert request is not None
                    # Binary program documents need framing (the raw
                    # record rides after the JSON part), so the ask only
                    # counts on a framed request.
                    response = await self._respond(
                        request,
                        accepts_bindoc=framed and bool(request.get("bindoc")),
                    )
                # Chaos hook: drop the connection after the request was
                # processed but before the response line leaves — the
                # window where a client cannot know whether its submit
                # landed, which is what idempotency keys are for.
                if faults.fires(
                    "socket.drop", str((request or {}).get("op", ""))
                ):
                    break
                self._write_message(writer, response, framed, accepts_gzip)
                await writer.drain()
                if response.get("op") == "drain" and response.get("ok"):
                    self._drained.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _write_message(
        self,
        writer: asyncio.StreamWriter,
        message: dict[str, Any],
        framed: bool,
        accepts_gzip: bool,
    ) -> None:
        """Queue one response message in the framing the request used.

        A ``"_bindoc": (field, bytes)`` attachment (set only for framed
        peers that asked for binary docs) ships as a binary-doc frame
        instead of JSON text.
        """
        if framed:
            bindoc = message.pop("_bindoc", None)
            if bindoc is not None:
                field, doc = bindoc
                data = encode_bindoc_frame(message, field, doc)
            else:
                data = encode_frame(message)
            # Chaos hook: flip the last payload byte of an outbound frame
            # so clients must fail fast with WireError, never hang.
            if faults.fires("frame.corrupt", str(message.get("op", ""))):
                data = data[:-1] + bytes((data[-1] ^ 0xFF,))
            writer.write(data)
        else:
            writer.write(encode_line(message, compress=accepts_gzip))

    async def _stream_result(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        framed: bool,
        accepts_gzip: bool,
    ) -> None:
        """The streaming ``result`` path: progress events while the job
        runs, then the program as stage-range chunks (``keep_program``
        jobs), then a terminal ``done`` message carrying the metrics.

        Every message is a standalone wire message in the request's
        framing, with an ``event`` discriminator — so an upgraded client
        reads until ``done`` (or ``ok: false``), while old daemons that
        ignore ``stream`` simply answer with the single classic response
        (no ``event`` key), which streaming clients accept as terminal.
        """
        service = self.service
        op = "result"

        async def send(message: dict[str, Any]) -> None:
            self._write_message(writer, message, framed, accepts_gzip)
            await writer.drain()

        try:
            job_id = request["id"]
            wait = bool(request.get("wait", True))
            timeout = request.get("timeout")
            loop = asyncio.get_running_loop()
            deadline = (
                loop.time() + float(timeout) if timeout is not None else None
            )
            sent = 0
            while True:
                record = service._lookup(job_id)
                events = service.progress(job_id)
                for event in events[sent:]:
                    await send(
                        {"ok": True, "op": op, "event": "progress", **event}
                    )
                sent = len(events)
                if record.state.terminal:
                    break
                if not wait:
                    raise ServiceError(
                        f"job {job_id} is not finished "
                        f"(state={record.state.value})"
                    )
                if deadline is not None and loop.time() >= deadline:
                    raise ServiceError(
                        f"timed out waiting for {job_id} "
                        f"(state={record.state.value})"
                    )
                # Tail progress while waiting: wake on job completion or
                # every poll slice, whichever comes first.
                event = service._events.setdefault(job_id, asyncio.Event())
                poll = 0.05
                if deadline is not None:
                    poll = min(poll, max(deadline - loop.time(), 0.01))
                try:
                    await asyncio.wait_for(event.wait(), poll)
                except asyncio.TimeoutError:
                    pass
            metrics = await service.result(job_id)
            record = service._lookup(job_id)
            if record.keep_program:
                chunk_stages = int(
                    request.get("chunk_stages") or DEFAULT_STREAM_CHUNK_STAGES
                )
                accepts_bindoc = framed and bool(request.get("bindoc"))
                raw = service.queue.load_program_bytes(job_id)
                if raw is not None:
                    # Binary spool record: decode once, then slice.  An
                    # upgraded peer gets each chunk as a binary-doc frame;
                    # a JSON-only peer gets chunk dicts byte-identical to
                    # what the v2 JSON spool used to produce.
                    store = binformat.decode_program(raw)
                    total = store.num_stages
                    await send(
                        {
                            "ok": True,
                            "op": op,
                            "event": "program_header",
                            "header": store_header_doc(store),
                            "stages": total,
                        }
                    )
                    step = max(1, chunk_stages)
                    for seq, lo in enumerate(range(0, total, step)):
                        chunk = store.chunk_doc(lo, min(lo + step, total))
                        message: dict[str, Any] = {
                            "ok": True,
                            "op": op,
                            "event": "program_chunk",
                            "seq": seq,
                        }
                        if accepts_bindoc:
                            message["_bindoc"] = (
                                "chunk",
                                binformat.encode_chunk(chunk),
                            )
                        else:
                            message["chunk"] = chunk
                        await send(message)
                else:
                    doc = service.queue.load_program(job_id)
                    if doc is not None:
                        await send(
                            {
                                "ok": True,
                                "op": op,
                                "event": "program_header",
                                "header": program_doc_header(doc),
                                "stages": program_doc_stages(doc),
                            }
                        )
                        for seq, chunk in enumerate(
                            iter_program_doc_chunks(doc, chunk_stages)
                        ):
                            await send(
                                {
                                    "ok": True,
                                    "op": op,
                                    "event": "program_chunk",
                                    "seq": seq,
                                    "chunk": chunk,
                                }
                            )
            await send({"ok": True, "op": op, "event": "done", "metrics": metrics})
        except (ServiceError, WireError, ValueError) as exc:
            await send({"ok": False, "op": op, "error": str(exc)})
        except KeyError as exc:
            await send({"ok": False, "op": op, "error": f"missing field {exc}"})

    async def _respond(
        self, request: dict[str, Any], accepts_bindoc: bool = False
    ) -> dict[str, Any]:
        try:
            op = request["op"]
        except (KeyError, TypeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        service = self.service
        try:
            if op == "ping":
                # the "enc"/"frame"/"bindoc" fields double as capability
                # adverts: clients only gzip-compress requests, switch to
                # binary frames, or ask for binary program documents after
                # a ping shows the daemon supports it (an old daemon's
                # ping lacks the fields)
                return {
                    "ok": True,
                    "op": op,
                    "enc": WIRE_GZIP_ENCODING,
                    "frame": FRAME_VERSION,
                    "bindoc": binformat.BINARY_FORMAT_VERSION,
                }
            if op == "backends":
                return {"ok": True, "op": op, "backends": available_backends()}
            if op == "submit":
                control = decode_job_control(request)
                job_id = await service.submit(
                    request.get("job"),
                    timeout=control.timeout,
                    max_retries=control.max_retries,
                    job_key=control.key,
                    priority=control.priority or 0,
                    deadline=control.deadline,
                    keep_program=control.keep_program,
                )
                return {"ok": True, "op": op, "id": job_id}
            if op == "status":
                return {"ok": True, "op": op, "job": service.status(request["id"])}
            if op == "result":
                payload = await service.result(
                    request["id"],
                    wait=bool(request.get("wait", False)),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, "op": op, "metrics": payload}
            if op == "program":
                if accepts_bindoc:
                    raw = service.program_bytes(request["id"])
                    if raw is not None:
                        # _write_message turns the attachment into a
                        # FRAME_FLAG_BINARY_DOC frame; only a legacy
                        # v2-JSON spool falls through to the dict path.
                        return {
                            "ok": True,
                            "op": op,
                            "_bindoc": ("program", raw),
                        }
                return {
                    "ok": True,
                    "op": op,
                    "program": service.program(request["id"]),
                }
            if op == "cancel":
                return {
                    "ok": True,
                    "op": op,
                    "cancelled": service.cancel(request["id"]),
                }
            if op == "jobs":
                return {"ok": True, "op": op, "jobs": service.jobs()}
            if op == "stats":
                return {"ok": True, "op": op, "stats": service.stats()}
            if op == "drain":
                finished = await service.drain()
                return {"ok": True, "op": op, "finished": finished}
        except WireError as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        except ServiceError as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        except KeyError as exc:
            return {"ok": False, "op": op, "error": f"missing field {exc}"}
        return {"ok": False, "error": f"unknown op {op!r}"}


async def _serve(
    socket_path: str | None,
    host: str,
    port: int,
    spool_dir: str | None,
    shards: int,
    prefix_cache_dir: str | None,
    result_cache_dir: str | None,
    inline: bool,
    lease_seconds: float,
    fault_spec: str | None,
    farm: bool,
    node: str | None,
    workers: int | None,
    shard_lease_seconds: float,
) -> None:
    service = CompileService(
        spool_dir=spool_dir,
        shards=shards,
        prefix_cache_dir=prefix_cache_dir,
        result_cache_dir=result_cache_dir,
        inline=inline,
        lease_seconds=lease_seconds,
        fault_plan=fault_spec if fault_spec is not None else faults.active(),
        farm=farm,
        node=node,
        workers=workers,
        shard_lease_seconds=shard_lease_seconds,
    )
    server = ServiceServer(service, socket_path=socket_path, host=host, port=port)
    await server.start()
    # Machine-parseable readiness line: the smoke harness and `repro submit
    # --wait-for` poll for it before connecting.
    print(f"repro-serve: listening on {server.address}", flush=True)
    try:
        await server.serve_until_drained()
    finally:
        await server.aclose()
        print("repro-serve: drained, shutting down", flush=True)


def serve_forever(
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    spool_dir: str | None = None,
    shards: int = 2,
    prefix_cache_dir: str | None = None,
    result_cache_dir: str | None = None,
    inline: bool = False,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    fault_spec: str | None = None,
    farm: bool = False,
    node: str | None = None,
    workers: int | None = None,
    shard_lease_seconds: float = DEFAULT_SHARD_LEASE_SECONDS,
) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    # Chaos harnesses arm a whole daemon subprocess via the environment;
    # an explicit --faults spec wins over it.
    faults.install_from_env()
    try:
        asyncio.run(
            _serve(
                socket_path,
                host,
                port,
                spool_dir,
                shards,
                prefix_cache_dir,
                result_cache_dir,
                inline,
                lease_seconds,
                fault_spec,
                farm,
                node,
                workers,
                shard_lease_seconds,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0
