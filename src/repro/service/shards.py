"""Shard-ownership leases for the compile farm.

A farm is N ``repro serve`` daemons sharing one spool directory with **no
coordinator**: the spool itself is the coordination medium.  Ownership of
each pipeline-prefix shard is a **lease file** under ``spool/shards/``,
written with the same atomic-rename discipline as every other spool file
and renewed by a heartbeat while the owner is alive.  A daemon that dies
(or is partitioned away from the disk) simply stops renewing; once the
deadline passes, any survivor may take the shard over.  Election is
therefore leaderless and first-come: the atomic filesystem operations are
the ballot box.

Two primitives live here:

:class:`ShardBoard`
    One lease file per shard (``shard-0007.json``), holding the owner,
    a monotonically increasing ``epoch`` (bumped on every ownership
    change — a fencing aid for debugging split-brain incidents), and the
    wall-clock deadline.  Claiming a **free** shard is an exclusive
    create (``O_CREAT | O_EXCL`` — exactly one winner).  Taking over an
    **expired** lease is a two-step protocol that is also
    single-winner: atomically rename the corpse aside (only one renamer
    can succeed; ``os.replace`` of a missing file raises), then
    exclusively create the fresh lease.  Renewals verify the owner
    before rewriting, so a daemon that lost its shard while frozen
    discovers that at the next heartbeat and demotes itself instead of
    writing over the new owner.

:class:`JobClaims`
    Per-job claim files (``spool/claims/<job_id>.json``) — the
    mutual-exclusion token a daemon must hold before leasing a job out
    of the queue.  Shard ownership already partitions dispatch, but the
    takeover window (old owner frozen past its lease, new owner
    adopting) and the work-stealing path both put two daemons in front
    of one PENDING job; the exclusive-create claim guarantees only one
    of them runs it.  Claims carry the holder and a timestamp; a claim
    older than the job-lease duration whose record is still PENDING is
    a crash remnant and may be buried and re-claimed.

Fault sites (see :mod:`repro.service.faults`): every lease/claim write
passes through ``lease.write`` — a firing rule turns the write into an
:class:`~repro.service.faults.InjectedFault` so chaos tests can prove a
disk hiccup costs a claim, never consistency.  ``daemon.partition`` makes
:meth:`ShardBoard.renew` silently *skip* the write while reporting
success: the daemon believes it is renewing, the lease file ages, peers
take the shard over — the deterministic stand-in for a network/disk
partition, and exactly the split-brain scenario the claim files guard.

Clocks are injectable everywhere (``clock=``), mirroring the job-lease
discipline of :class:`~repro.service.queue.JobQueue`, so lease expiry and
takeover races are testable without sleeping.  Leases compare wall-clock
times across processes, so farm hosts sharing a spool must share a clock
(NTP-close is plenty: lease durations are seconds, not milliseconds).
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from . import faults

log = logging.getLogger("repro.service")

#: Default shard-lease duration.  Deliberately shorter than the job lease:
#: shard takeover is cheap (re-scan one directory), and the faster a dead
#: daemon's shards are adopted, the less its backlog waits.
DEFAULT_SHARD_LEASE_SECONDS = 10.0


class ShardBoardError(RuntimeError):
    """The shard board is unusable (e.g. shard-count disagreement)."""


@dataclass(frozen=True)
class ShardLease:
    """One decoded lease file."""

    shard: int
    owner: str
    epoch: int
    deadline: float
    claimed_at: float

    def expired(self, now: float) -> bool:
        return self.deadline <= now


def _write_excl(path: Path, text: str) -> None:
    """Exclusive create-and-write: exactly one caller can win the file."""
    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    try:
        os.write(fd, text.encode())
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class ShardBoard:
    """Leaderless shard-ownership election over lease files in *directory*.

    The board is mechanism, not policy: it claims, renews, releases, and
    reports.  Which shards to claim (fair-share budgets, backlog ranking,
    steal decisions) is the server's business.
    """

    def __init__(
        self,
        directory: str | Path,
        owner: str,
        shards: int,
        lease_seconds: float = DEFAULT_SHARD_LEASE_SECONDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.directory = Path(directory)
        self.owner = owner
        self.shards = shards
        self.lease_seconds = lease_seconds
        self.clock = clock
        self._graves = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta()

    # -- meta: every farm member must agree on the shard count ---------------

    def _check_meta(self) -> None:
        """First daemon writes ``meta.json``; later ones must agree.

        Pipeline-prefix routing is ``hash % shards`` — two daemons with
        different shard counts would route one circuit to two different
        shards, splitting its cache affinity and double-dispatching its
        jobs.  Refusing to boot is the only safe answer.
        """
        meta = self.directory / "meta.json"
        try:
            _write_excl(meta, json.dumps({"shards": self.shards}))
            return
        except FileExistsError:
            pass
        try:
            recorded = int(json.loads(meta.read_text())["shards"])
        except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
            return  # corrupt meta: tolerate (the leases themselves agree)
        if recorded != self.shards:
            raise ShardBoardError(
                f"shard-count mismatch: this spool's farm runs "
                f"{recorded} shards, daemon configured for {self.shards}"
            )

    # -- lease files ----------------------------------------------------------

    def _path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard:04d}.json"

    def _payload(self, shard: int, epoch: int, now: float) -> str:
        return json.dumps(
            {
                "shard": shard,
                "owner": self.owner,
                "epoch": epoch,
                "deadline": now + self.lease_seconds,
                "claimed_at": now,
            }
        )

    def read(self, shard: int) -> ShardLease | None:
        """The current lease of *shard*, or None (free or undecodable)."""
        try:
            data = json.loads(self._path(shard).read_text())
            return ShardLease(
                shard=int(data["shard"]),
                owner=str(data["owner"]),
                epoch=int(data["epoch"]),
                deadline=float(data["deadline"]),
                claimed_at=float(data["claimed_at"]),
            )
        except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
            return None

    def claim(self, shard: int) -> bool:
        """Try to take ownership of *shard*; returns whether we own it now.

        Free shard: exclusive create — exactly one contender wins.
        Expired (or corrupt) lease: bury the corpse with an atomic rename
        (single winner — the loser's rename raises), then exclusively
        create the fresh lease.  A lease held unexpired by a peer is
        never touched.
        """
        path = self._path(shard)
        now = self.clock()
        context = f"{self.owner}:shard-{shard}"
        try:
            faults.maybe_fail("lease.write", context)
            _write_excl(path, self._payload(shard, epoch=1, now=now))
            return True
        except FileExistsError:
            pass
        except OSError:
            return False  # injected or real write failure: no claim
        current = self.read(shard)
        if current is not None and not current.expired(now):
            if current.owner == self.owner:
                return True  # already ours (e.g. re-claim after a restart)
            return False  # a live peer holds it
        # Expired or corrupt: takeover.  The rename is the election.
        self._graves += 1
        grave = self.directory / f"{path.name}.dead.{os.getpid()}.{self._graves}"
        try:
            os.replace(path, grave)
        except FileNotFoundError:
            pass  # another daemon buried it first; race for the create below
        except OSError:
            return False
        else:
            try:
                grave.unlink()
            except OSError:
                pass
        epoch = (current.epoch + 1) if current is not None else 1
        try:
            faults.maybe_fail("lease.write", context)
            _write_excl(path, self._payload(shard, epoch=epoch, now=now))
            return True
        except (FileExistsError, OSError):
            return False  # lost the re-create race (or injected failure)

    def renew(self, shard: int) -> bool:
        """Extend our lease on *shard*; returns whether we still own it.

        ``daemon.partition`` chaos rule: the write is silently skipped
        while success is reported — the daemon *believes* it renewed, the
        file ages, and peers legitimately take the shard over.  The
        partitioned daemon discovers the loss at the first renew after
        the rule stops firing (owner mismatch) and must demote itself.
        """
        context = f"{self.owner}:shard-{shard}"
        if faults.fires("daemon.partition", context) is not None:
            return True
        now = self.clock()
        current = self.read(shard)
        if current is None or current.owner != self.owner:
            return False
        if current.expired(now):
            # Our own lease lapsed (we froze past it): a peer may already
            # have buried it.  Never renew an expired lease — re-claim.
            return self.claim(shard)
        try:
            faults.maybe_fail("lease.write", context)
            _atomic_write(
                self._path(shard),
                self._payload(shard, epoch=current.epoch, now=now),
            )
        except OSError:
            return False  # cannot persist the renewal: treat as lost
        return True

    def release(self, shard: int) -> None:
        """Give *shard* up (graceful shutdown) so peers claim it instantly."""
        current = self.read(shard)
        if current is None or current.owner != self.owner:
            return
        try:
            self._path(shard).unlink()
        except OSError:
            pass

    # -- farm-wide views ------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-shard ownership view (the ``stats`` op's ``shard_leases``)."""
        now = self.clock()
        rows: list[dict[str, Any]] = []
        for shard in range(self.shards):
            lease = self.read(shard)
            if lease is None:
                rows.append(
                    {"shard": shard, "owner": None, "epoch": 0,
                     "lease_age": None, "expired": True}
                )
            else:
                rows.append(
                    {
                        "shard": shard,
                        "owner": lease.owner,
                        "epoch": lease.epoch,
                        "lease_age": max(0.0, now - lease.claimed_at),
                        "expired": lease.expired(now),
                    }
                )
        return rows

    def live_owners(self) -> set[str]:
        """Owners currently holding at least one unexpired lease."""
        now = self.clock()
        owners: set[str] = set()
        for shard in range(self.shards):
            lease = self.read(shard)
            if lease is not None and not lease.expired(now):
                owners.add(lease.owner)
        return owners


class JobClaims:
    """Exclusive-create per-job claim files: at most one daemon runs a job.

    ``claim`` must succeed before :meth:`~repro.service.queue.JobQueue.acquire`;
    ``release`` (holder only, token-checked) happens whenever the attempt
    leaves RUNNING; ``revoke`` force-buries the claim of an attempt whose
    job lease expired (its holder is dead or frozen — the reaper path).
    """

    def __init__(
        self,
        directory: str | Path,
        owner: str,
        lease_seconds: float,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.owner = owner
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.directory.mkdir(parents=True, exist_ok=True)
        self._tokens: dict[str, str] = {}
        self._serial = 0
        self._graves = 0

    def _path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def holds(self, job_id: str) -> bool:
        """Whether this daemon holds an unreleased claim on *job_id*."""
        return job_id in self._tokens

    def holder(self, job_id: str) -> str | None:
        try:
            return str(json.loads(self._path(job_id).read_text())["owner"])
        except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
            return None

    def claim(self, job_id: str) -> bool:
        """Take the run-this-job token; returns whether we hold it.

        An existing claim blocks us — unless it is **stale**: older than
        the job-lease duration while its job never left PENDING, i.e. the
        claimant died between claiming and acquiring.  Stale claims are
        buried with the same single-winner rename as shard takeover.
        (Claims of RUNNING jobs are cleared by the lease reaper through
        :meth:`revoke`, never guessed at here.)
        """
        if self.holds(job_id):
            return True
        path = self._path(job_id)
        self._serial += 1
        token = f"{self.owner}/{os.getpid()}/{self._serial}"
        payload = json.dumps(
            {"owner": self.owner, "token": token, "time": self.clock()}
        )
        context = f"{self.owner}:claim:{job_id}"
        try:
            faults.maybe_fail("lease.write", context)
            _write_excl(path, payload)
        except FileExistsError:
            try:
                data = json.loads(path.read_text())
                age = self.clock() - float(data["time"])
            except (OSError, KeyError, TypeError, ValueError,
                    json.JSONDecodeError):
                age = float("inf")  # corrupt claim: treat as stale
            if age <= self.lease_seconds:
                return False
            if not self._bury(path):
                return False
            try:
                faults.maybe_fail("lease.write", context)
                _write_excl(path, payload)
            except (FileExistsError, OSError):
                return False
        except OSError:
            return False
        self._tokens[job_id] = token
        return True

    def release(self, job_id: str) -> None:
        """Drop our claim (no-op unless the file still carries our token)."""
        token = self._tokens.pop(job_id, None)
        if token is None:
            return
        path = self._path(job_id)
        try:
            if json.loads(path.read_text()).get("token") != token:
                return  # superseded (revoked and re-claimed): not ours
        except (OSError, ValueError):
            return
        try:
            path.unlink()
        except OSError:
            pass

    def revoke(self, job_id: str) -> None:
        """Force-clear the claim of a dead/frozen holder (reaper path)."""
        self._tokens.pop(job_id, None)
        self._bury(self._path(job_id))

    def _bury(self, path: Path) -> bool:
        """Atomically rename a claim corpse aside; True if we did the rename."""
        self._graves += 1
        grave = path.with_suffix(f".dead.{os.getpid()}.{self._graves}")
        try:
            os.replace(path, grave)
        except FileNotFoundError:
            return True  # already gone — same outcome
        except OSError:
            return False
        try:
            grave.unlink()
        except OSError:
            pass
        return True
