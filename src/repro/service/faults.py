"""Deterministic, seeded fault injection for the compile service.

The chaos tests need failures that happen *exactly* where and when the
test says — a worker process that dies on the second attempt of one
specific job, a socket that drops after the daemon processed a submit but
before the response left, a spool write that fails on the Nth transition.
Random fault injection cannot assert bit-identical recovery; this module
makes every fault a pure function of the call sequence.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s, each naming an
injection **site** (a string the production code passes at the hook) plus
a trigger: explicit 1-based call indices (``at``), a period (``every``), a
seeded probability (``prob``), and an optional ``match`` substring the
call's context string must contain.  Counters are kept per rule and count
only *matching* calls, so interleaved traffic at one site cannot shift
another rule's schedule.  Given the same plan and the same sequence of
``fires()`` calls, the same faults fire — that is the whole point.

Wired sites (grep for the site string to find the hook):

======================  =====================================================
site                    effect when a rule fires
======================  =====================================================
``worker.crash``        shard worker process hard-exits (``os._exit``) —
                        the dispatcher sees ``BrokenProcessPool``
``job.slow``            the job sleeps ``seconds`` before compiling
                        (drives the per-job timeout path)
``socket.drop``         the server closes the connection after processing
                        a request, before the response line is written
``frame.corrupt``       the last byte of an outbound binary frame is
                        flipped before the write — the client must raise
                        :class:`~repro.service.wire.WireError`, not hang
                        or accept garbage
``spool.write``         a job-record spool write raises :class:`InjectedFault`
``spool.result``        a result spool write raises :class:`InjectedFault`
``daemon.exit``         the daemon hard-exits right after a job completes
                        (the deterministic stand-in for SIGKILL mid-run)
``lease.write``         a shard-board or job-claim file write raises
                        :class:`InjectedFault` (lease churn under disk
                        trouble)
``daemon.partition``    a farm daemon's lease renewal silently writes
                        nothing while still reporting success — the lease
                        ages out and a peer takes the shard over while the
                        "partitioned" daemon believes it still owns it
``steal.race``          sleep ``seconds`` between picking a steal victim
                        and claiming it — widens the window two daemons
                        contend for one job (the claim file picks the
                        single winner)
======================  =====================================================

Plans cross process boundaries as JSON (:meth:`FaultPlan.to_spec` /
:meth:`FaultPlan.from_spec`): the service ships its plan to shard workers
through the pool initializer, and ``python -m repro serve --faults`` /
the ``REPRO_FAULTS`` environment variable arm a whole daemon subprocess.
Production deployments never install a plan, and every hook is a single
``None`` check when none is installed.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any

#: Environment variable holding a JSON fault-plan spec; daemon processes
#: and shard workers install it at boot so subprocess chaos tests can arm
#: faults without any API call.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(OSError):
    """An injected disk/IO failure.

    Subclasses :class:`OSError` so production code paths treat a fired
    rule exactly like a real disk failure — nothing may special-case
    injected faults outside the tests.
    """


@dataclass(frozen=True)
class FaultRule:
    """One trigger at one site.  Fields beyond ``site`` are all optional:

    - ``at``: 1-based matching-call indices that fire;
    - ``every``: additionally fire every Nth matching call;
    - ``prob``: fire with this probability per matching call (seeded —
      deterministic for a given plan seed and call sequence);
    - ``match``: only calls whose context contains this substring count;
    - ``limit``: stop firing after this many firings;
    - ``seconds``: sleep length for ``job.slow`` sites;
    - ``exit_code``: process exit status for crash/exit sites.
    """

    site: str
    at: tuple[int, ...] = ()
    every: int | None = None
    prob: float | None = None
    match: str | None = None
    limit: int | None = None
    seconds: float = 0.05
    exit_code: int = 86

    def to_spec(self) -> dict[str, Any]:
        spec: dict[str, Any] = {"site": self.site}
        if self.at:
            spec["at"] = list(self.at)
        if self.every is not None:
            spec["every"] = self.every
        if self.prob is not None:
            spec["prob"] = self.prob
        if self.match is not None:
            spec["match"] = self.match
        if self.limit is not None:
            spec["limit"] = self.limit
        if self.seconds != 0.05:
            spec["seconds"] = self.seconds
        if self.exit_code != 86:
            spec["exit_code"] = self.exit_code
        return spec

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "FaultRule":
        try:
            return cls(
                site=str(spec["site"]),
                at=tuple(int(i) for i in spec.get("at", ())),
                every=(
                    int(spec["every"]) if spec.get("every") is not None else None
                ),
                prob=(
                    float(spec["prob"]) if spec.get("prob") is not None else None
                ),
                match=(
                    str(spec["match"]) if spec.get("match") is not None else None
                ),
                limit=(
                    int(spec["limit"]) if spec.get("limit") is not None else None
                ),
                seconds=float(spec.get("seconds", 0.05)),
                exit_code=int(spec.get("exit_code", 86)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad fault rule spec {spec!r}: {exc}") from exc


class FaultPlan:
    """A seeded set of fault rules with per-rule matching-call counters."""

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._counts = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        # One RNG per probabilistic rule, seeded from (plan seed, rule
        # index) so rule order — not call interleaving across sites —
        # determines each rule's stream.
        self._rngs = [
            random.Random((seed << 16) ^ i) if r.prob is not None else None
            for i, r in enumerate(self.rules)
        ]

    # -- construction / shipping -------------------------------------------

    @classmethod
    def from_spec(cls, spec: str | dict[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON string or an already-parsed dict."""
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ValueError(f"bad fault plan JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ValueError(
                f"fault plan spec must be an object, got {type(spec).__name__}"
            )
        rules = [FaultRule.from_spec(r) for r in spec.get("rules", [])]
        return cls(rules, seed=int(spec.get("seed", 0)))

    @classmethod
    def coerce(
        cls, plan: "FaultPlan | str | dict[str, Any] | None"
    ) -> "FaultPlan | None":
        if plan is None or isinstance(plan, FaultPlan):
            return plan
        return cls.from_spec(plan)

    def to_spec(self) -> dict[str, Any]:
        """JSON-safe spec that round-trips through :meth:`from_spec`."""
        return {"seed": self.seed, "rules": [r.to_spec() for r in self.rules]}

    # -- firing --------------------------------------------------------------

    def fires(self, site: str, context: str = "") -> FaultRule | None:
        """The first rule firing for this call at *site*, if any.

        Every call increments the matching-call counter of each rule whose
        site and ``match`` apply, whether or not it fires, so schedules
        stay stable as other rules come and go.
        """
        hit: FaultRule | None = None
        for i, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match is not None and rule.match not in context:
                continue
            self._counts[i] += 1
            if hit is not None:
                continue  # keep counting, but first firing rule wins
            if rule.limit is not None and self._fired[i] >= rule.limit:
                continue
            count = self._counts[i]
            firing = count in rule.at or (
                rule.every is not None and count % rule.every == 0
            )
            rng = self._rngs[i]
            if not firing and rng is not None:
                firing = rng.random() < rule.prob  # type: ignore[operator]
            if firing:
                self._fired[i] += 1
                hit = rule
        return hit


#: The process-wide installed plan.  ``None`` (the default everywhere
#: outside chaos tests) makes every hook a single attribute check.
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | str | dict[str, Any] | None) -> FaultPlan | None:
    """Install *plan* (a FaultPlan, JSON string, or spec dict) process-wide."""
    global _PLAN
    _PLAN = FaultPlan.coerce(plan)
    return _PLAN


def install_from_env() -> FaultPlan | None:
    """Install the plan from :data:`FAULTS_ENV`, if the variable is set.

    An already-installed plan is left alone so an explicit
    :func:`install` wins over the environment.
    """
    if _PLAN is not None:
        return _PLAN
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    return install(spec)


def active() -> FaultPlan | None:
    return _PLAN


def reset() -> None:
    """Remove the installed plan (test teardown)."""
    global _PLAN
    _PLAN = None


# -- hook helpers (what production call sites use) ---------------------------


def fires(site: str, context: str = "") -> FaultRule | None:
    """The firing rule for this call, or None — the raw hook."""
    if _PLAN is None:
        return None
    return _PLAN.fires(site, context)


def maybe_fail(site: str, context: str = "") -> None:
    """Raise :class:`InjectedFault` (an OSError) if a rule fires."""
    if fires(site, context) is not None:
        raise InjectedFault(f"injected {site} fault ({context or 'no context'})")


def maybe_sleep(site: str = "job.slow", context: str = "") -> None:
    """Sleep the rule's ``seconds`` if one fires."""
    rule = fires(site, context)
    if rule is not None:
        time.sleep(rule.seconds)


def maybe_exit(site: str, context: str = "") -> None:
    """Hard-exit the process (``os._exit``) if a rule fires.

    ``os._exit`` skips every finally block, atexit hook, and flush — from
    the outside it is indistinguishable from SIGKILL, which is exactly
    what the crash-recovery paths must survive.
    """
    rule = fires(site, context)
    if rule is not None:
        os._exit(rule.exit_code)
