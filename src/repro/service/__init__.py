"""Compile-service daemon: an async job queue over ``compile_many``.

``python -m repro serve`` boots the daemon; :class:`ServiceClient` talks to
it.  See ``docs/ARCHITECTURE.md`` ("Compile service" and "Failure model")
for the queue lifecycle, the shard/cache topology, and the lease/retry
machinery; :mod:`repro.service.faults` is the deterministic
fault-injection layer behind the chaos tests.
"""

from .client import RemoteError, ServiceClient, ServiceUnavailable
from .faults import FAULTS_ENV, FaultPlan, FaultRule, InjectedFault
from .queue import (
    DEFAULT_MAX_RETRIES,
    JobQueue,
    JobRecord,
    JobState,
    QueueError,
)
from .server import CompileService, ServiceError, ServiceServer, serve_forever
from .wire import (
    JobControl,
    WireError,
    decode_job,
    decode_job_control,
    decode_metrics,
    encode_job,
    encode_job_control,
    encode_metrics,
)

__all__ = [
    "CompileService",
    "DEFAULT_MAX_RETRIES",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "JobControl",
    "JobQueue",
    "JobRecord",
    "JobState",
    "QueueError",
    "RemoteError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "WireError",
    "decode_job",
    "decode_job_control",
    "decode_metrics",
    "encode_job",
    "encode_job_control",
    "encode_metrics",
    "serve_forever",
]
