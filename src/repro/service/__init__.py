"""Compile-service daemon: an async job queue over ``compile_many``.

``python -m repro serve`` boots the daemon; :class:`ServiceClient` talks to
it.  See ``docs/ARCHITECTURE.md`` ("Compile service") for the queue
lifecycle and the shard/cache topology.
"""

from .client import RemoteError, ServiceClient, ServiceUnavailable
from .queue import JobQueue, JobRecord, JobState, QueueError
from .server import CompileService, ServiceError, ServiceServer, serve_forever
from .wire import (
    WireError,
    decode_job,
    decode_metrics,
    encode_job,
    encode_metrics,
)

__all__ = [
    "CompileService",
    "JobQueue",
    "JobRecord",
    "JobState",
    "QueueError",
    "RemoteError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "WireError",
    "decode_job",
    "decode_metrics",
    "encode_job",
    "encode_metrics",
    "serve_forever",
]
