"""Compile-service daemon: an async job queue over ``compile_many``.

``python -m repro serve`` boots the daemon; :class:`ServiceClient` talks to
it.  See ``docs/ARCHITECTURE.md`` ("Compile service" and "Failure model")
for the queue lifecycle, the shard/cache topology, and the lease/retry
machinery; :mod:`repro.service.faults` is the deterministic
fault-injection layer behind the chaos tests.
"""

from .client import RemoteError, ServiceClient, ServiceUnavailable
from .faults import FAULTS_ENV, FaultPlan, FaultRule, InjectedFault
from .http import GatewayAuth, HttpGateway, TokenPolicy, serve_gateway
from .queue import (
    DEFAULT_MAX_RETRIES,
    JobQueue,
    JobRecord,
    JobState,
    QueueError,
)
from .server import CompileService, ServiceError, ServiceServer, serve_forever
from .shards import (
    DEFAULT_SHARD_LEASE_SECONDS,
    JobClaims,
    ShardBoard,
    ShardBoardError,
    ShardLease,
)
from .wire import (
    JobControl,
    WireError,
    decode_job,
    decode_job_control,
    decode_metrics,
    encode_job,
    encode_job_control,
    encode_metrics,
)

__all__ = [
    "CompileService",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_SHARD_LEASE_SECONDS",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "GatewayAuth",
    "HttpGateway",
    "InjectedFault",
    "JobClaims",
    "JobControl",
    "JobQueue",
    "JobRecord",
    "JobState",
    "QueueError",
    "RemoteError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "ShardBoard",
    "ShardBoardError",
    "ShardLease",
    "TokenPolicy",
    "WireError",
    "decode_job",
    "decode_job_control",
    "decode_metrics",
    "encode_job",
    "encode_job_control",
    "encode_metrics",
    "serve_forever",
    "serve_gateway",
]
