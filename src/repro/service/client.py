"""Synchronous client for the compile-service daemon.

Speaks the JSON-lines protocol of :class:`~repro.service.server.ServiceServer`
over a Unix or TCP socket, one connection per request (the daemon is
connection-stateless).  Results come back as real
:class:`~repro.analysis.metrics.CompiledMetrics` objects, decoded from the
wire form, so callers can treat a service compile exactly like a local one.

    client = ServiceClient(socket_path="/tmp/repro.sock")
    job_id = client.submit(CompileJob("Atomique", circuit))
    metrics = client.result(job_id, wait=True)

Transient transport failures (daemon restarting, connection reset, a
dropped socket) are retried with exponential backoff and jitter.  The
retry rule is strict about duplicates: a request that *may have reached
the daemon* (the socket died after the request was written) is only
retried when repeating it is safe — read-only ops, ``cancel``, and
``submit`` carrying an idempotency ``key`` (the daemon deduplicates on
the key, so the retry returns the original job id instead of enqueuing a
second job).  A keyless submit whose response was lost raises
:class:`ServiceUnavailable` rather than risk compiling the job twice.
"""

from __future__ import annotations

import random
import socket
import time
from pathlib import Path
from typing import Any

from ..analysis.metrics import CompiledMetrics
from ..core.serialize import store_from_program_header
from ..experiments.batch import CompileJob
from .wire import (
    FRAME_HEADER_LEN,
    FRAME_MAGIC,
    WIRE_COMPRESS_THRESHOLD,
    WIRE_GZIP_ENCODING,
    BinaryDoc,
    JobControl,
    WireError,
    compress_line,
    decode_frame_payload,
    decode_line,
    decode_metrics,
    decode_program,
    encode_frame,
    encode_job,
    encode_job_control,
    encode_line,
    parse_frame_header,
)

#: Ops that are safe to repeat verbatim even when the first copy may have
#: been processed.  ``submit`` joins this set only when it carries an
#: idempotency key.
_IDEMPOTENT_OPS = frozenset(
    {"ping", "backends", "status", "result", "program", "cancel", "jobs",
     "stats"}
)


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached, or the connection died mid-request.

    ``request_sent`` distinguishes "never reached the daemon" (always safe
    to retry) from "the request was written but no response came back"
    (retried only for idempotent ops)."""

    request_sent: bool = False


class RemoteError(RuntimeError):
    """The daemon rejected a request (its error message is the payload)."""


class ServiceClient:
    """One client endpoint: either ``socket_path`` (Unix) or ``host``/``port``.

    *retries*/*backoff_base*/*backoff_cap* shape the transient-failure
    policy: attempt n sleeps ``min(base * 2**n, cap)`` scaled by a jitter
    factor in [0.5, 1.5).  *backoff_seed* makes the jitter sequence
    deterministic — the chaos tests pin it so a replayed fault plan meets
    an identical retry schedule."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 300.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: int | None = None,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket_path or a port")
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._jitter = random.Random(backoff_seed)
        #: whether the daemon unwraps gzip+b64 requests (None = unknown;
        #: probed via ping before the first large request)
        self._server_gzip: bool | None = None
        #: whether the daemon speaks length-prefixed binary frames (None =
        #: unknown; set by any ping's capability advert — requests upgrade
        #: to frames only once a ping has confirmed the daemon is new)
        self._server_frame: bool | None = None
        #: whether the daemon ships binary columnar program documents
        #: (same advert discipline as the frame flag; only asked for on
        #: the program-bearing ops, and only over frames)
        self._server_bindoc: bool | None = None
        #: chunk-transfer accounting of the last :meth:`result_stream`
        #: call — ``{"binary_chunks": n, "json_chunks": m}``
        self.last_stream_stats: dict[str, int] | None = None

    # -- transport -----------------------------------------------------------

    def _connect(self, timeout: float) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(self.socket_path)
                return sock
            assert self.port is not None
            return socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot reach compile service at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {exc}"
            ) from exc

    def request(
        self,
        payload: dict[str, Any],
        timeout: float | None = None,
        idempotent: bool | None = None,
    ) -> dict[str, Any]:
        """Send one op, return the decoded response; raise on ``ok: false``.

        *timeout* overrides the client's socket timeout for this request —
        blocking ops (``result`` with ``wait``, ``drain``) pass a deadline
        comfortably past the server-side one so the server's answer,
        including its timeout error, always arrives before the socket
        gives up.

        Transient :class:`ServiceUnavailable` failures retry up to
        ``self.retries`` times with exponential backoff; *idempotent*
        overrides the built-in safe-to-repeat classification (see module
        docstring).  :class:`RemoteError` — the daemon answered and said
        no — never retries."""
        op = payload.get("op")
        if idempotent is None:
            idempotent = op in _IDEMPOTENT_OPS or (
                op == "submit" and payload.get("key") is not None
            )
        attempt = 0
        while True:
            try:
                return self._request_once(payload, timeout)
            except ServiceUnavailable as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                if exc.request_sent and not idempotent:
                    raise
                delay = min(
                    self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap
                )
                time.sleep(delay * (0.5 + self._jitter.random()))

    def _read_message(self, stream) -> dict[str, Any] | None:
        """One response message off *stream*: binary frame or JSON line.

        Dispatches on the first byte (the frame magic can never begin a
        JSON line), so the client accepts either framing regardless of
        what it sent.  Returns ``None`` on a cleanly closed stream; raises
        :class:`~repro.service.wire.WireError` on truncated or corrupt
        frames — a bad length prefix fails here instead of hanging."""
        first = stream.read(1)
        if not first:
            return None
        if first == FRAME_MAGIC[:1]:
            rest = stream.read(FRAME_HEADER_LEN - 1)
            if len(rest) != FRAME_HEADER_LEN - 1:
                raise WireError("frame truncated: incomplete header")
            flags, length = parse_frame_header(first + rest)
            body = stream.read(length)
            if len(body) != length:
                raise WireError(
                    f"frame truncated: header says {length} bytes, "
                    f"got {len(body)}"
                )
            return decode_frame_payload(flags, body)
        line = first + stream.readline()
        payload, _compressed = decode_line(line)
        return payload

    def _encode_request(self, payload: dict[str, Any]) -> bytes:
        """Wire bytes for *payload* in the best negotiated format.

        Binary frames once a ping confirmed the daemon speaks them;
        otherwise a JSON line, gzip-wrapped past the threshold when the
        daemon advertised the encoding (probing via ping first if needed).
        An un-pinged daemon gets plain JSON — byte-identical to the
        pre-frame client, so old daemons never see an unknown format."""
        line_out = encode_line(payload)
        if len(line_out) - 1 > WIRE_COMPRESS_THRESHOLD:
            if self._server_gzip is None and payload.get("op") != "ping":
                self.ping()  # sets capability flags from the advert
        if self._server_frame:
            return encode_frame(payload)
        if len(line_out) - 1 > WIRE_COMPRESS_THRESHOLD and self._server_gzip:
            return compress_line(line_out)
        return line_out

    def _request_once(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """One wire round-trip (the retry loop lives in :meth:`request`).

        Every request declares ``"enc": "gzip+b64"`` (an unknown field to
        old daemons, which ignore it), so a new daemon may compress its
        large responses back.  Requests over 64 KiB are themselves
        gzip-compressed, but only after a one-time ping confirms the
        daemon advertises the encoding — an old daemon cannot unwrap the
        envelope, so large submissions to it stay plain JSON.  Once any
        ping shows the daemon speaks binary frames, requests (and so
        responses) switch to frames wholesale."""
        if "enc" not in payload:
            payload = {**payload, "enc": WIRE_GZIP_ENCODING}
        data_out = self._encode_request(payload)
        sock = self._connect(timeout if timeout is not None else self.timeout)
        sent = False
        try:
            with sock.makefile("rwb") as stream:
                stream.write(data_out)
                stream.flush()
                sent = True
                response = self._read_message(stream)
        except WireError as exc:
            raise RemoteError(f"undecodable service response: {exc}") from exc
        except OSError as exc:  # read timeout / reset mid-request
            failure = ServiceUnavailable(
                f"no response from compile service: {exc}"
            )
            failure.request_sent = sent
            raise failure from exc
        finally:
            sock.close()
        if response is None:
            # The daemon closed without answering — it may or may not have
            # processed the request (this is exactly a dropped socket).
            failure = ServiceUnavailable("connection closed before a response")
            failure.request_sent = True
            raise failure
        if response.get("op") == "ping" and response.get("ok"):
            self._server_gzip = response.get("enc") == WIRE_GZIP_ENCODING
            self._server_frame = bool(response.get("frame"))
            self._server_bindoc = bool(response.get("bindoc"))
        if not response.get("ok"):
            raise RemoteError(response.get("error", "unknown service error"))
        return response

    # -- ops -----------------------------------------------------------------

    def ping(self, timeout: float | None = None) -> bool:
        return bool(self.request({"op": "ping"}, timeout=timeout)["ok"])

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.05) -> None:
        """Block until the daemon answers pings (boot synchronization).

        Each probe uses a short socket timeout of its own: a live daemon
        answers in milliseconds, and a connect that lands in a dead
        listener's backlog (never accepted) must not absorb the whole
        deadline in one blocking ``recv``."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.ping(timeout=5.0)
                return
            except (ServiceUnavailable, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def backends(self) -> list[str]:
        return list(self.request({"op": "backends"})["backends"])

    def submit(
        self,
        job: CompileJob | dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
        key: str | None = None,
        priority: int | None = None,
        deadline: float | None = None,
        keep_program: bool = False,
    ) -> str:
        """Submit one job; returns its id.

        *timeout* and *max_retries* bound the daemon-side attempts; *key*
        makes the submission idempotent (and thereby retryable across a
        dropped socket): the daemon returns the existing job's id for a
        key it has already accepted.  *priority* (higher dispatches
        first) and *deadline* (seconds from now the job must dispatch by)
        shape queue ordering; *keep_program* captures the compiled
        program for :meth:`program` (Atomique jobs only)."""
        payload = encode_job(job) if isinstance(job, CompileJob) else job
        request: dict[str, Any] = {"op": "submit", "job": payload}
        request.update(
            encode_job_control(
                JobControl(
                    timeout=timeout,
                    max_retries=max_retries,
                    key=key,
                    priority=priority,
                    deadline=deadline,
                    keep_program=keep_program,
                )
            )
        )
        return str(self.request(request)["id"])

    def submit_many(
        self,
        jobs: list[CompileJob | dict[str, Any]],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> list[str]:
        return [
            self.submit(job, timeout=timeout, max_retries=max_retries)
            for job in jobs
        ]

    def status(self, job_id: str) -> dict[str, Any]:
        return dict(self.request({"op": "status", "id": job_id})["job"])

    def result(
        self, job_id: str, wait: bool = True, timeout: float | None = None
    ) -> CompiledMetrics:
        server_timeout = timeout if timeout is not None else self.timeout
        response = self.request(
            {
                "op": "result",
                "id": job_id,
                "wait": wait,
                "timeout": server_timeout,
            },
            # The server enforces the deadline; give the socket slack so
            # its timeout error (not a bare socket timeout) reaches us.
            timeout=server_timeout + 30.0,
        )
        return decode_metrics(response["metrics"])

    def results(self, job_ids: list[str]) -> list[CompiledMetrics]:
        """Results in the given (submission) order, waiting for each."""
        return [self.result(job_id, wait=True) for job_id in job_ids]

    def result_stream(
        self,
        job_id: str,
        timeout: float | None = None,
        on_event: Any = None,
        chunk_stages: int | None = None,
    ):
        """Streaming :meth:`result`: per-pass progress plus the compiled
        program in stage-range chunks, over one connection.

        Returns ``(metrics, store)`` where *store* is an assembled
        :class:`~repro.core.program.ProgramStore` when the job was
        submitted with ``keep_program=True`` (else ``None``).  *on_event*
        — if given — is called with each raw ``progress`` message as it
        arrives (keys ``pass``, ``index``, ``total``, ``seconds``,
        ``attempt``); *chunk_stages* overrides the server's chunk size.

        Against a pre-streaming daemon the ``"stream"`` flag is ignored
        and a single classic response comes back; it is recognised by its
        missing ``"event"`` key and treated as the terminal message, so
        callers degrade to plain :meth:`result` behaviour (no program)."""
        server_timeout = timeout if timeout is not None else self.timeout
        if self._server_frame is None:
            try:
                self.ping()
            except (ServiceUnavailable, RemoteError):
                pass  # the request below surfaces a real outage itself
        payload: dict[str, Any] = {
            "op": "result",
            "id": job_id,
            "wait": True,
            "stream": True,
            "timeout": server_timeout,
            "enc": WIRE_GZIP_ENCODING,
        }
        if self._server_frame and self._server_bindoc:
            payload["bindoc"] = 1
        if chunk_stages is not None:
            payload["chunk_stages"] = int(chunk_stages)
        data_out = self._encode_request(payload)
        # Server enforces the deadline; give the socket slack (see result).
        sock = self._connect(server_timeout + 30.0)
        metrics_payload: dict[str, Any] | None = None
        store = None
        stats = {"binary_chunks": 0, "json_chunks": 0}
        try:
            with sock.makefile("rwb") as stream:
                stream.write(data_out)
                stream.flush()
                while True:
                    message = self._read_message(stream)
                    if message is None:
                        failure = ServiceUnavailable(
                            "connection closed mid-stream"
                        )
                        failure.request_sent = True
                        raise failure
                    if not message.get("ok"):
                        raise RemoteError(
                            message.get("error", "unknown service error")
                        )
                    event = message.get("event")
                    if event is None:
                        # Old daemon: classic single result response.
                        metrics_payload = message["metrics"]
                        break
                    if event == "progress":
                        if on_event is not None:
                            on_event(dict(message))
                    elif event == "program_header":
                        store = store_from_program_header(message["header"])
                    elif event == "program_chunk":
                        if store is None:
                            raise RemoteError(
                                "program_chunk before program_header"
                            )
                        chunk = message["chunk"]
                        if isinstance(chunk, BinaryDoc):
                            stats["binary_chunks"] += 1
                            chunk = chunk.to_chunk()
                        else:
                            stats["json_chunks"] += 1
                        store.extend_from_chunk(chunk)
                    elif event == "done":
                        metrics_payload = message["metrics"]
                        break
                    # Unknown events from a newer daemon are skipped.
        except WireError as exc:
            raise RemoteError(f"undecodable service response: {exc}") from exc
        except OSError as exc:
            failure = ServiceUnavailable(
                f"no response from compile service: {exc}"
            )
            failure.request_sent = True
            raise failure from exc
        finally:
            sock.close()
        self.last_stream_stats = stats
        return decode_metrics(metrics_payload), store

    def _wants_bindoc(self) -> bool:
        """Whether to ask for binary program documents on this request.

        Needs both a ping-confirmed ``bindoc`` advert and frame support —
        the binary attachment rides inside a frame, so a line-speaking
        peer can never carry one.  Pings once if the advert is unknown;
        an unreachable daemon just leaves the request on the JSON path
        (the request itself will surface the outage)."""
        if self._server_bindoc is None:
            try:
                self.ping()
            except (ServiceUnavailable, RemoteError):
                pass
        return bool(self._server_frame and self._server_bindoc)

    def program(self, job_id: str):
        """The compiled program of a DONE job submitted with
        ``keep_program=True``, decoded to a
        :class:`~repro.core.program.ProgramStore`.

        Fetched as a v3 binary columnar record when the daemon advertises
        the codec; the v2 JSON document otherwise — the decoded store is
        bit-identical either way."""
        request: dict[str, Any] = {"op": "program", "id": job_id}
        if self._wants_bindoc():
            request["bindoc"] = 1
        response = self.request(request)
        doc = response["program"]
        if isinstance(doc, BinaryDoc):
            return doc.to_store()
        return decode_program(doc)

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel", "id": job_id})["cancelled"])

    def jobs(self) -> list[dict[str, Any]]:
        return list(self.request({"op": "jobs"})["jobs"])

    def stats(self) -> dict[str, Any]:
        return dict(self.request({"op": "stats"})["stats"])

    def drain(self, timeout: float | None = None) -> int:
        """Finish everything queued and shut the daemon down; returns the
        number of jobs completed during the drain.  Blocks until the
        daemon has finished its backlog (*timeout* bounds the wait)."""
        return int(
            self.request(
                {"op": "drain"},
                timeout=timeout if timeout is not None else self.timeout,
            )["finished"]
        )
