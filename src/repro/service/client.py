"""Synchronous client for the compile-service daemon.

Speaks the JSON-lines protocol of :class:`~repro.service.server.ServiceServer`
over a Unix or TCP socket, one connection per request (the daemon is
connection-stateless).  Results come back as real
:class:`~repro.analysis.metrics.CompiledMetrics` objects, decoded from the
wire form, so callers can treat a service compile exactly like a local one.

    client = ServiceClient(socket_path="/tmp/repro.sock")
    job_id = client.submit(CompileJob("Atomique", circuit))
    metrics = client.result(job_id, wait=True)
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any

from ..analysis.metrics import CompiledMetrics
from ..experiments.batch import CompileJob
from .wire import (
    WIRE_COMPRESS_THRESHOLD,
    WIRE_GZIP_ENCODING,
    WireError,
    compress_line,
    decode_line,
    decode_metrics,
    encode_job,
    encode_line,
)


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached at the configured address."""


class RemoteError(RuntimeError):
    """The daemon rejected a request (its error message is the payload)."""


class ServiceClient:
    """One client endpoint: either ``socket_path`` (Unix) or ``host``/``port``."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 300.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket_path or a port")
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.timeout = timeout
        #: whether the daemon unwraps gzip+b64 requests (None = unknown;
        #: probed via ping before the first large request)
        self._server_gzip: bool | None = None

    # -- transport -----------------------------------------------------------

    def _connect(self, timeout: float) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(self.socket_path)
                return sock
            assert self.port is not None
            return socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot reach compile service at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {exc}"
            ) from exc

    def request(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """Send one op, return the decoded response; raise on ``ok: false``.

        *timeout* overrides the client's socket timeout for this request —
        blocking ops (``result`` with ``wait``, ``drain``) pass a deadline
        comfortably past the server-side one so the server's answer,
        including its timeout error, always arrives before the socket
        gives up.

        Every request declares ``"enc": "gzip+b64"`` (an unknown field to
        old daemons, which ignore it), so a new daemon may compress its
        large responses back.  Requests over 64 KiB are themselves
        gzip-compressed, but only after a one-time ping confirms the
        daemon advertises the encoding — an old daemon cannot unwrap the
        envelope, so large submissions to it stay plain JSON."""
        if "enc" not in payload:
            payload = {**payload, "enc": WIRE_GZIP_ENCODING}
        line_out = encode_line(payload)
        if len(line_out) - 1 > WIRE_COMPRESS_THRESHOLD:
            if self._server_gzip is None and payload.get("op") != "ping":
                self.ping()  # sets _server_gzip from the capability advert
            if self._server_gzip:
                line_out = compress_line(line_out)
        sock = self._connect(timeout if timeout is not None else self.timeout)
        try:
            with sock.makefile("rwb") as stream:
                stream.write(line_out)
                stream.flush()
                line = stream.readline()
        except OSError as exc:  # read timeout / reset mid-request
            raise ServiceUnavailable(
                f"no response from compile service: {exc}"
            ) from exc
        finally:
            sock.close()
        if not line:
            raise ServiceUnavailable("connection closed before a response")
        try:
            response, _compressed = decode_line(line)
        except WireError as exc:
            raise RemoteError(f"undecodable service response: {exc}") from exc
        if response.get("op") == "ping" and response.get("ok"):
            self._server_gzip = response.get("enc") == WIRE_GZIP_ENCODING
        if not response.get("ok"):
            raise RemoteError(response.get("error", "unknown service error"))
        return response

    # -- ops -----------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.05) -> None:
        """Block until the daemon answers pings (boot synchronization)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.ping()
                return
            except (ServiceUnavailable, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def backends(self) -> list[str]:
        return list(self.request({"op": "backends"})["backends"])

    def submit(self, job: CompileJob | dict[str, Any]) -> str:
        payload = encode_job(job) if isinstance(job, CompileJob) else job
        return str(self.request({"op": "submit", "job": payload})["id"])

    def submit_many(self, jobs: list[CompileJob | dict[str, Any]]) -> list[str]:
        return [self.submit(job) for job in jobs]

    def status(self, job_id: str) -> dict[str, Any]:
        return dict(self.request({"op": "status", "id": job_id})["job"])

    def result(
        self, job_id: str, wait: bool = True, timeout: float | None = None
    ) -> CompiledMetrics:
        server_timeout = timeout if timeout is not None else self.timeout
        response = self.request(
            {
                "op": "result",
                "id": job_id,
                "wait": wait,
                "timeout": server_timeout,
            },
            # The server enforces the deadline; give the socket slack so
            # its timeout error (not a bare socket timeout) reaches us.
            timeout=server_timeout + 30.0,
        )
        return decode_metrics(response["metrics"])

    def results(self, job_ids: list[str]) -> list[CompiledMetrics]:
        """Results in the given (submission) order, waiting for each."""
        return [self.result(job_id, wait=True) for job_id in job_ids]

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel", "id": job_id})["cancelled"])

    def jobs(self) -> list[dict[str, Any]]:
        return list(self.request({"op": "jobs"})["jobs"])

    def stats(self) -> dict[str, Any]:
        return dict(self.request({"op": "stats"})["stats"])

    def drain(self, timeout: float | None = None) -> int:
        """Finish everything queued and shut the daemon down; returns the
        number of jobs completed during the drain.  Blocks until the
        daemon has finished its backlog (*timeout* bounds the wait)."""
        return int(
            self.request(
                {"op": "drain"},
                timeout=timeout if timeout is not None else self.timeout,
            )["finished"]
        )
