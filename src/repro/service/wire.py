"""JSON wire codecs for the compile service.

A submitted job crosses a process (and possibly machine) boundary, so the
service speaks JSON rather than pickle: a :class:`CompileJob` becomes a
nested dict of primitives, and a finished :class:`CompiledMetrics` comes
back the same way.  Backends are resolved *by name* through the registry on
the server side, so a client never ships code.

Circuits travel as explicit gate lists, not QASM: ``json`` emits floats
with ``repr``-exact shortest round-trip text, so a decoded job is
bit-identical to the submitted one — the differential tests compare a
service compile against a direct in-process compile down to the last bit.

Every ``encode_*``/``decode_*`` pair is lossless for the types the compile
path consumes.  ``pipeline_cache`` never travels: it is process-local
identity state, and the service's workers install their own shard cache.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.compiler import AtomiqueConfig
from ..core.constraints import ConstraintToggles
from ..core.router import RouterConfig
from ..experiments.batch import CompileJob
from ..hardware.parameters import HardwareParams
from ..hardware.raa import ArrayShape, RAAArchitecture
from ..noise.fidelity import FidelityReport


class WireError(ValueError):
    """A payload could not be decoded into a compile job."""


# -- circuits ---------------------------------------------------------------


def encode_circuit(circuit: QuantumCircuit) -> dict[str, Any]:
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "gates": [
            [g.name, list(g.qubits), list(g.params)] for g in circuit.gates
        ],
    }


def decode_circuit(payload: dict[str, Any]) -> QuantumCircuit:
    try:
        circuit = QuantumCircuit(
            int(payload["num_qubits"]), name=str(payload.get("name", "circuit"))
        )
        for name, qubits, params in payload["gates"]:
            circuit.append(Gate(name, tuple(qubits), tuple(params)))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad circuit payload: {exc}") from exc
    return circuit


# -- hardware ---------------------------------------------------------------


def encode_params(params: HardwareParams) -> dict[str, float]:
    return asdict(params)


def decode_params(payload: dict[str, float]) -> HardwareParams:
    try:
        return HardwareParams(**payload)
    except TypeError as exc:
        raise WireError(f"bad hardware params: {exc}") from exc


def encode_architecture(arch: RAAArchitecture) -> dict[str, Any]:
    return {
        "slm": [arch.slm_shape.rows, arch.slm_shape.cols],
        "aods": [[s.rows, s.cols] for s in arch.aod_shapes],
        "params": encode_params(arch.params),
    }


def decode_architecture(payload: dict[str, Any]) -> RAAArchitecture:
    try:
        return RAAArchitecture(
            slm_shape=ArrayShape(*payload["slm"]),
            aod_shapes=[ArrayShape(*s) for s in payload["aods"]],
            params=decode_params(payload["params"]),
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"bad architecture payload: {exc}") from exc


# -- compiler config --------------------------------------------------------


def encode_config(config: AtomiqueConfig) -> dict[str, Any]:
    router = config.router
    return {
        "gamma": config.gamma,
        "array_mapper": config.array_mapper,
        "atom_mapper": config.atom_mapper,
        "seed": config.seed,
        "router": {
            "toggles": asdict(router.toggles),
            "serial": router.serial,
            "max_candidate_sites": router.max_candidate_sites,
            "cooling_threshold": router.cooling_threshold,
            "ordering_trials": router.ordering_trials,
            "seed": router.seed,
        },
    }


def decode_config(payload: dict[str, Any]) -> AtomiqueConfig:
    try:
        r = payload["router"]
        router = RouterConfig(
            toggles=ConstraintToggles(**r["toggles"]),
            serial=bool(r["serial"]),
            max_candidate_sites=int(r["max_candidate_sites"]),
            cooling_threshold=r["cooling_threshold"],
            ordering_trials=int(r["ordering_trials"]),
            seed=int(r["seed"]),
        )
        return AtomiqueConfig(
            gamma=float(payload["gamma"]),
            array_mapper=str(payload["array_mapper"]),
            atom_mapper=str(payload["atom_mapper"]),
            router=router,
            seed=int(payload["seed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad config payload: {exc}") from exc


# -- options and jobs -------------------------------------------------------


def _freeze(value: Any) -> Any:
    """JSON arrays back to tuples so options stay hashable/cache-keyable."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def encode_options(options: CompileOptions) -> dict[str, Any]:
    return {
        "raa": (
            encode_architecture(options.raa) if options.raa is not None else None
        ),
        "config": (
            encode_config(options.config) if options.config is not None else None
        ),
        "params": (
            encode_params(options.params) if options.params is not None else None
        ),
        "seed": options.seed,
        "label": options.label,
        "extra": [[k, v] for k, v in options.extra],
    }


def decode_options(payload: dict[str, Any]) -> CompileOptions:
    try:
        return CompileOptions(
            raa=(
                decode_architecture(payload["raa"])
                if payload.get("raa") is not None
                else None
            ),
            config=(
                decode_config(payload["config"])
                if payload.get("config") is not None
                else None
            ),
            params=(
                decode_params(payload["params"])
                if payload.get("params") is not None
                else None
            ),
            seed=int(payload.get("seed", 7)),
            label=payload.get("label"),
            extra=tuple(
                (str(k), _freeze(v)) for k, v in payload.get("extra", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad options payload: {exc}") from exc


def encode_job(job: CompileJob) -> dict[str, Any]:
    return {
        "backend": job.backend,
        "circuit": encode_circuit(job.circuit),
        "options": encode_options(job.options),
    }


def decode_job(payload: dict[str, Any]) -> CompileJob:
    if not isinstance(payload, dict):
        raise WireError(f"job payload must be a dict, got {type(payload).__name__}")
    try:
        backend = str(payload["backend"])
        circuit = payload["circuit"]
        options = payload.get("options")
    except KeyError as exc:
        raise WireError(f"job payload missing field {exc}") from exc
    return CompileJob(
        backend=backend,
        circuit=decode_circuit(circuit),
        options=(
            decode_options(options) if options is not None else CompileOptions()
        ),
    )


# -- results ----------------------------------------------------------------


def encode_metrics(metrics: CompiledMetrics) -> dict[str, Any]:
    return {
        "benchmark": metrics.benchmark,
        "architecture": metrics.architecture,
        "num_qubits": metrics.num_qubits,
        "num_2q_gates": metrics.num_2q_gates,
        "num_1q_gates": metrics.num_1q_gates,
        "depth": metrics.depth,
        "fidelity": asdict(metrics.fidelity),
        "additional_cnots": metrics.additional_cnots,
        "compile_seconds": metrics.compile_seconds,
        "execution_seconds": metrics.execution_seconds,
        "extras": dict(metrics.extras),
    }


def decode_metrics(payload: dict[str, Any]) -> CompiledMetrics:
    try:
        return CompiledMetrics(
            benchmark=payload["benchmark"],
            architecture=payload["architecture"],
            num_qubits=int(payload["num_qubits"]),
            num_2q_gates=int(payload["num_2q_gates"]),
            num_1q_gates=int(payload["num_1q_gates"]),
            depth=int(payload["depth"]),
            fidelity=FidelityReport(**payload["fidelity"]),
            additional_cnots=int(payload["additional_cnots"]),
            compile_seconds=float(payload["compile_seconds"]),
            execution_seconds=float(payload["execution_seconds"]),
            extras=dict(payload["extras"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad metrics payload: {exc}") from exc
