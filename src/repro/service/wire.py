"""JSON wire codecs for the compile service.

A submitted job crosses a process (and possibly machine) boundary, so the
service speaks JSON rather than pickle: a :class:`CompileJob` becomes a
nested dict of primitives, and a finished :class:`CompiledMetrics` comes
back the same way.  Backends are resolved *by name* through the registry on
the server side, so a client never ships code.

Circuits travel as explicit gate lists, not QASM: ``json`` emits floats
with ``repr``-exact shortest round-trip text, so a decoded job is
bit-identical to the submitted one — the differential tests compare a
service compile against a direct in-process compile down to the last bit.

Every ``encode_*``/``decode_*`` pair is lossless for the types the compile
path consumes.  ``pipeline_cache`` never travels: it is process-local
identity state, and the service's workers install their own shard cache.

:func:`encode_program`/:func:`decode_program` define the program codec for
service surfaces — the compact columnar v2 format (arrays of numbers, no
per-gate dicts).  No daemon op ships programs yet (only metrics travel
today); a future ``program`` op should use exactly this pair.  Any JSON
line larger than :data:`WIRE_COMPRESS_THRESHOLD` can be wrapped in a
``{"enc": "gzip+b64", "data": ...}`` envelope (:func:`encode_line` /
:func:`decode_line`).  Compression is negotiated in both directions: the
server only compresses a response when the request arrived compressed or
carried an ``"enc": "gzip+b64"`` field, and the client only compresses a
large request after a ping shows the daemon advertises the encoding — so
unupgraded peers on either side keep exchanging plain JSON.

Alongside the JSON lines the wire speaks **length-prefixed binary frames**
(:func:`encode_frame` / :func:`parse_frame_header` /
:func:`decode_frame_payload`): a fixed 8-byte header — 2 magic bytes, a
version, a flags byte, a big-endian u32 payload length — followed by the
JSON body, raw-deflate compressed past the same threshold (no base64, so
large payloads ship ~25% smaller than the line envelope and decode without
a text pass).  The first magic byte can never begin a JSON line, so both
formats coexist per-message on one connection: a server answers each
request in the framing it arrived in, and a client only sends frames after
a ping shows the daemon advertises ``"frame": 1`` — unupgraded peers on
either side keep exchanging byte-identical JSON lines.

Frames can additionally carry a **binary columnar program document**
(:data:`FRAME_FLAG_BINARY_DOC`, :func:`encode_bindoc_frame`): the body is a
u32 length-prefixed JSON message followed by the raw v3 record from
:mod:`repro.core.binformat`, so million-scalar programs skip JSON text
entirely.  The receiving side surfaces the attachment as a
:class:`BinaryDoc` in the decoded payload.  Like compression, the bit is
negotiated: a client only asks for binary docs (``"bindoc": 1`` in the
request) after a ping shows the daemon advertises it, and the server only
answers with one when the request asked — JSON-only peers keep exchanging
byte-identical v2 documents.
"""

from __future__ import annotations

import base64
import gzip
import json
import zlib
from dataclasses import asdict, dataclass
from typing import Any

from ..analysis.metrics import CompiledMetrics
from ..baselines.registry import CompileOptions
from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.compiler import AtomiqueConfig
from ..core.constraints import ConstraintToggles
from ..core.program import Program, ProgramStore
from ..core.router import RouterConfig
from ..core.serialize import program_from_dict, program_to_dict
from ..experiments.batch import CompileJob
from ..hardware.parameters import HardwareParams
from ..hardware.raa import ArrayShape, RAAArchitecture
from ..noise.fidelity import FidelityReport


class WireError(ValueError):
    """A payload could not be decoded into a compile job."""


# -- line framing ------------------------------------------------------------

#: Lines longer than this (encoded bytes) are gzip-compressed when the peer
#: negotiated the ``gzip+b64`` encoding.
WIRE_COMPRESS_THRESHOLD = 64 * 1024

#: The only transfer encoding the protocol knows.
WIRE_GZIP_ENCODING = "gzip+b64"


def compress_line(line: bytes) -> bytes:
    """Gzip-wrap an already-encoded JSON line (trailing newline optional).

    Returns the ``{"enc": "gzip+b64", "data": ...}`` envelope as a
    newline-terminated line — still one JSON line, so framing is unchanged
    for every reader.
    """
    packed = base64.b64encode(gzip.compress(line.rstrip(b"\n"))).decode("ascii")
    return json.dumps({"enc": WIRE_GZIP_ENCODING, "data": packed}).encode() + b"\n"


def encode_line(
    payload: dict[str, Any],
    *,
    compress: bool = False,
    threshold: int = WIRE_COMPRESS_THRESHOLD,
) -> bytes:
    """One protocol line (newline-terminated) for *payload*.

    With ``compress=True`` (the peer negotiated it) and an encoded size
    over *threshold*, the line is wrapped via :func:`compress_line`.
    """
    line = json.dumps(payload).encode()
    if compress and len(line) > threshold:
        return compress_line(line)
    return line + b"\n"


def decode_line(line: bytes | str) -> tuple[dict[str, Any], bool]:
    """Decode one protocol line; returns ``(payload, was_compressed)``.

    Transparently unwraps the gzip envelope — recognized by its exact
    two-key shape ``{"enc", "data"}`` (payloads merely *carrying* an
    ``enc`` or ``data`` field alongside other keys are not envelopes).
    Raises :class:`WireError` on malformed JSON, a bad envelope, or an
    unknown encoding.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError(f"bad request: {exc}") from exc
    if isinstance(payload, dict) and payload.keys() == {"enc", "data"}:
        enc = payload.get("enc")
        if enc != WIRE_GZIP_ENCODING:
            raise WireError(f"unknown transfer encoding {enc!r}")
        try:
            raw = gzip.decompress(base64.b64decode(payload["data"]))
            inner = json.loads(raw)
        except (ValueError, OSError, TypeError) as exc:
            raise WireError(f"bad {WIRE_GZIP_ENCODING} envelope: {exc}") from exc
        if not isinstance(inner, dict):
            raise WireError("envelope payload must be an object")
        return inner, True
    if not isinstance(payload, dict):
        raise WireError(
            f"request must be an object, got {type(payload).__name__}"
        )
    return payload, False


# -- binary frames -----------------------------------------------------------

#: Frame preamble.  ``0xAB`` can never begin a JSON line (it is not valid
#: UTF-8 text and not ``{``), so a reader can dispatch between the two wire
#: formats on the first byte of every message.
FRAME_MAGIC = b"\xabR"

#: Protocol version carried in every frame header.
FRAME_VERSION = 1

#: Flags bit 0: the payload is raw-deflate compressed (no gzip container,
#: no base64 — the length prefix makes both redundant).
FRAME_FLAG_DEFLATE = 0x01

#: Flags bit 1: the payload is a JSON message plus a binary columnar
#: program document — ``u32 BE json_len | json message | v3 record``.  The
#: JSON part carries ``"_bindoc": "<field>"`` naming where the attachment
#: belongs; :func:`decode_frame_payload` restores it as a
#: :class:`BinaryDoc` under that field.
FRAME_FLAG_BINARY_DOC = 0x02

#: All flag bits a receiver understands; anything else is rejected.
_KNOWN_FRAME_FLAGS = FRAME_FLAG_DEFLATE | FRAME_FLAG_BINARY_DOC

#: magic (2) + version (1) + flags (1) + payload length (u32 big-endian)
FRAME_HEADER_LEN = 8

#: Upper bound on a frame's payload length; a corrupt or hostile length
#: prefix fails fast instead of waiting on bytes that never arrive.
MAX_FRAME_BYTES = 256 * 2**20


def encode_frame(
    payload: dict[str, Any],
    *,
    threshold: int = WIRE_COMPRESS_THRESHOLD,
) -> bytes:
    """One length-prefixed binary frame for *payload*.

    The JSON body is raw-deflate compressed past *threshold* bytes —
    unlike the line envelope there is no base64 step, so large payloads
    ship at the compressed size instead of 4/3 of it.
    """
    body = json.dumps(payload).encode()
    flags = 0
    if len(body) > threshold:
        packer = zlib.compressobj(wbits=-zlib.MAX_WBITS)
        body = packer.compress(body) + packer.flush()
        flags |= FRAME_FLAG_DEFLATE
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    header = (
        FRAME_MAGIC
        + bytes((FRAME_VERSION, flags))
        + len(body).to_bytes(4, "big")
    )
    return header + body


class BinaryDoc:
    """A v3 binary columnar program record riding inside a frame.

    The wire layer does not decode the record — it hands the raw bytes to
    the consumer, which picks the view it needs: :meth:`to_store` for a
    whole program, :meth:`to_chunk` for one streamed chunk, or ``.data``
    to forward the bytes untouched (spool writes, relays).
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryDoc({len(self.data)} bytes)"

    def to_store(self) -> ProgramStore:
        """Decode as a whole program (``kind == "program"``)."""
        from ..core import binformat

        try:
            return binformat.decode_program(self.data)
        except (ValueError, KeyError, TypeError) as exc:
            raise WireError(f"bad binary program document: {exc}") from exc

    def to_chunk(self) -> dict[str, Any]:
        """Decode as one streamed chunk (``kind == "chunk"``)."""
        from ..core import binformat

        try:
            return binformat.decode_chunk(self.data)
        except (ValueError, KeyError, TypeError) as exc:
            raise WireError(f"bad binary chunk document: {exc}") from exc


def encode_bindoc_frame(
    payload: dict[str, Any],
    field: str,
    doc: bytes,
    *,
    threshold: int = WIRE_COMPRESS_THRESHOLD,
) -> bytes:
    """One frame carrying *payload* plus a binary program document.

    *payload* must not already contain *field* — the document IS that
    field, shipped as raw bytes after the JSON part instead of as JSON
    text.  The body is ``u32 BE json_len | json | doc`` and is deflated
    as a whole past *threshold* (typed blobs still deflate well — runs
    of small ints dominate).
    """
    if field in payload:
        raise WireError(f"payload already has field {field!r}")
    message = dict(payload)
    message["_bindoc"] = field
    head = json.dumps(message).encode()
    body = len(head).to_bytes(4, "big") + head + doc
    flags = FRAME_FLAG_BINARY_DOC
    if len(body) > threshold:
        packer = zlib.compressobj(wbits=-zlib.MAX_WBITS)
        body = packer.compress(body) + packer.flush()
        flags |= FRAME_FLAG_DEFLATE
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    header = (
        FRAME_MAGIC
        + bytes((FRAME_VERSION, flags))
        + len(body).to_bytes(4, "big")
    )
    return header + body


def parse_frame_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header; returns ``(flags, payload_length)``.

    Raises :class:`WireError` on a short header, wrong magic, unknown
    version or flags, or a length over :data:`MAX_FRAME_BYTES`.
    """
    if len(header) != FRAME_HEADER_LEN or header[:2] != FRAME_MAGIC:
        raise WireError("bad frame header")
    version, flags = header[2], header[3]
    if version != FRAME_VERSION:
        raise WireError(f"unsupported frame version {version}")
    if flags & ~_KNOWN_FRAME_FLAGS:
        raise WireError(f"unknown frame flags 0x{flags:02x}")
    length = int.from_bytes(header[4:8], "big")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame length {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return flags, length


def decode_frame_payload(flags: int, body: bytes) -> dict[str, Any]:
    """Decode a frame body (already read to its prefixed length).

    A :data:`FRAME_FLAG_BINARY_DOC` body decodes to the JSON message with
    its binary attachment restored as a :class:`BinaryDoc` under the field
    named by the ``"_bindoc"`` marker (the marker itself is stripped).
    """
    if flags & FRAME_FLAG_DEFLATE:
        try:
            unpacker = zlib.decompressobj(wbits=-zlib.MAX_WBITS)
            body = unpacker.decompress(body) + unpacker.flush()
        except zlib.error as exc:
            raise WireError(f"bad deflate frame payload: {exc}") from exc
    if flags & FRAME_FLAG_BINARY_DOC:
        if len(body) < 4:
            raise WireError("bindoc frame body shorter than its length prefix")
        json_len = int.from_bytes(body[:4], "big")
        if json_len > len(body) - 4:
            raise WireError(
                f"bindoc json length {json_len} exceeds body "
                f"({len(body) - 4} bytes after prefix)"
            )
        head, doc = body[4 : 4 + json_len], body[4 + json_len :]
        try:
            payload = json.loads(head)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WireError(f"bad bindoc frame message: {exc}") from exc
        if not isinstance(payload, dict):
            raise WireError(
                f"frame payload must be an object, got {type(payload).__name__}"
            )
        field = payload.pop("_bindoc", None)
        if not isinstance(field, str) or not field:
            raise WireError("bindoc frame missing its _bindoc field marker")
        payload[field] = BinaryDoc(bytes(doc))
        return payload
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"bad frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


def decode_frame(data: bytes) -> dict[str, Any]:
    """Decode one complete frame (header + body) from a byte string."""
    flags, length = parse_frame_header(data[:FRAME_HEADER_LEN])
    body = data[FRAME_HEADER_LEN:]
    if len(body) != length:
        raise WireError(
            f"frame truncated: header says {length} bytes, got {len(body)}"
        )
    return decode_frame_payload(flags, body)


# -- circuits ---------------------------------------------------------------


def encode_circuit(circuit: QuantumCircuit) -> dict[str, Any]:
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "gates": [
            [g.name, list(g.qubits), list(g.params)] for g in circuit.gates
        ],
    }


def decode_circuit(payload: dict[str, Any]) -> QuantumCircuit:
    try:
        circuit = QuantumCircuit(
            int(payload["num_qubits"]), name=str(payload.get("name", "circuit"))
        )
        for name, qubits, params in payload["gates"]:
            circuit.append(Gate(name, tuple(qubits), tuple(params)))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad circuit payload: {exc}") from exc
    return circuit


# -- hardware ---------------------------------------------------------------


def encode_params(params: HardwareParams) -> dict[str, float]:
    return asdict(params)


def decode_params(payload: dict[str, float]) -> HardwareParams:
    try:
        return HardwareParams(**payload)
    except TypeError as exc:
        raise WireError(f"bad hardware params: {exc}") from exc


def encode_architecture(arch: RAAArchitecture) -> dict[str, Any]:
    return {
        "slm": [arch.slm_shape.rows, arch.slm_shape.cols],
        "aods": [[s.rows, s.cols] for s in arch.aod_shapes],
        "params": encode_params(arch.params),
    }


def decode_architecture(payload: dict[str, Any]) -> RAAArchitecture:
    try:
        return RAAArchitecture(
            slm_shape=ArrayShape(*payload["slm"]),
            aod_shapes=[ArrayShape(*s) for s in payload["aods"]],
            params=decode_params(payload["params"]),
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"bad architecture payload: {exc}") from exc


# -- compiler config --------------------------------------------------------


def encode_config(config: AtomiqueConfig) -> dict[str, Any]:
    router = config.router
    return {
        "gamma": config.gamma,
        "array_mapper": config.array_mapper,
        "atom_mapper": config.atom_mapper,
        "seed": config.seed,
        "router": {
            "toggles": asdict(router.toggles),
            "serial": router.serial,
            "max_candidate_sites": router.max_candidate_sites,
            "cooling_threshold": router.cooling_threshold,
            "ordering_trials": router.ordering_trials,
            "seed": router.seed,
        },
    }


def decode_config(payload: dict[str, Any]) -> AtomiqueConfig:
    try:
        r = payload["router"]
        router = RouterConfig(
            toggles=ConstraintToggles(**r["toggles"]),
            serial=bool(r["serial"]),
            max_candidate_sites=int(r["max_candidate_sites"]),
            cooling_threshold=(
                None
                if r["cooling_threshold"] is None
                else float(r["cooling_threshold"])
            ),
            ordering_trials=int(r["ordering_trials"]),
            seed=int(r["seed"]),
        )
        return AtomiqueConfig(
            gamma=float(payload["gamma"]),
            array_mapper=str(payload["array_mapper"]),
            atom_mapper=str(payload["atom_mapper"]),
            router=router,
            seed=int(payload["seed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad config payload: {exc}") from exc


# -- options and jobs -------------------------------------------------------


def _freeze(value: Any) -> Any:
    """JSON arrays back to tuples so options stay hashable/cache-keyable."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def encode_options(options: CompileOptions) -> dict[str, Any]:
    return {
        "raa": (
            encode_architecture(options.raa) if options.raa is not None else None
        ),
        "config": (
            encode_config(options.config) if options.config is not None else None
        ),
        "params": (
            encode_params(options.params) if options.params is not None else None
        ),
        "seed": options.seed,
        "label": options.label,
        "extra": [[k, v] for k, v in options.extra],
    }


def decode_options(payload: dict[str, Any]) -> CompileOptions:
    try:
        return CompileOptions(
            raa=(
                decode_architecture(payload["raa"])
                if payload.get("raa") is not None
                else None
            ),
            config=(
                decode_config(payload["config"])
                if payload.get("config") is not None
                else None
            ),
            params=(
                decode_params(payload["params"])
                if payload.get("params") is not None
                else None
            ),
            seed=int(payload.get("seed", 7)),
            label=payload.get("label"),
            extra=tuple(
                (str(k), _freeze(v)) for k, v in payload.get("extra", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad options payload: {exc}") from exc


def encode_job(job: CompileJob) -> dict[str, Any]:
    return {
        "backend": job.backend,
        "circuit": encode_circuit(job.circuit),
        "options": encode_options(job.options),
    }


def decode_job(payload: dict[str, Any]) -> CompileJob:
    if not isinstance(payload, dict):
        raise WireError(f"job payload must be a dict, got {type(payload).__name__}")
    try:
        backend = str(payload["backend"])
        circuit = payload["circuit"]
        options = payload.get("options")
    except KeyError as exc:
        raise WireError(f"job payload missing field {exc}") from exc
    return CompileJob(
        backend=backend,
        circuit=decode_circuit(circuit),
        options=(
            decode_options(options) if options is not None else CompileOptions()
        ),
    )


# -- job control (submit-time robustness knobs) ------------------------------


@dataclass(frozen=True)
class JobControl:
    """Per-job fault-tolerance knobs riding alongside a submit request.

    These travel as top-level fields of the ``submit`` op (not inside the
    job payload) because they configure the *queue's* handling of the job
    — timeout enforcement, retry budget, idempotent resubmission — and
    deliberately stay out of every cache key: two submissions differing
    only in their control knobs are the same compile.
    """

    timeout: float | None = None
    max_retries: int | None = None
    key: str | None = None
    #: dispatch priority — higher runs first within a shard (default 0)
    priority: int | None = None
    #: seconds from submission the job must *dispatch* by; expired
    #: undispatched jobs fail with a clear error instead of running late
    deadline: float | None = None
    #: capture the compiled program alongside the metrics (Atomique only)
    keep_program: bool = False


def encode_job_control(control: JobControl) -> dict[str, Any]:
    """The submit-request fields for *control* (absent knobs omitted, so
    requests to old daemons carry nothing unknown unless used)."""
    fields: dict[str, Any] = {}
    if control.timeout is not None:
        fields["timeout"] = control.timeout
    if control.max_retries is not None:
        fields["max_retries"] = control.max_retries
    if control.key is not None:
        fields["key"] = control.key
    if control.priority is not None:
        fields["priority"] = control.priority
    if control.deadline is not None:
        fields["deadline"] = control.deadline
    if control.keep_program:
        fields["keep_program"] = True
    return fields


def decode_job_control(request: dict[str, Any]) -> JobControl:
    """Validate and extract the control fields of a submit request."""
    try:
        timeout = request.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError(f"timeout must be > 0, got {timeout}")
        max_retries = request.get("max_retries")
        if max_retries is not None:
            max_retries = int(max_retries)
            if max_retries < 1:
                raise ValueError(
                    f"max_retries must be >= 1, got {max_retries}"
                )
        key = request.get("key")
        if key is not None:
            key = str(key)
        priority = request.get("priority")
        if priority is not None:
            priority = int(priority)
        deadline = request.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ValueError(f"deadline must be > 0, got {deadline}")
        keep_program = bool(request.get("keep_program", False))
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad job control fields: {exc}") from exc
    return JobControl(
        timeout=timeout,
        max_retries=max_retries,
        key=key,
        priority=priority,
        deadline=deadline,
        keep_program=keep_program,
    )


# -- programs ----------------------------------------------------------------


def encode_program(program: Program) -> dict[str, Any]:
    """Columnar wire form of a compiled program.

    Always the v2 structure-of-arrays document: flat arrays of numbers
    with ``repr``-exact floats, no per-gate dict overhead — the form the
    service's ``program`` op ships (submit with ``keep_program`` and
    fetch via :meth:`~repro.service.client.ServiceClient.program`).
    """
    return program_to_dict(program, columnar=True)


def decode_program(payload: dict[str, Any]) -> ProgramStore:
    try:
        program = program_from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad program payload: {exc}") from exc
    if not isinstance(program, ProgramStore):
        program = ProgramStore.from_program(program)
    return program


# -- results ----------------------------------------------------------------


def encode_metrics(metrics: CompiledMetrics) -> dict[str, Any]:
    return {
        "benchmark": metrics.benchmark,
        "architecture": metrics.architecture,
        "num_qubits": metrics.num_qubits,
        "num_2q_gates": metrics.num_2q_gates,
        "num_1q_gates": metrics.num_1q_gates,
        "depth": metrics.depth,
        "fidelity": asdict(metrics.fidelity),
        "additional_cnots": metrics.additional_cnots,
        "compile_seconds": metrics.compile_seconds,
        "execution_seconds": metrics.execution_seconds,
        "extras": dict(metrics.extras),
    }


def decode_metrics(payload: dict[str, Any]) -> CompiledMetrics:
    try:
        return CompiledMetrics(
            benchmark=payload["benchmark"],
            architecture=payload["architecture"],
            num_qubits=int(payload["num_qubits"]),
            num_2q_gates=int(payload["num_2q_gates"]),
            num_1q_gates=int(payload["num_1q_gates"]),
            depth=int(payload["depth"]),
            fidelity=FidelityReport(**payload["fidelity"]),
            additional_cnots=int(payload["additional_cnots"]),
            compile_seconds=float(payload["compile_seconds"]),
            execution_seconds=float(payload["execution_seconds"]),
            # re-freeze like decode_options: JSON turned tuple-valued
            # extras into lists, and a bare dict() would keep them that way
            extras={
                str(k): _freeze(v) for k, v in payload["extras"].items()
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad metrics payload: {exc}") from exc
