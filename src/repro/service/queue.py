"""Persistent job queue backing the compile service.

The queue is the service's source of truth: every submitted job becomes a
:class:`JobRecord` (wire payload + lifecycle state), optionally spooled to
disk so a restarted daemon resumes exactly where the last one stopped —
``PENDING`` jobs are still pending, jobs that were ``RUNNING`` when the
process died are re-queued (their worker is gone), and finished results
are served from the spool without recompiling.

Layout of a spool directory::

    spool/
      jobs/<job_id>.json      one record per job, rewritten atomically on
                              every state transition
      results/<job_id>.json   wire-encoded CompiledMetrics of DONE jobs

Ordering is submission order (FIFO): records carry a monotonically
increasing ``seq`` assigned at submission, which survives restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class QueueError(RuntimeError):
    """An operation referenced a job the queue does not hold."""


@dataclass
class JobRecord:
    """One queued compile job: wire payload plus lifecycle bookkeeping."""

    job_id: str
    seq: int
    shard: int
    payload: dict[str, Any]
    state: JobState = JobState.PENDING
    error: str | None = None

    def summary(self) -> dict[str, Any]:
        """The status-API view of this record (no circuit body)."""
        return {
            "id": self.job_id,
            "seq": self.seq,
            "shard": self.shard,
            "state": self.state.value,
            "backend": self.payload.get("backend"),
            "benchmark": (self.payload.get("circuit") or {}).get("name"),
            "error": self.error,
        }


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class JobQueue:
    """FIFO job store with optional disk persistence.

    Without a ``spool_dir`` everything lives in memory (tests, ephemeral
    services).  With one, every mutation is mirrored to disk before it is
    observable, so a crash between any two statements loses at most the
    in-flight transition — never a submitted job.
    """

    def __init__(self, spool_dir: str | Path | None = None) -> None:
        self._records: dict[str, JobRecord] = {}
        self._memory_results: dict[str, dict[str, Any]] = {}
        self._seq = 0
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        if self.spool_dir is not None:
            (self.spool_dir / "jobs").mkdir(parents=True, exist_ok=True)
            (self.spool_dir / "results").mkdir(parents=True, exist_ok=True)
            self._load()

    # -- submission and lookup ---------------------------------------------

    def submit(self, payload: dict[str, Any], shard: int) -> JobRecord:
        """Register a wire-encoded job; returns its record (PENDING)."""
        self._seq += 1
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        record = JobRecord(
            job_id=f"job-{self._seq:06d}-{digest[:10]}",
            seq=self._seq,
            shard=shard,
            payload=payload,
        )
        self._records[record.job_id] = record
        self._persist(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise QueueError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[JobRecord]:
        """All records in submission order."""
        return sorted(self._records.values(), key=lambda r: r.seq)

    def pending(self) -> list[JobRecord]:
        """PENDING records in submission order (restart re-dispatch)."""
        return [r for r in self.jobs() if r.state is JobState.PENDING]

    # -- state transitions --------------------------------------------------

    def mark_running(self, job_id: str) -> None:
        self._transition(job_id, JobState.RUNNING)

    def requeue(self, job_id: str) -> None:
        """Put a RUNNING job back to PENDING (shutdown took its worker)."""
        self._transition(job_id, JobState.PENDING)

    def mark_done(self, job_id: str, result_payload: dict[str, Any]) -> None:
        self._store_result(job_id, result_payload)
        self._transition(job_id, JobState.DONE)

    def mark_failed(self, job_id: str, error: str) -> None:
        record = self.get(job_id)
        record.error = error
        self._transition(job_id, JobState.FAILED)

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING job.  Running or finished jobs are not touched
        (a compile in flight on a worker process cannot be interrupted
        safely); returns whether the cancellation took effect."""
        record = self.get(job_id)
        if record.state is not JobState.PENDING:
            return False
        self._transition(job_id, JobState.CANCELLED)
        return True

    def _transition(self, job_id: str, state: JobState) -> None:
        record = self.get(job_id)
        record.state = state
        self._persist(record)

    # -- results -------------------------------------------------------------

    def load_result(self, job_id: str) -> dict[str, Any] | None:
        """The wire-encoded metrics of a DONE job, or None."""
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        if self.spool_dir is None:
            return self._memory_results.get(job_id)
        path = self.spool_dir / "results" / f"{job_id}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _store_result(self, job_id: str, payload: dict[str, Any]) -> None:
        if self.spool_dir is None:
            self._memory_results[job_id] = payload
            return
        path = self.spool_dir / "results" / f"{job_id}.json"
        _atomic_write_text(path, json.dumps(payload))

    # -- persistence ---------------------------------------------------------

    def _persist(self, record: JobRecord) -> None:
        if self.spool_dir is None:
            return
        path = self.spool_dir / "jobs" / f"{record.job_id}.json"
        _atomic_write_text(
            path,
            json.dumps(
                {
                    "job_id": record.job_id,
                    "seq": record.seq,
                    "shard": record.shard,
                    "state": record.state.value,
                    "error": record.error,
                    "payload": record.payload,
                }
            ),
        )

    def _load(self) -> None:
        assert self.spool_dir is not None
        for path in sorted((self.spool_dir / "jobs").glob("*.json")):
            try:
                data = json.loads(path.read_text())
                state = JobState(data["state"])
                record = JobRecord(
                    job_id=data["job_id"],
                    seq=int(data["seq"]),
                    shard=int(data["shard"]),
                    payload=data["payload"],
                    state=state,
                    error=data.get("error"),
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError):
                continue  # torn/foreign file: skip rather than refuse to boot
            # A job RUNNING at crash time lost its worker — re-run it.
            if record.state is JobState.RUNNING:
                record.state = JobState.PENDING
                self._persist(record)
            self._records[record.job_id] = record
            self._seq = max(self._seq, record.seq)
