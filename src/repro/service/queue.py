"""Persistent job queue backing the compile service.

The queue is the service's source of truth: every submitted job becomes a
:class:`JobRecord` (wire payload + lifecycle state), optionally spooled to
disk so a restarted daemon resumes exactly where the last one stopped —
``PENDING`` jobs are still pending, jobs that were ``RUNNING`` when the
process died are re-queued (their worker is gone), and finished results
are served from the spool without recompiling.

A ``RUNNING`` job holds a **lease**: :meth:`JobQueue.acquire` stamps an
owner and a lease deadline and increments the record's attempt counter;
the dispatcher extends the lease with :meth:`heartbeat` while the job
executes.  A lease that expires (daemon froze, dispatcher lost track) or
an owner that died requeues the job — unless its attempts have reached
``max_retries``, in which case it **dead-letters** as ``FAILED`` with the
last error, so a poison job that crashes its worker on every attempt
stops retrying instead of wedging the shard forever.

Layout of a spool directory::

    spool/
      jobs/<job_id>.json      one record per job, rewritten atomically on
                              every state transition
      results/<job_id>.json   wire-encoded CompiledMetrics of DONE jobs;
                              payloads over 64 KiB are zlib-deflated
                              behind a 2-byte magic (sniffed on read, so
                              pre-existing plain-JSON spools still load)
      programs/<job_id>.bin   v3 binary columnar programs of DONE jobs
                              submitted with ``keep_program``
                              (``.json`` v2 documents from older daemons
                              are still read)
      progress/<job_id>.jsonl per-pass progress events appended by the
                              worker mid-compile (one JSON object per
                              line), surfaced by ``status`` and the
                              streaming ``result`` op
      quarantine/<name>       spool files that failed to decode at boot,
                              moved aside (never deleted, never fatal)

Ordering is submission order (FIFO): records carry a monotonically
increasing ``seq`` assigned at submission, which survives restarts.
Jobs may carry a ``priority`` (higher dispatches first) and a dispatch
``deadline``; :meth:`JobQueue.pending_for` yields a shard's backlog in
``(-priority, deadline, seq)`` order, so default submissions (priority 0,
no deadline) keep exact FIFO behaviour.

**Shared spools** (the compile farm): with ``shared=True`` several
daemons mount one spool directory.  The queue then (a) suffixes job ids
with a per-daemon ``node_id`` so concurrent submissions on different
daemons can never collide, (b) leaves RUNNING records alone at boot —
they belong to live peers; shard-lease expiry, not boot, decides they are
orphaned — and (c) ingests peers' record writes through :meth:`sync` /
:meth:`refresh_from_disk`, tracking an ``(mtime_ns, size)`` fingerprint
per spool file so its own atomic writes are never re-ingested.  Disk is
authoritative on every conflict.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import zlib
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Callable

from . import faults

log = logging.getLogger("repro.service")

#: Attempts a job may consume before it dead-letters as FAILED.
DEFAULT_MAX_RETRIES = 3

#: Two-byte prefix of a zlib-deflated result spool file.  ``0xAB`` can
#: never begin JSON text, so a reader sniffs the first bytes to pick the
#: decoder — pre-existing plain-JSON spool files keep loading unchanged.
SPOOL_DEFLATE_MAGIC = b"\xabZ"

#: Result payloads whose encoded JSON exceeds this are deflated on write.
SPOOL_COMPRESS_THRESHOLD = 64 * 1024


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class QueueError(RuntimeError):
    """An operation referenced a job the queue does not hold."""


@dataclass
class JobRecord:
    """One queued compile job: wire payload plus lifecycle bookkeeping."""

    job_id: str
    seq: int
    shard: int
    payload: dict[str, Any]
    state: JobState = JobState.PENDING
    error: str | None = None
    #: times the job has been leased to a worker (``acquire`` increments)
    attempts: int = 0
    #: attempts allowed before the job dead-letters as FAILED
    max_retries: int = DEFAULT_MAX_RETRIES
    #: per-job execution timeout in seconds (None = no deadline)
    timeout: float | None = None
    #: client-supplied idempotency key (resubmission returns this record)
    job_key: str | None = None
    #: lease holder while RUNNING (a daemon identity string)
    owner: str | None = None
    #: wall-clock time the current lease expires (RUNNING only)
    lease_deadline: float | None = None
    #: dispatch priority — higher runs first within a shard
    priority: int = 0
    #: absolute wall-clock time the job must *dispatch* by (None = never)
    deadline: float | None = None
    #: capture the compiled program alongside the metrics
    keep_program: bool = False

    def summary(self) -> dict[str, Any]:
        """The status-API view of this record (no circuit body)."""
        return {
            "id": self.job_id,
            "seq": self.seq,
            "shard": self.shard,
            "state": self.state.value,
            "backend": self.payload.get("backend"),
            "benchmark": (self.payload.get("circuit") or {}).get("name"),
            "error": self.error,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "timeout": self.timeout,
            "key": self.job_key,
            "owner": self.owner,
            "priority": self.priority,
            "deadline": self.deadline,
            "keep_program": self.keep_program,
        }


def dispatch_order(record: JobRecord) -> tuple[int, float, int, str]:
    """Sort key for a shard's backlog: priority first (higher wins), then
    earliest deadline, then submission order.  All-default submissions
    therefore dispatch in exact FIFO order."""
    return (
        -record.priority,
        record.deadline if record.deadline is not None else float("inf"),
        record.seq,
        record.job_id,
    )


def _atomic_write_text(path: Path, text: str, site: str) -> None:
    faults.maybe_fail(site, str(path))
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _atomic_write_bytes(path: Path, data: bytes, site: str) -> None:
    faults.maybe_fail(site, str(path))
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class JobQueue:
    """FIFO job store with optional disk persistence and job leases.

    Without a ``spool_dir`` everything lives in memory (tests, ephemeral
    services).  With one, every mutation is mirrored to disk before it is
    observable, so a crash between any two statements loses at most the
    in-flight transition — never a submitted job.

    ``clock`` is injectable (defaults to :func:`time.time`) so lease
    expiry is testable without sleeping.  Leases use wall-clock time
    because they must be comparable across daemon processes and reboots.
    """

    def __init__(
        self,
        spool_dir: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        node_id: str | None = None,
        shared: bool = False,
    ) -> None:
        self._records: dict[str, JobRecord] = {}
        self._memory_results: dict[str, dict[str, Any]] = {}
        self._memory_programs: dict[str, dict[str, Any] | bytes] = {}
        self._memory_progress: dict[str, list[dict[str, Any]]] = {}
        self._by_key: dict[str, str] = {}
        self._seq = 0
        self.clock = clock
        #: per-daemon suffix appended to job ids (farm collision guard)
        self.node_id = node_id
        #: several daemons share this spool: boot must not demote peers'
        #: RUNNING jobs, and :meth:`sync` ingests their record writes
        self.shared = shared
        if shared and spool_dir is None:
            raise ValueError("a shared queue needs a spool_dir")
        #: spool filenames quarantined at boot (undecodable records)
        self.quarantined: list[str] = []
        #: (mtime_ns, size) per spool job file, as of our last read/write —
        #: sync() skips unchanged files and our own writes
        self._file_state: dict[str, tuple[int, int]] = {}
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        if self.spool_dir is not None:
            (self.spool_dir / "jobs").mkdir(parents=True, exist_ok=True)
            (self.spool_dir / "results").mkdir(parents=True, exist_ok=True)
            self._load()

    # -- submission and lookup ---------------------------------------------

    def submit(
        self,
        payload: dict[str, Any],
        shard: int,
        job_key: str | None = None,
        timeout: float | None = None,
        max_retries: int | None = None,
        priority: int = 0,
        deadline: float | None = None,
        keep_program: bool = False,
    ) -> JobRecord:
        """Register a wire-encoded job; returns its record (PENDING).

        With a *job_key*, submission is **idempotent**: a key the queue
        has already seen returns the existing record unchanged — the
        retry path of a client whose submit response was lost resubmits
        safely instead of duplicating the job.

        *deadline* is an **absolute** clock time (the server converts a
        client's seconds-from-now); *priority* orders dispatch within a
        shard (higher first).
        """
        if job_key is not None:
            existing = self.by_key(job_key)
            if existing is not None:
                return existing
        self._seq += 1
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        job_id = f"job-{self._seq:06d}-{digest[:10]}"
        if self.node_id is not None:
            # Two farm daemons can hand out the same seq concurrently;
            # the node suffix keeps their ids (and spool files) distinct.
            job_id = f"{job_id}-{self.node_id}"
        record = JobRecord(
            job_id=job_id,
            seq=self._seq,
            shard=shard,
            payload=payload,
            timeout=timeout,
            max_retries=(
                max_retries if max_retries is not None else DEFAULT_MAX_RETRIES
            ),
            job_key=job_key,
            priority=priority,
            deadline=deadline,
            keep_program=keep_program,
        )
        self._records[record.job_id] = record
        if job_key is not None:
            self._by_key[job_key] = record.job_id
        self._persist(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise QueueError(f"unknown job {job_id!r}") from None

    def by_key(self, job_key: str) -> JobRecord | None:
        """The record submitted under an idempotency key, if any."""
        job_id = self._by_key.get(job_key)
        return self._records.get(job_id) if job_id is not None else None

    def jobs(self) -> list[JobRecord]:
        """All records in submission order (job id breaks cross-daemon
        seq ties deterministically on a shared spool)."""
        return sorted(self._records.values(), key=lambda r: (r.seq, r.job_id))

    def pending(self) -> list[JobRecord]:
        """PENDING records in submission order (restart re-dispatch)."""
        return [r for r in self.jobs() if r.state is JobState.PENDING]

    def pending_for(self, shard: int, modulo: int | None = None) -> list[JobRecord]:
        """A shard's dispatchable backlog in dispatch order.

        *modulo* maps recorded shard numbers onto the caller's shard
        count (a spool may carry records from a run with more shards).
        Order is :func:`dispatch_order`: priority desc, deadline asc,
        then FIFO.
        """
        records = [
            r
            for r in self._records.values()
            if r.state is JobState.PENDING
            and (r.shard % modulo if modulo else r.shard) == shard
        ]
        records.sort(key=dispatch_order)
        return records

    def failed(self) -> list[JobRecord]:
        """Dead-lettered records in submission order."""
        return [r for r in self.jobs() if r.state is JobState.FAILED]

    # -- leases --------------------------------------------------------------

    def acquire(
        self,
        job_id: str,
        owner: str | None = None,
        lease_seconds: float | None = None,
    ) -> JobRecord:
        """Lease a PENDING job to *owner*: RUNNING, attempts + 1.

        Raises :class:`QueueError` if the job is not PENDING (it finished,
        was cancelled, or another dispatcher got there first).
        """
        record = self.get(job_id)
        if record.state is not JobState.PENDING:
            raise QueueError(
                f"cannot acquire {job_id}: state is {record.state.value}"
            )
        record.state = JobState.RUNNING
        record.attempts += 1
        record.owner = owner
        record.lease_deadline = (
            self.clock() + lease_seconds if lease_seconds is not None else None
        )
        self._persist(record)
        return record

    def mark_running(self, job_id: str) -> None:
        """Back-compat shorthand for :meth:`acquire` without a lease."""
        self.acquire(job_id)

    def heartbeat(
        self, job_id: str, lease_seconds: float, owner: str | None = None
    ) -> bool:
        """Extend a RUNNING job's lease; returns whether it still held.

        With *owner*, the heartbeat only counts while the lease is still
        ours: a farm daemon whose job was reaped and re-leased by a peer
        must not stamp its deadline over the new owner's."""
        record = self.get(job_id)
        if record.state is not JobState.RUNNING:
            return False
        if owner is not None and record.owner != owner:
            return False
        record.lease_deadline = self.clock() + lease_seconds
        self._persist(record)
        return True

    def expired_leases(self) -> list[JobRecord]:
        """RUNNING records whose lease deadline has passed."""
        now = self.clock()
        return [
            r
            for r in self.jobs()
            if r.state is JobState.RUNNING
            and r.lease_deadline is not None
            and r.lease_deadline < now
        ]

    def requeue(self, job_id: str, refund_attempt: bool = False) -> None:
        """Put a RUNNING job back to PENDING, releasing its lease.

        ``refund_attempt=True`` is for clean hand-backs (graceful
        shutdown took the worker before the job failed): the attempt is
        not charged, so draining a daemon N times can never dead-letter a
        healthy job.  Crash and expiry paths keep the charge.
        """
        record = self.get(job_id)
        if refund_attempt and record.attempts > 0:
            record.attempts -= 1
        record.state = JobState.PENDING
        record.owner = None
        record.lease_deadline = None
        self._persist(record)

    def retry_or_fail(self, job_id: str, error: str) -> JobState:
        """Handle a failed attempt: requeue, or dead-letter as FAILED.

        Records *error* either way (a requeued job keeps its last error
        until it succeeds).  Returns the state the job landed in —
        ``PENDING`` means the caller should re-dispatch it.
        """
        record = self.get(job_id)
        if record.state.terminal:
            return record.state  # cancelled/finished while the attempt ran
        record.error = error
        record.owner = None
        record.lease_deadline = None
        if record.attempts >= record.max_retries:
            record.state = JobState.FAILED
        else:
            record.state = JobState.PENDING
        self._persist(record)
        return record.state

    # -- state transitions --------------------------------------------------

    def mark_done(self, job_id: str, result_payload: dict[str, Any]) -> bool:
        """Store the result and finish the job; returns whether it counted.

        A job cancelled (or otherwise finished) while its attempt was in
        flight is left alone — the late result is discarded.
        """
        record = self.get(job_id)
        if record.state.terminal:
            return False
        self._store_result(job_id, result_payload)
        record.state = JobState.DONE
        record.error = None
        record.owner = None
        record.lease_deadline = None
        self._persist(record)
        return True

    def mark_failed(self, job_id: str, error: str) -> bool:
        """Fail the job immediately (no retry); False if already terminal."""
        record = self.get(job_id)
        if record.state.terminal:
            return False
        record.error = error
        record.state = JobState.FAILED
        record.owner = None
        record.lease_deadline = None
        self._persist(record)
        return True

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING or RUNNING job.

        Cancelling a RUNNING job revokes its lease — the dispatcher's
        in-flight attempt is discarded when it reports back.  Finished
        jobs are not touched; returns whether the cancellation took
        effect.
        """
        record = self.get(job_id)
        if record.state.terminal:
            return False
        record.state = JobState.CANCELLED
        record.owner = None
        record.lease_deadline = None
        self._persist(record)
        return True

    # -- results -------------------------------------------------------------

    def load_result(self, job_id: str) -> dict[str, Any] | None:
        """The wire-encoded metrics of a DONE job, or None.

        Sniffs the spool file's first bytes: :data:`SPOOL_DEFLATE_MAGIC`
        means a deflated payload, anything else is plain JSON text — so
        spools written before compression existed still decode.
        """
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        if self.spool_dir is None:
            return self._memory_results.get(job_id)
        path = self.spool_dir / "results" / f"{job_id}.json"
        try:
            raw = path.read_bytes()
            if raw.startswith(SPOOL_DEFLATE_MAGIC):
                raw = zlib.decompress(raw[len(SPOOL_DEFLATE_MAGIC):])
            return json.loads(raw)
        except (OSError, ValueError, zlib.error):
            return None

    def _store_result(self, job_id: str, payload: dict[str, Any]) -> None:
        if self.spool_dir is None:
            self._memory_results[job_id] = payload
            return
        path = self.spool_dir / "results" / f"{job_id}.json"
        encoded = json.dumps(payload).encode()
        if len(encoded) >= SPOOL_COMPRESS_THRESHOLD:
            encoded = SPOOL_DEFLATE_MAGIC + zlib.compress(encoded)
        _atomic_write_bytes(path, encoded, site="spool.result")

    def store_program(
        self, job_id: str, payload: dict[str, Any] | bytes
    ) -> None:
        """Persist the compiled program of a ``keep_program`` job.

        ``bytes`` is a v3 binary columnar record (``programs/<id>.bin``);
        a dict is the legacy v2 JSON document (``programs/<id>.json``).
        """
        if self.spool_dir is None:
            self._memory_programs[job_id] = payload
            return
        programs = self.spool_dir / "programs"
        programs.mkdir(parents=True, exist_ok=True)
        if isinstance(payload, bytes):
            path = programs / f"{job_id}.bin"
            _atomic_write_bytes(path, payload, site="spool.result")
        else:
            path = programs / f"{job_id}.json"
            _atomic_write_text(path, json.dumps(payload), site="spool.result")

    def load_program_bytes(self, job_id: str) -> bytes | None:
        """The v3 binary record of a DONE ``keep_program`` job, or None.

        Only returns the binary form — a job spooled as legacy v2 JSON
        (or by an unupgraded daemon) yields None here and loads through
        :meth:`load_program` instead.
        """
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        if self.spool_dir is None:
            payload = self._memory_programs.get(job_id)
            return payload if isinstance(payload, bytes) else None
        path = self.spool_dir / "programs" / f"{job_id}.bin"
        try:
            return path.read_bytes()
        except OSError:
            return None

    def load_program(self, job_id: str) -> dict[str, Any] | None:
        """The wire-encoded (v2 dict) program of a DONE ``keep_program``
        job, decoding a binary spool record when that is what is stored."""
        raw = self.load_program_bytes(job_id)
        if raw is not None:
            from ..core import binformat, serialize

            try:
                store = binformat.decode_program(raw)
                return serialize.program_to_dict(store, columnar=True)
            except (ValueError, KeyError, TypeError):
                return None
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            return None
        if self.spool_dir is None:
            payload = self._memory_programs.get(job_id)
            return payload if isinstance(payload, dict) else None
        path = self.spool_dir / "programs" / f"{job_id}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # -- per-pass progress ----------------------------------------------------

    def progress_path(self, job_id: str) -> Path | None:
        """Where a worker appends per-pass progress events (JSONL), or
        ``None`` for a memory-only queue (inline mode records directly)."""
        if self.spool_dir is None:
            return None
        progress = self.spool_dir / "progress"
        progress.mkdir(parents=True, exist_ok=True)
        return progress / f"{job_id}.jsonl"

    def record_progress(self, job_id: str, event: dict[str, Any]) -> None:
        """Append one progress event (memory-queue / inline-mode path)."""
        self._memory_progress.setdefault(job_id, []).append(event)

    def load_progress(self, job_id: str) -> list[dict[str, Any]]:
        """All per-pass progress events recorded for *job_id*, in order.

        Reads the spooled JSONL file when there is a spool (so farm peers
        see each other's progress), skipping torn trailing lines; events
        carry the attempt number, so retries append rather than reset.
        """
        if self.spool_dir is None:
            return list(self._memory_progress.get(job_id, []))
        path = self.spool_dir / "progress" / f"{job_id}.jsonl"
        events: list[dict[str, Any]] = []
        try:
            text = path.read_text()
        except OSError:
            return events
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
        return events

    # -- persistence ---------------------------------------------------------

    def _persist(self, record: JobRecord) -> None:
        if self.spool_dir is None:
            return
        path = self.spool_dir / "jobs" / f"{record.job_id}.json"
        _atomic_write_text(
            path,
            json.dumps(
                {
                    "job_id": record.job_id,
                    "seq": record.seq,
                    "shard": record.shard,
                    "state": record.state.value,
                    "error": record.error,
                    "attempts": record.attempts,
                    "max_retries": record.max_retries,
                    "timeout": record.timeout,
                    "job_key": record.job_key,
                    "owner": record.owner,
                    "lease_deadline": record.lease_deadline,
                    "priority": record.priority,
                    "deadline": record.deadline,
                    "keep_program": record.keep_program,
                    "payload": record.payload,
                }
            ),
            site="spool.write",
        )
        self._fingerprint(path)

    def _fingerprint(self, path: Path) -> None:
        """Remember a job file's (mtime_ns, size) so sync() skips it."""
        try:
            stat = path.stat()
        except OSError:
            self._file_state.pop(path.name, None)
            return
        self._file_state[path.name] = (stat.st_mtime_ns, stat.st_size)

    def _adopt(self, record: JobRecord) -> None:
        """Install a record read from disk, disk being authoritative."""
        self._records[record.job_id] = record
        if record.job_key is not None:
            self._by_key[record.job_key] = record.job_id
        self._seq = max(self._seq, record.seq)

    def refresh_from_disk(self, job_id: str) -> JobRecord | None:
        """Re-read one record from the spool, replacing the in-memory copy.

        Returns the fresh record, the unchanged in-memory one when the
        spool file is unreadable mid-rewrite, or None for a job this
        spool has never seen.  No-op without a spool."""
        if self.spool_dir is None:
            return self._records.get(job_id)
        path = self.spool_dir / "jobs" / f"{job_id}.json"
        record = self._decode_record_file(path)
        if record is None:
            return self._records.get(job_id)
        self._adopt(record)
        self._fingerprint(path)
        return record

    def sync(self) -> list[JobRecord]:
        """Ingest records (re)written by peer daemons on a shared spool.

        Scans ``jobs/`` and re-reads every file whose fingerprint moved
        since we last read or wrote it — our own atomic writes update the
        fingerprint at persist time, so only *foreign* changes surface.
        Returns the changed records.  No-op without a spool."""
        if self.spool_dir is None:
            return []
        changed: list[JobRecord] = []
        for path in (self.spool_dir / "jobs").glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished between glob and stat
            mark = (stat.st_mtime_ns, stat.st_size)
            if self._file_state.get(path.name) == mark:
                continue
            record = self._decode_record_file(path)
            if record is None:
                continue  # mid-rewrite or corrupt: next sync retries
            self._file_state[path.name] = mark
            self._adopt(record)
            changed.append(record)
        return changed

    def _decode_record_file(self, path: Path) -> JobRecord | None:
        try:
            data = json.loads(path.read_text())
            return JobRecord(
                job_id=data["job_id"],
                seq=int(data["seq"]),
                shard=int(data["shard"]),
                payload=data["payload"],
                state=JobState(data["state"]),
                error=data.get("error"),
                attempts=int(data.get("attempts", 0)),
                max_retries=int(data.get("max_retries", DEFAULT_MAX_RETRIES)),
                timeout=data.get("timeout"),
                job_key=data.get("job_key"),
                owner=data.get("owner"),
                lease_deadline=data.get("lease_deadline"),
                priority=int(data.get("priority", 0)),
                deadline=data.get("deadline"),
                keep_program=bool(data.get("keep_program", False)),
            )
        except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
            return None

    def _quarantine(self, path: Path) -> None:
        """Move an undecodable spool file aside instead of refusing to boot."""
        assert self.spool_dir is not None
        pen = self.spool_dir / "quarantine"
        try:
            pen.mkdir(parents=True, exist_ok=True)
            os.replace(path, pen / path.name)
        except OSError:
            return  # cannot move it either: leave it in place, still boot
        self.quarantined.append(path.name)
        log.warning("quarantined undecodable spool file %s", path.name)

    def _load(self) -> None:
        assert self.spool_dir is not None
        for path in sorted((self.spool_dir / "jobs").glob("*.json")):
            record = self._decode_record_file(path)
            if record is None:
                self._quarantine(path)
                continue
            # A job RUNNING at crash time lost its worker: requeue it,
            # keeping the attempt charge — unless its attempts are already
            # exhausted, in which case it dead-letters (a poison job that
            # takes the whole daemon down must not crash-loop forever).
            # On a *shared* spool the RUNNING job may belong to a live
            # peer, so boot must leave it alone — lease expiry, observed
            # by whichever daemon owns the shard, decides it is orphaned.
            if record.state is JobState.RUNNING and not self.shared:
                record.owner = None
                record.lease_deadline = None
                if record.attempts >= record.max_retries:
                    record.state = JobState.FAILED
                    record.error = (
                        record.error
                        or "daemon died while the job was running"
                    ) + f" (attempts exhausted: {record.attempts})"
                else:
                    record.state = JobState.PENDING
                self._persist(record)
            else:
                self._fingerprint(path)
            self._adopt(record)
