"""HTTP/REST gateway in front of the compile-service socket protocol.

Web clients cannot speak the JSON-lines socket protocol, so the gateway
translates a small REST surface onto :class:`~repro.service.client.
ServiceClient` requests.  Stdlib only (:mod:`http.server`); one gateway
fronts one daemon (or one farm member — any member can serve every job
on the shared spool).

Routes (all responses are JSON)::

    GET    /healthz                      daemon reachability (no auth)
    GET    /v1/backends                  registered backend names
    POST   /v1/jobs                      submit; body {"job": <wire job>,
                                         "timeout", "max_retries", "key",
                                         "priority", "deadline",
                                         "keep_program"}
    GET    /v1/jobs                      job summaries
    GET    /v1/jobs/<id>                 one job's status summary
    GET    /v1/jobs/<id>/result         ?wait=1&timeout=S blocks for it
    GET    /v1/jobs/<id>/program         captured program (keep_program)
    DELETE /v1/jobs/<id>                 cancel
    GET    /v1/stats                     daemon stats + gateway counters

Authentication is a per-client token table: ``Authorization: Bearer
<token>`` or ``X-Repro-Token: <token>``.  Unknown tokens get 401.  Each
token may carry a **submit quota** — a cap on accepted submissions
through this gateway — answered with 429 once exhausted.  With no token
table the gateway is open (trusted-network mode), with an optional
anonymous quota.

Fidelity matters more than convenience: the gateway relays the daemon's
**raw wire payloads** (metrics, programs, summaries) without decoding
and re-encoding them, so a REST ``result`` is byte-for-byte the JSON the
socket client would decode — the equivalence the farm acceptance test
asserts.
"""

from __future__ import annotations

import json
import logging
import re
import signal
import sys
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from .client import RemoteError, ServiceClient, ServiceUnavailable

log = logging.getLogger("repro.service")

#: request body cap — a wire job (gzip negotiation happens daemon-side,
#: bodies arrive as plain JSON here) comfortably fits
MAX_BODY_BYTES = 32 * 2**20


class GatewayError(Exception):
    """An HTTP-level rejection: carries the status code to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class TokenPolicy:
    """One client credential: the token, a display name, and an optional
    cap on submissions accepted through this gateway."""

    token: str
    name: str
    submit_quota: int | None = None


class GatewayAuth:
    """Token table + per-client submit accounting (thread-safe).

    ``policies=None`` runs the gateway open — any caller is "anonymous",
    bounded only by *anonymous_quota*.  With a table, a missing or
    unknown token is a 401 and an exhausted quota a 429.
    """

    def __init__(
        self,
        policies: list[TokenPolicy] | None = None,
        anonymous_quota: int | None = None,
    ) -> None:
        self._by_token = (
            {p.token: p for p in policies} if policies is not None else None
        )
        self._anonymous = TokenPolicy(
            token="", name="anonymous", submit_quota=anonymous_quota
        )
        self._submitted: dict[str, int] = {}
        self._rejected = 0
        self._lock = threading.Lock()

    @classmethod
    def from_file(
        cls, path: str | Path, anonymous_quota: int | None = None
    ) -> "GatewayAuth":
        """Load a token table: ``{"tokens": [{"token", "name", "quota"}]}``."""
        data = json.loads(Path(path).read_text())
        policies = [
            TokenPolicy(
                token=str(entry["token"]),
                name=str(entry.get("name", entry["token"][:8])),
                submit_quota=(
                    int(entry["quota"]) if entry.get("quota") is not None
                    else None
                ),
            )
            for entry in data.get("tokens", [])
        ]
        return cls(policies, anonymous_quota=anonymous_quota)

    @property
    def open(self) -> bool:
        return self._by_token is None

    def authenticate(self, token: str | None) -> TokenPolicy:
        if self._by_token is None:
            return self._anonymous
        if not token:
            raise GatewayError(
                401, "missing credentials: pass Authorization: Bearer "
                "<token> or X-Repro-Token"
            )
        policy = self._by_token.get(token)
        if policy is None:
            raise GatewayError(401, "unknown token")
        return policy

    def charge_submit(self, policy: TokenPolicy) -> None:
        """Count one submission against *policy*; 429 when over quota."""
        with self._lock:
            used = self._submitted.get(policy.name, 0)
            if (
                policy.submit_quota is not None
                and used >= policy.submit_quota
            ):
                self._rejected += 1
                raise GatewayError(
                    429,
                    f"submit quota exhausted for {policy.name!r} "
                    f"({used}/{policy.submit_quota} used)",
                )
            self._submitted[policy.name] = used + 1

    def counters(self) -> dict[str, Any]:
        with self._lock:
            return {
                "submits_per_client": dict(self._submitted),
                "rejected_submits": self._rejected,
                "open": self.open,
            }


_ROUTES = [
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/v1/backends$"), "backends"),
    ("POST", re.compile(r"^/v1/jobs$"), "submit"),
    ("GET", re.compile(r"^/v1/jobs$"), "jobs"),
    ("GET", re.compile(r"^/v1/stats$"), "stats"),
    ("GET", re.compile(r"^/v1/jobs/(?P<id>[\w.:-]+)/result$"), "result"),
    ("GET", re.compile(r"^/v1/jobs/(?P<id>[\w.:-]+)/program$"), "program"),
    ("GET", re.compile(r"^/v1/jobs/(?P<id>[\w.:-]+)$"), "status"),
    ("DELETE", re.compile(r"^/v1/jobs/(?P<id>[\w.:-]+)$"), "cancel"),
]


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request onto the daemon socket protocol."""

    protocol_version = "HTTP/1.1"
    server: "GatewayServer"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("gateway: " + format, *args)

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _token(self) -> str | None:
        header = self.headers.get("Authorization")
        if header and header.lower().startswith("bearer "):
            return header[len("bearer ") :].strip()
        return self.headers.get("X-Repro-Token")

    def _body(self) -> dict[str, Any]:
        header = self.headers.get("Content-Length")
        try:
            length = int(header) if header else 0
        except (TypeError, ValueError):
            # A malformed header is the client's fault: 400, not a 500
            # from the int() blowing up mid-dispatch.
            raise GatewayError(400, f"bad Content-Length: {header!r}")
        if length < 0:
            raise GatewayError(400, f"bad Content-Length: {header!r}")
        if length > MAX_BODY_BYTES:
            raise GatewayError(413, f"request body over {MAX_BODY_BYTES} bytes")
        # rfile.read(n) may return short on a socket stream; loop until the
        # declared length arrives or the client hangs up early.
        chunks: list[bytes] = []
        got = 0
        while got < length:
            chunk = self.rfile.read(length - got)
            if not chunk:
                raise GatewayError(400, "request body truncated")
            chunks.append(chunk)
            got += len(chunk)
        raw = b"".join(chunks)
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise GatewayError(400, f"request body is not JSON: {exc}")
        if not isinstance(body, dict):
            raise GatewayError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        gateway = self.server.gateway
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            for verb, pattern, name in _ROUTES:
                if verb != method:
                    continue
                match = pattern.match(parsed.path)
                if match is None:
                    continue
                handler = getattr(self, f"_op_{name}")
                status, payload = handler(gateway, match.groupdict(), query)
                self._reply(status, payload)
                return
            raise GatewayError(404, f"no route for {method} {parsed.path}")
        except GatewayError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except ServiceUnavailable as exc:
            self._reply(503, {"error": f"compile daemon unreachable: {exc}"})
        except RemoteError as exc:
            status = 404 if "unknown job" in str(exc) else 400
            self._reply(status, {"error": str(exc)})
        except Exception as exc:  # last-resort: never drop the connection
            log.exception("gateway: unhandled error on %s %s", method, self.path)
            self._reply(500, {"error": f"gateway failure: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- operations ----------------------------------------------------------
    # Each returns (status, payload).  Daemon payloads (metrics, programs,
    # summaries) are relayed verbatim — no decode/re-encode on this hop.

    def _op_healthz(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        client = gateway.client()
        try:
            client.ping(timeout=5.0)
        except (ServiceUnavailable, OSError) as exc:
            return 503, {"ok": False, "error": str(exc)}
        return 200, {"ok": True, "daemon": gateway.daemon_address}

    def _authenticated(self, gateway: "HttpGateway") -> TokenPolicy:
        return gateway.auth.authenticate(self._token())

    def _op_backends(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        return 200, {"backends": gateway.client().backends()}

    def _op_submit(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        policy = self._authenticated(gateway)
        body = self._body()
        job = body.get("job")
        if not isinstance(job, dict):
            raise GatewayError(
                400, 'submit body needs {"job": <wire-encoded job>}'
            )
        gateway.auth.charge_submit(policy)
        request: dict[str, Any] = {"op": "submit", "job": job}
        for knob in (
            "timeout", "max_retries", "key", "priority", "deadline",
            "keep_program",
        ):
            if body.get(knob) is not None:
                request[knob] = body[knob]
        response = gateway.client().request(request)
        return 202, {"id": response["id"]}

    def _op_jobs(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        response = gateway.client().request({"op": "jobs"})
        return 200, {"jobs": response["jobs"]}

    def _op_status(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        response = gateway.client().request(
            {"op": "status", "id": path["id"]}
        )
        return 200, {"job": response["job"]}

    def _op_result(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        wait = query.get("wait", "") in ("1", "true", "yes")
        try:
            timeout = float(query.get("timeout", 300.0))
        except ValueError:
            raise GatewayError(400, f"bad timeout {query.get('timeout')!r}")
        response = gateway.client().request(
            {"op": "result", "id": path["id"], "wait": wait,
             "timeout": timeout},
            # socket slack past the server-side deadline, as the socket
            # client does
            timeout=timeout + 30.0,
        )
        return 200, {"metrics": response["metrics"]}

    def _op_program(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        response = gateway.client().request(
            {"op": "program", "id": path["id"]}
        )
        return 200, {"program": response["program"]}

    def _op_cancel(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        response = gateway.client().request(
            {"op": "cancel", "id": path["id"]}
        )
        return 200, {"cancelled": response["cancelled"]}

    def _op_stats(
        self, gateway: "HttpGateway", path: dict, query: dict
    ) -> tuple[int, dict[str, Any]]:
        self._authenticated(gateway)
        response = gateway.client().request({"op": "stats"})
        return 200, {
            "stats": response["stats"],
            "gateway": gateway.auth.counters(),
        }


class GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    gateway: "HttpGateway"


class HttpGateway:
    """The REST front door: binds an HTTP listener, relays to one daemon.

    Thread-per-request (:class:`ThreadingHTTPServer`) so a long ``result
    ?wait=1`` poll cannot block other clients; every request opens its
    own short-lived daemon connection, exactly like the socket client."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        daemon_host: str = "127.0.0.1",
        daemon_port: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        auth: GatewayAuth | None = None,
    ) -> None:
        if socket_path is None and daemon_port is None:
            raise ValueError("need the daemon's socket_path or port")
        self._socket_path = socket_path
        self._daemon_host = daemon_host
        self._daemon_port = daemon_port
        self.auth = auth if auth is not None else GatewayAuth()
        self._httpd = GatewayServer((host, int(port)), _GatewayHandler)
        self._httpd.gateway = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def daemon_address(self) -> str:
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        return f"tcp:{self._daemon_host}:{self._daemon_port}"

    def client(self) -> ServiceClient:
        """A fresh per-request client (connection-stateless, like the
        daemon); retries stay low — HTTP callers have their own."""
        return ServiceClient(
            socket_path=self._socket_path,
            host=self._daemon_host,
            port=self._daemon_port,
            retries=1,
        )

    def start(self) -> None:
        """Serve in a background thread (tests and embedded use)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_gateway(
    socket_path: str | None = None,
    daemon_host: str = "127.0.0.1",
    daemon_port: int | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    auth_file: str | None = None,
    anonymous_quota: int | None = None,
) -> int:
    """Blocking entry point used by ``python -m repro gateway``."""
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    auth = (
        GatewayAuth.from_file(auth_file, anonymous_quota=anonymous_quota)
        if auth_file is not None
        else GatewayAuth(anonymous_quota=anonymous_quota)
    )
    gateway = HttpGateway(
        socket_path=socket_path,
        daemon_host=daemon_host,
        daemon_port=daemon_port,
        host=host,
        port=port,
        auth=auth,
    )
    # Machine-parseable readiness line, mirroring `repro serve`.
    print(f"repro-gateway: listening on {gateway.url}", flush=True)
    # SIGTERM (the supervisor's stop signal) exits 0 like Ctrl-C does.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        gateway.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        gateway.close()
    return 0
