"""Monte Carlo noise simulation of compiled RAA programs.

Samples the *same* error processes the analytic model of
:mod:`repro.noise.fidelity` integrates — per-gate depolarizing failures,
heating-scaled two-qubit errors, per-move atom loss, cooling-swap gate
errors, and per-stage movement decoherence — as independent Bernoulli
events.  A trial "succeeds" when no error fires, so the success-rate
estimator converges to the analytic total fidelity; the test suite uses
this agreement to validate the closed-form model end to end.

Also provides loss-aware execution summaries: which trial lost which atom
on which stage (failure injection for robustness studies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.program import Program, ProgramStore
from ..hardware.parameters import HardwareParams
from ..noise.movement_noise import atom_loss_probability, heating_gate_factor


@dataclass
class TrialOutcome:
    """One Monte Carlo execution of a program."""

    success: bool
    failed_stage: int | None = None
    failure_kind: str | None = None  # "1q" | "2q" | "loss" | "cooling" | "deco"
    lost_atom: int | None = None


@dataclass
class MonteCarloResult:
    """Aggregated Monte Carlo estimate."""

    trials: int
    successes: int
    outcomes: list[TrialOutcome] = field(default_factory=list)

    @property
    def success_probability(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def standard_error(self) -> float:
        p = self.success_probability
        return math.sqrt(max(p * (1 - p), 0.0) / self.trials) if self.trials else 0.0

    def failure_histogram(self) -> dict[str, int]:
        """Counts per failure kind."""
        hist: dict[str, int] = {}
        for o in self.outcomes:
            if not o.success and o.failure_kind:
                hist[o.failure_kind] = hist.get(o.failure_kind, 0) + 1
        return hist


def _stage_events(program: Program, params: HardwareParams):
    """Precompute per-stage Bernoulli failure probabilities.

    Returns a list of ``(stage_index, kind, probability, atom)`` events in
    execution order.  Loss events are matched to the analytic model by
    consuming ``program.atom_loss_log`` in order (one sample per moved atom
    per stage, recorded post-move).

    A columnar :class:`~repro.core.program.ProgramStore` is consumed by
    slicing its columns per stage — same events, same order, no object
    views; the legacy object walk is kept for materialized programs and
    the differential tests pin the two paths against each other.
    """
    events = []
    loss_iter = iter(program.atom_loss_log)
    n = program.num_qubits
    if isinstance(program, ProgramStore):
        s = program
        p_1q = 1.0 - params.f_1q
        p_deco_1q = 1.0 - math.exp(-params.t_1q / params.t1 * n)
        p_deco_move = 1.0 - math.exp(-params.t_per_move / params.t1 * n)
        p_deco_2q = 1.0 - math.exp(-params.t_2q / params.t1 * n)
        p_cool = 1.0 - params.f_2q
        for si in range(s.num_stages):
            if s.off_raman[si + 1] > s.off_raman[si]:
                for _ in range(s.off_raman[si + 1] - s.off_raman[si]):
                    events.append((si, "1q", p_1q, None))
                # layered 1Q decoherence
                events.append((si, "deco", p_deco_1q, None))
            for i in range(s.off_amd[si], s.off_amd[si + 1]):
                nv = next(loss_iter)
                events.append(
                    (si, "loss", atom_loss_probability(nv, params), s.amd_qubit[i])
                )
            if s.off_move[si + 1] > s.off_move[si]:
                events.append((si, "deco", p_deco_move, None))
            for i in range(s.off_gate[si], s.off_gate[si + 1]):
                p_gate = 1.0 - params.f_2q * heating_gate_factor(
                    s.gate_n_vib[i], params
                )
                events.append((si, "2q", min(max(p_gate, 0.0), 1.0), None))
            if s.off_gate[si + 1] > s.off_gate[si]:
                events.append((si, "deco", p_deco_2q, None))
            for i in range(s.off_cool[si], s.off_cool[si + 1]):
                for _ in range(2 * s.cool_atoms[i]):
                    events.append((si, "cooling", p_cool, None))
        return events
    for si, stage in enumerate(program.stages):
        if stage.one_qubit_gates:
            for _ in stage.one_qubit_gates:
                events.append((si, "1q", 1.0 - params.f_1q, None))
            # layered 1Q decoherence
            p_deco = 1.0 - math.exp(-params.t_1q / params.t1 * n)
            events.append((si, "deco", p_deco, None))
        for q in stage.atom_move_distance:
            nv = next(loss_iter)
            events.append((si, "loss", atom_loss_probability(nv, params), q))
        if stage.moves:
            p_deco = 1.0 - math.exp(-params.t_per_move / params.t1 * n)
            events.append((si, "deco", p_deco, None))
        for g in stage.gates:
            p_gate = 1.0 - params.f_2q * heating_gate_factor(g.n_vib, params)
            events.append((si, "2q", min(max(p_gate, 0.0), 1.0), None))
        if stage.gates:
            p_deco = 1.0 - math.exp(-params.t_2q / params.t1 * n)
            events.append((si, "deco", p_deco, None))
        for cool in stage.cooling:
            for _ in range(cool.num_cz):
                events.append((si, "cooling", 1.0 - params.f_2q, None))
    return events


def run_monte_carlo(
    program: Program,
    params: HardwareParams,
    trials: int = 2000,
    seed: int = 0,
    keep_outcomes: bool = False,
) -> MonteCarloResult:
    """Estimate end-to-end success probability by sampling error events."""
    rng = np.random.default_rng(seed)
    events = _stage_events(program, params)
    probs = np.array([p for _, _, p, _ in events])
    successes = 0
    outcomes: list[TrialOutcome] = []
    for _ in range(trials):
        draws = rng.random(len(probs))
        failed = np.nonzero(draws < probs)[0]
        if failed.size == 0:
            successes += 1
            if keep_outcomes:
                outcomes.append(TrialOutcome(success=True))
        elif keep_outcomes:
            first = int(failed[0])
            si, kind, _, atom = events[first]
            outcomes.append(
                TrialOutcome(
                    success=False,
                    failed_stage=si,
                    failure_kind=kind,
                    lost_atom=atom,
                )
            )
    return MonteCarloResult(trials=trials, successes=successes, outcomes=outcomes)


def analytic_reference(program: Program, params: HardwareParams) -> float:
    """Product of (1 - p) over the same event list — must equal the MC mean
    in expectation and match :func:`repro.noise.estimate_raa_fidelity` up to
    the layering conventions shared by both."""
    prod = 1.0
    for _, _, p, _ in _stage_events(program, params):
        prod *= 1.0 - p
    return prod
