"""Dense statevector simulator for small circuits (verification substrate).

Used by the test suite and examples to check *semantic* equivalence of
compiled artifacts: a routed circuit (with its SWAP-induced output
permutation) and a compiled RAA stage program must implement the same
unitary as the input circuit, up to global phase.

The implementation applies gates directly to the 2^n amplitude tensor via
axis manipulation — O(2^n) per 1Q/2Q gate — comfortably handling the <= 14
qubit circuits used for verification.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix


class SimulationError(ValueError):
    """Raised on unsupported simulation input."""


class Statevector:
    """A dense n-qubit state with in-place gate application.

    Qubit 0 is the most significant bit of the basis index, matching the
    matrix convention in :mod:`repro.circuits.gates`.
    """

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        if num_qubits < 1 or num_qubits > 20:
            raise SimulationError(f"unsupported qubit count {num_qubits}")
        self.num_qubits = num_qubits
        if data is None:
            self.data = np.zeros(2**num_qubits, dtype=complex)
            self.data[0] = 1.0
        else:
            if data.shape != (2**num_qubits,):
                raise SimulationError("statevector shape mismatch")
            self.data = data.astype(complex)

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data.copy())

    # -- gate application ---------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        """Apply a 1Q/2Q unitary gate in place (directives are ignored)."""
        if gate.is_directive:
            return
        matrix = gate_matrix(gate)
        self.apply_matrix(matrix, gate.qubits)

    def apply_matrix(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply *matrix* to the given qubits in place.

        Contracts the gate tensor against the state with ``np.tensordot``
        and moves the produced axes back with ``np.moveaxis`` — one
        materialised copy per gate instead of the two explicit
        transpose-reshape round trips of the naive formulation.
        """
        n = self.num_qubits
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError("matrix arity mismatch")
        tensor = self.data.reshape([2] * n)
        gate = matrix.reshape([2] * (2 * k))
        # Output axes of the contraction come first, in gate-qubit order.
        tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), list(qubits)))
        self.data = np.ascontiguousarray(
            np.moveaxis(tensor, range(k), qubits)
        ).reshape(-1)

    def run(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply every gate of *circuit* in order; returns self."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for g in circuit.gates:
            self.apply_gate(g)
        return self

    # -- measurements --------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities in the computational basis."""
        return np.abs(self.data) ** 2

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> dict[str, int]:
        """Sample bitstring counts (qubit 0 leftmost)."""
        rng = rng or np.random.default_rng(0)
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        values, tallies = np.unique(outcomes, return_counts=True)
        width = self.num_qubits
        return {
            format(int(v), f"0{width}b"): int(c)
            for v, c in zip(values, tallies)
        }

    def fidelity_with(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(abs(np.vdot(self.data, other.data)) ** 2)


def simulate(circuit: QuantumCircuit) -> Statevector:
    """Simulate *circuit* from |0...0>."""
    return Statevector(circuit.num_qubits).run(circuit)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of *circuit* (columns = basis-state images)."""
    n = circuit.num_qubits
    dim = 2**n
    if n > 10:
        raise SimulationError("unitary extraction limited to 10 qubits")
    cols = []
    for basis in range(dim):
        vec = np.zeros(dim, dtype=complex)
        vec[basis] = 1.0
        sv = Statevector(n, vec).run(circuit.without_directives())
        cols.append(sv.data)
    return np.stack(cols, axis=1)


def equivalent_up_to_permutation(
    original: QuantumCircuit,
    routed: QuantumCircuit,
    output_permutation: dict[int, int],
    tol: float = 1e-8,
) -> bool:
    """Does *routed* equal *original* up to the final qubit permutation?

    ``output_permutation[logical] = physical`` is where each logical qubit
    ends up after routing (SABRE's final layout).  Verified on statevectors
    from a few random product inputs rather than the full unitary, keeping
    the check cheap for ~12-qubit circuits.
    """
    n = original.num_qubits
    if routed.num_qubits < n:
        return False
    rng = np.random.default_rng(11)
    for _ in range(3):
        # random product state on n qubits
        state = np.array([1.0], dtype=complex)
        singles = []
        for _ in range(n):
            a = rng.normal(size=2) + 1j * rng.normal(size=2)
            a /= np.linalg.norm(a)
            singles.append(a)
            state = np.kron(state, a)
        out_orig = Statevector(n, state).run(original.without_directives())

        # same product state on the routed register (extra wires in |0>)
        m = routed.num_qubits
        big = np.array([1.0], dtype=complex)
        wire_states = []
        inverse = {p: l for l, p in output_permutation.items()}
        # initial layout: logical q starts at physical q for SABRE-trivial
        # layouts; the caller must pass circuits consistent with that.
        for wire in range(m):
            if wire < n:
                wire_states.append(singles[wire])
            else:
                wire_states.append(np.array([1.0, 0.0], dtype=complex))
        for ws in wire_states:
            big = np.kron(big, ws)
        out_routed = Statevector(m, big).run(routed.without_directives())

        # undo the output permutation: logical q sits at physical P[q]
        tensor = out_routed.data.reshape([2] * m)
        perm = []
        used = set()
        for logical in range(n):
            perm.append(output_permutation[logical])
            used.add(output_permutation[logical])
        perm += [w for w in range(m) if w not in used]
        tensor = np.transpose(tensor, perm)
        # trace out the ancilla wires (they must be |0>)
        flat = tensor.reshape(2**n, -1)
        main = flat[:, 0]
        residual = np.linalg.norm(flat[:, 1:])
        if residual > tol * 10:
            return False
        overlap = abs(np.vdot(out_orig.data, main))
        if abs(overlap - 1.0) > 1e-6:
            return False
    return True
