"""Replay a compiled RAA stage program as an ordinary circuit.

Each stage's Raman pulses and Rydberg gates are appended in stage order;
because gates within a stage act on disjoint qubits and stage order is a
topological order of the transpiled circuit's DAG, the replayed circuit is
unitarily identical to the transpiled circuit — the property
``tests/sim`` verifies end to end with the statevector simulator.
"""

from __future__ import annotations

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.instructions import RAAProgram


def program_to_circuit(program: RAAProgram) -> QuantumCircuit:
    """Reconstruct the executed circuit from a stage program.

    Cooling swaps exchange an AOD array with an identically-prepared twin,
    which is the identity at the logical level, so cooling events do not
    contribute gates here.
    """
    circ = QuantumCircuit(program.num_qubits, "replayed")
    for stage in program.stages:
        for pulse in stage.one_qubit_gates:
            circ.append(Gate(pulse.name, (pulse.qubit,), pulse.params))
        for gate in stage.gates:
            circ.append(
                Gate(gate.name, (gate.qubit_a, gate.qubit_b), gate.params)
            )
    return circ
