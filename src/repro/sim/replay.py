"""Replay a compiled RAA stage program as an ordinary circuit.

Each stage's Raman pulses and Rydberg gates are appended in stage order;
because gates within a stage act on disjoint qubits and stage order is a
topological order of the transpiled circuit's DAG, the replayed circuit is
unitarily identical to the transpiled circuit — the property
``tests/sim`` verifies end to end with the statevector simulator.
"""

from __future__ import annotations

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.program import Program, ProgramStore


def program_to_circuit(program: Program) -> QuantumCircuit:
    """Reconstruct the executed circuit from a stage program.

    Cooling swaps exchange an AOD array with an identically-prepared twin,
    which is the identity at the logical level, so cooling events do not
    contribute gates here.

    A columnar :class:`~repro.core.program.ProgramStore` replays straight
    off its pulse/gate columns (stage-order slices), skipping the
    dataclass views entirely.
    """
    circ = QuantumCircuit(program.num_qubits, "replayed")
    if isinstance(program, ProgramStore):
        s = program
        append = circ.append
        for si in range(s.num_stages):
            for i in range(s.off_raman[si], s.off_raman[si + 1]):
                append(
                    Gate(s.raman_name[i], (s.raman_qubit[i],), s.raman_params[i])
                )
            for i in range(s.off_gate[si], s.off_gate[si + 1]):
                append(
                    Gate(
                        s.gate_name[i],
                        (s.gate_a[i], s.gate_b[i]),
                        s.gate_params[i],
                    )
                )
        return circ
    for stage in program.stages:
        for pulse in stage.one_qubit_gates:
            circ.append(Gate(pulse.name, (pulse.qubit,), pulse.params))
        for gate in stage.gates:
            circ.append(
                Gate(gate.name, (gate.qubit_a, gate.qubit_b), gate.params)
            )
    return circ
