"""Statevector simulation and program replay for semantic verification."""

from .noisy import MonteCarloResult, analytic_reference, run_monte_carlo
from .replay import program_to_circuit
from .statevector import (
    SimulationError,
    Statevector,
    circuit_unitary,
    equivalent_up_to_permutation,
    simulate,
)

__all__ = [
    "MonteCarloResult",
    "SimulationError",
    "Statevector",
    "analytic_reference",
    "circuit_unitary",
    "equivalent_up_to_permutation",
    "program_to_circuit",
    "run_monte_carlo",
    "simulate",
]
