"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compile   compile an OpenQASM 2.0 file for an RAA and print metrics
          (optionally dump the stage program as JSON)
compare   compile a QASM file on all five architectures (mini Fig. 13)
bench     print Table II statistics for the built-in benchmark suites;
          with ``--perf``, time end-to-end routing on the 50+ qubit
          generator suite and write ``BENCH_router.json``
serve     run the compile-service daemon (async job queue over
          ``compile_many`` with sharded workers and on-disk caches);
          ``--faults`` arms a chaos fault-injection plan; ``--farm``
          joins a multi-daemon compile farm on a shared ``--spool``
          (shard leases, takeover, work-stealing)
gateway   run the HTTP/REST front door for a daemon (stdlib server;
          token auth + submit quotas via ``--auth-file``)
submit    send a QASM file to a running daemon, optionally waiting for
          and printing the resulting metrics; ``--timeout`` and
          ``--max-retries`` bound the daemon-side attempts;
          ``--priority``/``--deadline`` shape queue order and
          ``--fetch-program`` saves the compiled stage program
jobs      list a daemon's jobs; ``--failed`` shows only dead-letter
          entries with their attempt counts and last errors; ``--stats``
          appends the robustness counters (quarantined spool files,
          dead letters, per-shard lease owners, steals)
cache     inspect or garbage-collect an on-disk cache directory
          (pipeline prefix caches and result caches share one layout)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _load_circuit(path: str):
    from .circuits import parse_qasm

    text = Path(path).read_text()
    return parse_qasm(text, name=Path(path).stem)


def cmd_compile(args: argparse.Namespace) -> int:
    from .core import AtomiqueCompiler
    from .core.serialize import dumps
    from .hardware import RAAArchitecture
    from .noise import estimate_raa_fidelity

    circuit = _load_circuit(args.qasm)
    arch = RAAArchitecture.default(side=args.side, num_aods=args.aods)
    result = AtomiqueCompiler(arch).compile(circuit)
    fidelity = estimate_raa_fidelity(result.program, arch.params)
    print(f"circuit          : {circuit.name} ({circuit.num_qubits} qubits)")
    print(f"2Q gates         : {result.num_2q_gates}")
    print(f"2Q depth         : {result.depth}")
    print(f"SWAPs inserted   : {result.num_swaps}")
    print(f"fidelity         : {fidelity.total:.4f}")
    print(f"execution time   : {result.execution_time() * 1e3:.2f} ms")
    print(f"compile time     : {result.compile_seconds * 1e3:.1f} ms")
    for name, seconds in result.pass_seconds.items():
        print(f"  pass {name:<12s} : {seconds * 1e3:.1f} ms")
    if args.output:
        Path(args.output).write_text(
            dumps(result.program, indent=2, columnar=args.columnar)
        )
        print(f"stage program written to {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .baselines.registry import CompileOptions
    from .experiments import ARCHITECTURES, CompileJob, compile_many, raa_for

    circuit = _load_circuit(args.qasm)
    jobs = [
        CompileJob(
            arch,
            circuit,
            CompileOptions(raa=raa_for(circuit) if arch == "Atomique" else None),
        )
        for arch in ARCHITECTURES
    ]
    metrics = compile_many(jobs, workers=args.jobs)
    print(format_table([m.row() for m in metrics]))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.perf:
        from .bench import bench_router, format_report

        report = bench_router(output=args.output)
        print(format_report(report))
        print(f"report written to {args.output}")
        return 0
    from .analysis import format_table
    from .experiments import benchmark_statistics

    print(format_table(benchmark_statistics()))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve_forever

    fault_spec = args.faults
    if fault_spec and fault_spec.startswith("@"):
        fault_spec = Path(fault_spec[1:]).read_text()
    return serve_forever(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        spool_dir=args.spool,
        shards=args.shards,
        prefix_cache_dir=args.prefix_cache,
        result_cache_dir=args.result_cache,
        inline=args.inline,
        lease_seconds=args.lease,
        fault_spec=fault_spec,
        farm=args.farm,
        node=args.node,
        workers=args.workers,
        shard_lease_seconds=args.shard_lease,
    )


def cmd_gateway(args: argparse.Namespace) -> int:
    from .service import serve_gateway

    return serve_gateway(
        socket_path=args.daemon_socket,
        daemon_host=args.daemon_host,
        daemon_port=args.daemon_port,
        host=args.host,
        port=args.port,
        auth_file=args.auth_file,
        anonymous_quota=args.anonymous_quota,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .baselines.registry import CompileOptions
    from .experiments import CompileJob, raa_for
    from .service import ServiceClient

    backends = args.backend or ["Atomique"]
    if args.fetch_program and backends != ["Atomique"]:
        print(
            "--fetch-program captures Atomique stage programs only "
            "(submit exactly one Atomique job)",
            file=sys.stderr,
        )
        return 2
    circuit = _load_circuit(args.qasm)
    client = ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    )
    job_ids: list[str] = []
    for backend in backends:
        raa = raa_for(circuit) if backend == "Atomique" else None
        job = CompileJob(
            backend, circuit, CompileOptions(raa=raa, seed=args.seed)
        )
        key = f"{args.key}:{backend}" if args.key else None
        job_id = client.submit(
            job,
            timeout=args.timeout,
            max_retries=args.max_retries,
            key=key,
            priority=args.priority,
            deadline=args.deadline,
            keep_program=bool(args.fetch_program),
        )
        job_ids.append(job_id)
        print(f"submitted {job_id} ({backend})")
    if args.stream:
        # One streaming connection per job: per-pass progress lines as the
        # daemon reports them, then metrics (and the program, chunked over
        # binary frames, when --fetch-program asked for it).
        def show(event: dict) -> None:
            print(
                f"  [{event.get('index')}/{event.get('total')}] "
                f"{event.get('pass')} ({event.get('seconds', 0.0):.3f}s)"
            )

        rows = []
        program = None
        for job_id in job_ids:
            metrics, store = client.result_stream(job_id, on_event=show)
            rows.append(metrics.row())
            if program is None and store is not None:
                program = store
        print(format_table(rows))
        if args.fetch_program:
            from .core.serialize import dumps

            if program is None:  # pre-streaming daemon: classic fetch
                program = client.program(job_ids[0])
            Path(args.fetch_program).write_text(dumps(program, indent=2))
            print(f"stage program written to {args.fetch_program}")
        return 0
    if args.wait or args.fetch_program:
        rows = [m.row() for m in client.results(job_ids)]
        print(format_table(rows))
    if args.fetch_program:
        from .core.serialize import dumps

        program = client.program(job_ids[0])
        Path(args.fetch_program).write_text(dumps(program, indent=2))
        print(f"stage program written to {args.fetch_program}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    )
    records = client.jobs()
    if args.failed:
        records = [r for r in records if r.get("state") == "failed"]
    if not records:
        print("no failed jobs" if args.failed else "no jobs")
    for record in records:
        line = (
            f"{record['id']}  {record['state']:<9s} "
            f"{record.get('backend', '?'):<12s} "
            f"{record.get('benchmark', '?'):<20s} "
            f"attempts={record.get('attempts', 0)}/"
            f"{record.get('max_retries', '?')}"
        )
        print(line)
        error = record.get("error")
        if error:
            # dead-letter detail: the last error, indented under the row
            for errline in str(error).strip().splitlines():
                print(f"    {errline}")
    if args.stats:
        stats = client.stats()
        print("-- robustness --")
        print(f"node               : {stats.get('node', '?')}")
        print(f"quarantined spool  : {stats.get('quarantined_spool_files', 0)}")
        print(f"dead-lettered      : {stats.get('dead_lettered', 0)}")
        print(f"retried jobs       : {stats.get('retried_jobs', 0)}")
        print(f"steals             : {stats.get('steals', 0)}")
        print(
            f"shards claimed/lost: {stats.get('shards_claimed', 0)}"
            f"/{stats.get('shards_lost', 0)}"
        )
        leases = stats.get("shard_leases")
        if leases:
            for row in leases:
                owner = row.get("owner") or "-"
                age = row.get("lease_age")
                flag = " EXPIRED" if row.get("expired") else ""
                print(
                    f"  shard {row['shard']:>3d}: owner={owner} "
                    f"epoch={row.get('epoch', 0)} "
                    f"lease_age={age if age is None else f'{age:.1f}s'}"
                    f"{flag}"
                )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .core.pipeline import cache_clear, cache_stats, evict_lru

    if args.action == "stats":
        stats = cache_stats(args.directory)
        print(f"directory    : {stats['directory']}")
        print(f"entries      : {stats['entries']}")
        print(f"total bytes  : {stats['total_bytes']}")
        if stats["oldest_mtime"] is not None:
            from datetime import datetime

            def fmt(ts: float) -> str:
                return datetime.fromtimestamp(ts).isoformat(
                    sep=" ", timespec="seconds"
                )

            print(f"oldest entry : {fmt(stats['oldest_mtime'])}")
            print(f"newest entry : {fmt(stats['newest_mtime'])}")
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            print("cache gc requires --max-bytes", file=sys.stderr)
            return 2
        report = evict_lru(args.directory, args.max_bytes)
        print(
            f"evicted {report['removed']} entries "
            f"({report['removed_bytes']} bytes); "
            f"{report['remaining_bytes']} bytes remain"
        )
        return 0
    removed = cache_clear(args.directory)
    print(f"cleared {removed} entries from {args.directory}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atomique: quantum compiler for reconfigurable atom arrays",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a QASM file for an RAA")
    p_compile.add_argument("qasm", help="OpenQASM 2.0 input file")
    p_compile.add_argument("--side", type=int, default=10, help="array side")
    p_compile.add_argument("--aods", type=int, default=2, help="number of AODs")
    p_compile.add_argument("-o", "--output", help="write stage program JSON here")
    p_compile.add_argument(
        "--columnar",
        action="store_true",
        help="write the compact columnar program format (v2) instead of the "
        "stage-list format (v1)",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_compare = sub.add_parser(
        "compare", help="compile on all five architectures"
    )
    p_compare.add_argument("qasm", help="OpenQASM 2.0 input file")
    p_compare.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="compile the architectures on N worker processes",
    )
    p_compare.set_defaults(func=cmd_compare)

    p_bench = sub.add_parser(
        "bench",
        help="print Table II suite statistics, or time the router (--perf)",
    )
    p_bench.add_argument(
        "--perf",
        action="store_true",
        help="run the router compile-speed benchmark instead",
    )
    p_bench.add_argument(
        "-o",
        "--output",
        default="BENCH_router.json",
        help="where --perf writes its JSON report",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the compile-service daemon"
    )
    p_serve.add_argument(
        "--socket", help="listen on this Unix socket path (default: TCP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p_serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--spool", help="persist the job queue and results in this directory"
    )
    p_serve.add_argument(
        "--shards", type=int, default=2, help="number of worker processes"
    )
    p_serve.add_argument(
        "--prefix-cache",
        help="disk-backed pipeline prefix cache directory (shared by shards "
        "and across daemon restarts)",
    )
    p_serve.add_argument(
        "--result-cache",
        help="on-disk whole-result cache directory (repeat submissions skip "
        "recompilation)",
    )
    p_serve.add_argument(
        "--inline",
        action="store_true",
        help="run jobs in the server process instead of worker shards",
    )
    p_serve.add_argument(
        "--lease",
        type=float,
        default=30.0,
        help="job lease duration in seconds (heartbeats extend it; an "
        "expired lease requeues the job)",
    )
    p_serve.add_argument(
        "--faults",
        help="chaos testing: a JSON fault-plan spec (or @file), see "
        "repro.service.faults",
    )
    p_serve.add_argument(
        "--farm",
        action="store_true",
        help="join a multi-daemon compile farm on the shared --spool "
        "(shard-ownership leases, dead-daemon takeover, work-stealing)",
    )
    p_serve.add_argument(
        "--node",
        help="farm node name (must be unique per daemon; default: "
        "daemon-<pid>)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per daemon (default: --shards, or 2 in "
        "--farm mode where shards outnumber daemons)",
    )
    p_serve.add_argument(
        "--shard-lease",
        type=float,
        default=10.0,
        help="farm shard-lease duration in seconds (a daemon that stops "
        "renewing loses its shards to peers)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_gateway = sub.add_parser(
        "gateway", help="run the HTTP/REST front door for a daemon"
    )
    p_gateway.add_argument(
        "--daemon-socket", help="daemon Unix socket path (default: TCP)"
    )
    p_gateway.add_argument(
        "--daemon-host", default="127.0.0.1", help="daemon TCP host"
    )
    p_gateway.add_argument(
        "--daemon-port", type=int, default=None, help="daemon TCP port"
    )
    p_gateway.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind host"
    )
    p_gateway.add_argument(
        "--port", type=int, default=0, help="HTTP port (0 picks a free one)"
    )
    p_gateway.add_argument(
        "--auth-file",
        help='token table JSON: {"tokens": [{"token", "name", "quota"}]}; '
        "without it the gateway is open",
    )
    p_gateway.add_argument(
        "--anonymous-quota",
        type=int,
        default=None,
        help="submit cap for unauthenticated clients on an open gateway",
    )
    p_gateway.set_defaults(func=cmd_gateway)

    p_submit = sub.add_parser(
        "submit", help="submit a QASM file to a running daemon"
    )
    p_submit.add_argument("qasm", help="OpenQASM 2.0 input file")
    p_submit.add_argument(
        "--backend",
        action="append",
        default=None,
        help="backend name (repeatable; default: Atomique)",
    )
    p_submit.add_argument(
        "--socket", help="daemon Unix socket path (default: TCP host/port)"
    )
    p_submit.add_argument("--host", default="127.0.0.1", help="daemon TCP host")
    p_submit.add_argument("--port", type=int, help="daemon TCP port")
    p_submit.add_argument("--seed", type=int, default=7, help="compile seed")
    p_submit.add_argument(
        "--wait",
        action="store_true",
        help="block until every job finishes and print the metrics table",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job compile deadline in seconds (a timed-out attempt "
        "retries; exhausted retries dead-letter the job)",
    )
    p_submit.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="attempts before the job dead-letters as FAILED (default: "
        "the daemon's policy, 3)",
    )
    p_submit.add_argument(
        "--key",
        help="idempotency key prefix: resubmitting with the same key "
        "returns the existing job instead of enqueuing a duplicate",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=None,
        help="queue priority (higher dispatches first; default 0)",
    )
    p_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="seconds from now the job must *dispatch* by, or it fails "
        "with a deadline error; also breaks priority ties (EDF)",
    )
    p_submit.add_argument(
        "--fetch-program",
        metavar="PATH",
        help="submit with keep_program, wait, and write the compiled "
        "Atomique stage program JSON here (single Atomique job only)",
    )
    p_submit.add_argument(
        "--stream",
        action="store_true",
        help="wait over a streaming connection: per-pass progress lines "
        "as the daemon compiles, and (with --fetch-program) the program "
        "fetched in chunks over binary frames",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a running daemon's jobs"
    )
    p_jobs.add_argument(
        "--socket", help="daemon Unix socket path (default: TCP host/port)"
    )
    p_jobs.add_argument("--host", default="127.0.0.1", help="daemon TCP host")
    p_jobs.add_argument("--port", type=int, help="daemon TCP port")
    p_jobs.add_argument(
        "--failed",
        action="store_true",
        help="show only dead-lettered jobs (attempt counts + last errors)",
    )
    p_jobs.add_argument(
        "--stats",
        action="store_true",
        help="append the robustness counters: quarantined spool files, "
        "dead letters, retries, steals, per-shard lease owners + ages",
    )
    p_jobs.set_defaults(func=cmd_jobs)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect an on-disk cache directory",
    )
    p_cache.add_argument(
        "action", choices=["stats", "gc", "clear"], help="what to do"
    )
    p_cache.add_argument(
        "directory",
        help="cache directory (a --prefix-cache / --result-cache dir)",
    )
    p_cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: evict least-recently-used entries until the directory "
        "fits this many bytes",
    )
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
