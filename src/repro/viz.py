"""ASCII visualization of circuits, array layouts, and stage programs.

Pure-text renderers for terminals and logs:

* :func:`draw_circuit` — wire diagram of a (small) circuit;
* :func:`draw_placement` — the SLM/AOD grids with qubit positions;
* :func:`draw_stage` — one router stage: which lines move where and which
  pairs interact;
* :func:`draw_program_summary` — per-stage one-liners for a whole program.
"""

from __future__ import annotations

from .circuits.circuit import QuantumCircuit
from .core.instructions import Stage
from .core.program import Program, StageView
from .hardware.raa import AtomLocation, RAAArchitecture

_MAX_DRAW_GATES = 80


def draw_circuit(circuit: QuantumCircuit, max_gates: int = _MAX_DRAW_GATES) -> str:
    """Render *circuit* as an ASCII wire diagram (one column per gate)."""
    n = circuit.num_qubits
    gates = [g for g in circuit.gates if not g.is_directive][:max_gates]
    rows = [[f"q{q:<2}|"] for q in range(n)]
    for g in gates:
        if g.is_one_qubit:
            label = g.name.upper()[:3]
        else:
            label = g.name.upper()[:4]
        width = max(len(label) + 2, 5)
        involved = set(g.qubits)
        lo, hi = min(involved), max(involved)
        for q in range(n):
            if q in involved:
                if g.num_qubits == 1 or q == g.qubits[-1]:
                    cell = label.center(width, "-")
                else:
                    cell = "o".center(width, "-")
            elif lo < q < hi:
                cell = "|".center(width, "-")
            else:
                cell = "-" * width
            rows[q].append(cell)
    truncated = len([g for g in circuit.gates if not g.is_directive]) > len(gates)
    out = "\n".join("".join(r) for r in rows)
    if truncated:
        out += f"\n... ({len(circuit)} ops total, first {max_gates} drawn)"
    return out


def draw_placement(
    architecture: RAAArchitecture, locations: dict[int, AtomLocation]
) -> str:
    """Render every array's grid with qubit ids at their traps."""
    blocks: list[str] = []
    cell = max(
        (len(str(q)) for q in locations), default=1
    ) + 1
    for arr in range(architecture.num_arrays):
        shape = architecture.array_shape(arr)
        name = "SLM" if arr == 0 else f"AOD{arr}"
        grid = {}
        for q, loc in locations.items():
            if loc.array == arr:
                grid[(loc.row, loc.col)] = str(q)
        lines = [f"{name} ({shape.rows}x{shape.cols}):"]
        for r in range(shape.rows):
            row_cells = []
            for c in range(shape.cols):
                row_cells.append(grid.get((r, c), ".").rjust(cell))
            lines.append(" ".join(row_cells))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def draw_stage(stage: Stage | StageView, index: int | None = None) -> str:
    """Render one stage: Raman pulses, line moves, Rydberg pairs, cooling."""
    header = f"stage {index}:" if index is not None else "stage:"
    lines = [header]
    if stage.one_qubit_gates:
        names = ", ".join(
            f"{p.name} q{p.qubit}" for p in stage.one_qubit_gates[:8]
        )
        extra = (
            f" (+{len(stage.one_qubit_gates) - 8} more)"
            if len(stage.one_qubit_gates) > 8
            else ""
        )
        lines.append(f"  raman : {names}{extra}")
    for m in stage.moves:
        lines.append(
            f"  move  : AOD{m.aod} {m.axis}{m.index} "
            f"{m.start:.2f} -> {m.end:.2f}"
        )
    for g in stage.gates:
        lines.append(
            f"  gate  : {g.name} q{g.qubit_a}-q{g.qubit_b} @ "
            f"({g.site[0]:g}, {g.site[1]:g})"
        )
    for c in stage.cooling:
        lines.append(f"  cool  : AOD{c.aod} swap ({c.num_atoms} atoms, "
                     f"{c.num_cz} CZ)")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def draw_program_summary(program: Program, max_stages: int = 40) -> str:
    """One line per stage: move/gate/cooling counts."""
    lines = [
        f"RAA program: {program.num_qubits} qubits, "
        f"{len(program.stages)} stages, {program.num_2q_gates} 2Q gates, "
        f"depth {program.two_qubit_depth}"
    ]
    for i, s in enumerate(program.stages[:max_stages]):
        parts = []
        if s.one_qubit_gates:
            parts.append(f"{len(s.one_qubit_gates)}x1Q")
        if s.moves:
            parts.append(f"{len(s.moves)} moves")
        if s.gates:
            pairs = " ".join(f"({g.qubit_a},{g.qubit_b})" for g in s.gates[:6])
            more = "..." if len(s.gates) > 6 else ""
            parts.append(f"CZ {pairs}{more}")
        if s.cooling:
            parts.append("COOL")
        lines.append(f"  [{i:3d}] " + "  ".join(parts))
    if len(program.stages) > max_stages:
        lines.append(f"  ... ({len(program.stages) - max_stages} more stages)")
    return "\n".join(lines)
