"""Fig. 21 ablation configurations: cumulative technique breakdown.

The paper's baseline replaces each Atomique technique with a naive one —
dense array mapping, random atom mapping, serial (one gate per stage)
routing — and adds the real techniques back cumulatively:

1. ``baseline``        — dense + random + serial;
2. ``+array_mapper``   — maxkcut + random + serial;
3. ``+atom_mapper``    — maxkcut + loadbalance + serial;
4. ``+router``         — maxkcut + loadbalance + parallel (full Atomique).
"""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueConfig
from ..core.router import RouterConfig
from ..hardware.raa import RAAArchitecture
from .atomique_adapter import compile_on_atomique

ABLATION_STEPS: list[tuple[str, AtomiqueConfig]] = []


def ablation_configs() -> list[tuple[str, AtomiqueConfig]]:
    """The four cumulative configurations, in order."""
    return [
        (
            "baseline",
            AtomiqueConfig(
                array_mapper="dense",
                atom_mapper="random",
                router=RouterConfig(serial=True),
            ),
        ),
        (
            "+array_mapper",
            AtomiqueConfig(
                array_mapper="maxkcut",
                atom_mapper="random",
                router=RouterConfig(serial=True),
            ),
        ),
        (
            "+atom_mapper",
            AtomiqueConfig(
                array_mapper="maxkcut",
                atom_mapper="loadbalance",
                router=RouterConfig(serial=True),
            ),
        ),
        (
            "+router",
            AtomiqueConfig(
                array_mapper="maxkcut",
                atom_mapper="loadbalance",
                router=RouterConfig(serial=False),
            ),
        ),
    ]


def run_ablation(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    workers: int = 1,
) -> list[CompiledMetrics]:
    """Compile *circuit* under each cumulative configuration.

    Jobs go through the batch driver: ``workers > 1`` fans the four
    configurations out over a process pool, while the serial default
    shares a pipeline prefix cache so configurations agreeing on a
    (circuit, array-mapping) prefix reuse the SABRE artifact.
    """
    from ..core.pipeline import PipelineCache
    from ..experiments.batch import CompileJob, compile_many
    from .registry import CompileOptions

    arch = architecture or RAAArchitecture.default()
    cache = PipelineCache() if workers <= 1 else None
    jobs = [
        CompileJob(
            "Atomique",
            circuit,
            CompileOptions(
                raa=arch, config=cfg, label=label, pipeline_cache=cache
            ),
        )
        for label, cfg in ablation_configs()
    ]
    return compile_many(jobs, workers=workers)
