"""Adapter producing the uniform :class:`CompiledMetrics` from Atomique runs."""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueCompiler, AtomiqueConfig, CompileResult
from ..core.pipeline import PipelineCache
from ..hardware.raa import RAAArchitecture
from ..noise.fidelity import estimate_raa_fidelity


def metrics_from_result(
    result: CompileResult, benchmark: str, label: str = "Atomique"
) -> CompiledMetrics:
    """Score a finished :class:`CompileResult`."""
    params = result.architecture.params
    fidelity = estimate_raa_fidelity(result.program, params)
    extras = {
        f"pass_seconds.{name}": seconds
        for name, seconds in result.pass_seconds.items()
    }
    return CompiledMetrics(
        benchmark=benchmark,
        architecture=label,
        num_qubits=result.transpiled.num_qubits,
        num_2q_gates=result.num_2q_gates,
        num_1q_gates=result.num_1q_gates,
        depth=result.depth,
        fidelity=fidelity,
        additional_cnots=result.additional_cnots,
        compile_seconds=result.compile_seconds,
        execution_seconds=result.execution_time(),
        extras={
            "num_swaps": float(result.num_swaps),
            "avg_move_distance_m": result.avg_move_distance(),
            "total_move_distance_m": result.total_move_distance(),
            "overlap_rejections": float(result.program.overlap_rejections),
            "cooling_events": float(result.program.num_cooling_events),
            **extras,
        },
    )


def compile_on_atomique(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    config: AtomiqueConfig | None = None,
    label: str = "Atomique",
    cache: PipelineCache | None = None,
) -> CompiledMetrics:
    """Compile with Atomique and score (the default RAA is 10x10, 2 AODs).

    ``cache`` shares pipeline prefix artifacts (lowering, array mapping,
    SABRE, atom placement) across the compiles of a sweep.
    """
    arch = architecture or RAAArchitecture.default()
    result = AtomiqueCompiler(arch, config, cache=cache).compile(circuit)
    return metrics_from_result(result, circuit.name, label)
