"""Adapter producing the uniform :class:`CompiledMetrics` from Atomique runs."""

from __future__ import annotations

from ..analysis.metrics import CompiledMetrics, program_aggregates
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueCompiler, AtomiqueConfig, CompileResult
from ..core.pipeline import PipelineCache
from ..hardware.raa import RAAArchitecture
from ..noise.fidelity import estimate_raa_fidelity


def metrics_from_result(
    result: CompileResult, benchmark: str, label: str = "Atomique"
) -> CompiledMetrics:
    """Score a finished :class:`CompileResult`."""
    params = result.architecture.params
    fidelity = estimate_raa_fidelity(result.program, params)
    agg = program_aggregates(result.program, params)
    extras = {
        f"pass_seconds.{name}": seconds
        for name, seconds in result.pass_seconds.items()
    }
    return CompiledMetrics(
        benchmark=benchmark,
        architecture=label,
        num_qubits=result.transpiled.num_qubits,
        num_2q_gates=int(agg["num_2q_gates"]),
        num_1q_gates=int(agg["num_1q_gates"]),
        depth=int(agg["two_qubit_depth"]),
        fidelity=fidelity,
        additional_cnots=result.additional_cnots,
        compile_seconds=result.compile_seconds,
        execution_seconds=agg["execution_seconds"],
        extras={
            "num_swaps": float(result.num_swaps),
            "avg_move_distance_m": agg["avg_move_distance_m"],
            "total_move_distance_m": agg["total_move_distance_m"],
            "overlap_rejections": agg["overlap_rejections"],
            "cooling_events": agg["cooling_events"],
            **extras,
        },
    )


def compile_on_atomique(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    config: AtomiqueConfig | None = None,
    label: str = "Atomique",
    cache: PipelineCache | None = None,
) -> CompiledMetrics:
    """Compile with Atomique and score (the default RAA is 10x10, 2 AODs).

    ``cache`` shares pipeline prefix artifacts (lowering, array mapping,
    SABRE, atom placement) across the compiles of a sweep.
    """
    arch = architecture or RAAArchitecture.default()
    result = AtomiqueCompiler(arch, config, cache=cache).compile(circuit)
    return metrics_from_result(result, circuit.name, label)
