"""Comparison compilers: FAA variants, superconducting, Geyser, solver proxies, Q-Pilot, ablations."""

from .ablations import ablation_configs, run_ablation
from .atomique_adapter import compile_on_atomique, metrics_from_result
from .faa_compiler import compile_on_faa
from .geyser import atomique_pulse_count, block_circuit, geyser_pulse_count
from .qpilot import compile_on_qpilot, compile_qsim_on_qpilot, greedy_edge_coloring, mediated_qaoa_circuit
from .registry import (
    BackendSpec,
    CompileOptions,
    available_backends,
    get_backend,
    register_backend,
)
from .solver import (
    SolverTimeout,
    exact_bipartition,
    solver_architecture,
    tan_iterp_compile,
    tan_solver_compile,
)
from .superconducting import compile_on_superconducting
from .transfer import compile_with_transfers, segment_circuit

__all__ = [
    "BackendSpec",
    "CompileOptions",
    "SolverTimeout",
    "ablation_configs",
    "atomique_pulse_count",
    "available_backends",
    "block_circuit",
    "compile_on_atomique",
    "compile_on_faa",
    "compile_on_qpilot",
    "compile_on_superconducting",
    "compile_with_transfers",
    "exact_bipartition",
    "compile_qsim_on_qpilot",
    "greedy_edge_coloring",
    "mediated_qaoa_circuit",
    "get_backend",
    "geyser_pulse_count",
    "metrics_from_result",
    "register_backend",
    "run_ablation",
    "segment_circuit",
    "solver_architecture",
    "tan_iterp_compile",
    "tan_solver_compile",
]
