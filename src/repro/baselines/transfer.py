"""Transfer-based compilation: resolve intra-array gates by moving atoms
between traps instead of inserting SWAP gates.

The paper criticizes solver-based prior work for neglecting "the detrimental
impact of atom transfers between the SLM and AOD arrays; such atom transfers
can lead to atom loss ... significant in iterative algorithms like QAOA or
trotterized quantum simulations".  This module makes that comparison
executable: an Atomique variant that *re-partitions* the qubit-array
assignment whenever the front of the circuit stops being executable,
physically transferring the reassigned atoms (15 us and 0.68% loss chance
per transfer, Table I) instead of paying 3 CZ per SWAP.

Pipeline: segment the circuit greedily — each segment gets its own MAX
k-cut assignment computed on the segment's gates; qubits whose array differs
from the previous segment count as transfers.  Each segment routes with the
standard high-parallelism router.
"""

from __future__ import annotations

import time

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.decompose import lower_to_two_qubit
from ..core.array_mapper import gate_frequency_matrix, max_k_cut_assignment
from ..core.atom_mapper import map_qubits_to_atoms
from ..core.program import ProgramStore
from ..core.router import HighParallelismRouter, RouterConfig
from ..hardware.raa import RAAArchitecture
from ..noise.fidelity import estimate_raa_fidelity


def segment_circuit(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture,
    gamma: float = 0.95,
) -> tuple[list[tuple[QuantumCircuit, list[int]]], int]:
    """Split *circuit* into maximal inter-array-executable segments.

    Returns ``(segments, num_transfers)`` where each segment carries its own
    qubit-array assignment.  A segment ends when the next unexecuted gate is
    intra-array under the current assignment; the remaining circuit is then
    re-partitioned and the differing qubits are transferred.
    """
    caps = architecture.array_capacities()
    n = circuit.num_qubits

    remaining = circuit
    segments: list[tuple[QuantumCircuit, list[int]]] = []
    prev_assignment: list[int] | None = None
    num_transfers = 0
    guard = 0

    while len(remaining) > 0:
        guard += 1
        if guard > len(circuit) + 2:  # pragma: no cover - safety net
            raise RuntimeError("segmentation failed to make progress")
        weights = gate_frequency_matrix(remaining, gamma=gamma)
        assignment = max_k_cut_assignment(weights, caps)
        if prev_assignment is not None:
            num_transfers += sum(
                1 for a, b in zip(prev_assignment, assignment) if a != b
            )
        # Consume the longest executable prefix (DAG order, greedy).
        dag = DAGCircuit(remaining)
        segment = QuantumCircuit(n, f"{circuit.name}-seg{len(segments)}")
        progress = True
        while progress and not dag.done:
            progress = False
            for idx, g in dag.front_gates():
                if g.is_two_qubit and assignment[g.qubits[0]] == assignment[g.qubits[1]]:
                    continue
                segment.append(g)
                dag.execute(idx)
                progress = True
        leftovers = QuantumCircuit(n, remaining.name)
        executed_count = len(segment)
        if executed_count == 0:
            # The re-partition could not free the front gate (e.g. a qubit
            # pair welded together by every remaining gate); force-split by
            # transferring one endpoint of the first blocked gate.
            idx, g = next(
                (i, g) for i, g in dag.front_gates() if g.is_two_qubit
            )
            q = g.qubits[0]
            target = (assignment[q] + 1) % len(caps)
            assignment[q] = target
            num_transfers += 1
            continue
        # gather unexecuted gates in original order
        executed_ids = set()
        dag2 = DAGCircuit(remaining)
        seg_iter = list(segment.gates)
        # replay to find which indices were executed
        for gate in seg_iter:
            for idx, g2 in dag2.front_gates():
                if g2 is gate or (
                    g2.name == gate.name
                    and g2.qubits == gate.qubits
                    and g2.params == gate.params
                    and idx not in executed_ids
                ):
                    executed_ids.add(idx)
                    dag2.execute(idx)
                    break
        for idx, g2 in enumerate(
            [g for g in remaining.gates if not g.is_directive]
        ):
            if idx not in executed_ids:
                leftovers.append(g2)
        segments.append((segment, assignment))
        prev_assignment = assignment
        remaining = leftovers
    return segments, num_transfers


def compile_with_transfers(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    seed: int = 7,
) -> CompiledMetrics:
    """Compile using atom transfers instead of SWAP insertion."""
    t0 = time.perf_counter()
    arch = architecture or RAAArchitecture.default()
    native = lower_to_two_qubit(circuit.without_directives())
    segments, num_transfers = segment_circuit(native, arch)

    program = ProgramStore(num_qubits=native.num_qubits)
    for segment, assignment in segments:
        locs = map_qubits_to_atoms(segment, assignment, arch)
        router = HighParallelismRouter(arch, locs, RouterConfig(seed=seed))
        routed = router.route(segment)
        program.extend(routed)
        program.n_vib_final.update(routed.n_vib_final)
        program.atom_loss_log.extend(routed.atom_loss_log)
        program.overlap_rejections += routed.overlap_rejections
        program.qubit_locations = routed.qubit_locations

    program.num_transfers = num_transfers
    program.compile_seconds = time.perf_counter() - t0
    fidelity = estimate_raa_fidelity(program, arch.params)
    return CompiledMetrics(
        benchmark=circuit.name,
        architecture="Atomique-Transfer",
        num_qubits=circuit.num_qubits,
        num_2q_gates=program.num_2q_gates,
        num_1q_gates=program.num_1q_gates,
        depth=program.two_qubit_depth,
        fidelity=fidelity,
        additional_cnots=0,
        compile_seconds=program.compile_seconds,
        execution_seconds=program.execution_time(arch.params),
        extras={
            "num_transfers": float(num_transfers),
            "num_segments": float(len(segments)),
        },
    )
