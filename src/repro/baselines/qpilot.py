"""Q-Pilot baseline (Wang et al., DAC'24): flying-ancilla compilation.

Q-Pilot targets QAOA and QSim specifically: every data qubit stays in the
SLM and *flying ancillas* in the AOD mediate two-qubit interactions.
Because QAOA's ZZ terms all commute (and QSim's Pauli strings within a
Trotter step largely do), Q-Pilot reorders interactions into qubit-disjoint
*rounds* (greedy edge/string coloring) and executes each round as a parallel
ancilla sweep — low depth, at the cost of extra two-qubit gates per
interaction (ancillas must be entangled and measured out).

Fig. 19's observed contract, which this implementation reproduces: Q-Pilot
depth < Atomique depth, Q-Pilot 2Q gates ~2-2.6x Atomique, fidelity lower.

Interaction extraction:

* ``rzz``/``cz``/``cp`` gates are diagonal and freely commutable — they form
  the coloring pool (QAOA circuits are entirely in this class after the
  initial H layer);
* for QSim circuits, pass the Pauli strings explicitly via
  :func:`compile_qsim_on_qpilot` (each string mediates onto one ancilla);
* anything else falls back to program order with one ancilla per gate.
"""

from __future__ import annotations

import time

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import lower_to_two_qubit
from ..core.atom_mapper import map_qubits_to_atoms
from ..core.router import HighParallelismRouter, RouterConfig
from ..generators.qsim import pauli_string_circuit
from ..hardware.raa import ArrayShape, RAAArchitecture
from ..noise.fidelity import estimate_raa_fidelity

_COMMUTING_2Q = ("rzz", "cz", "cp")


def _grid_side(n: int) -> int:
    side = 1
    while side * side < n:
        side += 1
    return side


def greedy_edge_coloring(edges: list[tuple[int, int]]) -> list[list[tuple[int, int]]]:
    """Partition *edges* into qubit-disjoint rounds (greedy first-fit)."""
    rounds: list[list[tuple[int, int]]] = []
    busy: list[set[int]] = []
    for a, b in edges:
        for i, used in enumerate(busy):
            if a not in used and b not in used:
                rounds[i].append((a, b))
                used.update((a, b))
                break
        else:
            rounds.append([(a, b)])
            busy.append({a, b})
    return rounds


def mediated_qaoa_circuit(
    num_qubits: int,
    weighted_edges: list[tuple[int, int, float]],
    bank_factor: int = 4,
) -> tuple[QuantumCircuit, int]:
    """Flying-ancilla circuit for a commuting ZZ interaction set.

    Edges are colored into qubit-disjoint rounds; each edge draws a fresh
    ancilla from a bank of ``bank_factor * max_round_size`` slots (the bank
    maps onto ``bank_factor`` AOD arrays, Q-Pilot's parallel flying-ancilla
    rows).  An edge ``(a, b)`` with angle ``theta`` becomes
    ``CZ(anc, a); CZ(anc, b); RZ(anc); H(anc)`` — the teleported-ZZ
    construction (ancilla measured in X afterwards).
    """
    rounds = greedy_edge_coloring([(a, b) for a, b, _ in weighted_edges])
    angle = {
        (min(a, b), max(a, b)): theta for a, b, theta in weighted_edges
    }
    max_round = max((len(r) for r in rounds), default=1)
    num_anc = max(1, bank_factor * max_round)
    circ = QuantumCircuit(num_qubits + num_anc, "qpilot-mediated")
    nxt = 0
    for round_edges in rounds:
        for a, b in round_edges:
            anc = num_qubits + (nxt % num_anc)
            nxt += 1
            theta = angle.get((min(a, b), max(a, b)), 3.141592653589793)
            circ.h(anc)
            circ.cz(anc, a)
            circ.cz(anc, b)
            circ.rz(theta, anc)
            circ.h(anc)
    return circ, num_anc


def extract_commuting_interactions(
    circuit: QuantumCircuit,
) -> list[tuple[int, int, float]] | None:
    """Pull out the ZZ-type interaction list if the circuit is QAOA-shaped.

    Returns None when the circuit contains non-diagonal 2Q gates (generic
    circuits cannot be freely reordered).
    """
    out: list[tuple[int, int, float]] = []
    for g in circuit.gates:
        if g.is_two_qubit:
            if g.name not in _COMMUTING_2Q:
                return None
            theta = g.params[0] if g.params else 3.141592653589793
            out.append((g.qubits[0], g.qubits[1], theta))
    return out if out else None


def _route_mediated(
    mediated: QuantumCircuit,
    n_data: int,
    num_anc: int,
    benchmark: str,
    t0: float,
    seed: int,
    num_aods: int = 4,
    assignment: list[int] | None = None,
) -> CompiledMetrics:
    slm_side = _grid_side(n_data)
    per_aod = -(-num_anc // num_aods)  # ceil
    aod_side = _grid_side(per_aod)
    side = max(slm_side, aod_side)
    arch = RAAArchitecture(
        slm_shape=ArrayShape(side, side),
        aod_shapes=[ArrayShape(side, side) for _ in range(num_aods)],
    )
    if assignment is None:
        # Ancilla i goes to AOD (i mod num_aods), spreading each round's
        # slots across arrays so same-AOD ordering constraints rarely bind.
        assignment = [0] * n_data + [
            1 + (i % num_aods) for i in range(mediated.num_qubits - n_data)
        ]
    locations = map_qubits_to_atoms(mediated, assignment, arch)
    router = HighParallelismRouter(arch, locations, RouterConfig(seed=seed))
    program = router.route(mediated)
    compile_seconds = time.perf_counter() - t0
    fidelity = estimate_raa_fidelity(program, arch.params)
    return CompiledMetrics(
        benchmark=benchmark,
        architecture="Q-Pilot",
        num_qubits=n_data,
        num_2q_gates=program.num_2q_gates,
        num_1q_gates=program.num_1q_gates,
        depth=program.two_qubit_depth,
        fidelity=fidelity,
        additional_cnots=0,
        compile_seconds=compile_seconds,
        execution_seconds=program.execution_time(arch.params),
        extras={"num_ancillas": float(num_anc)},
    )


def compile_on_qpilot(circuit: QuantumCircuit, seed: int = 7) -> CompiledMetrics:
    """Compile *circuit* Q-Pilot style (QAOA fast path or generic fallback)."""
    t0 = time.perf_counter()
    interactions = extract_commuting_interactions(circuit)
    n = circuit.num_qubits
    if interactions is not None:
        mediated, num_anc = mediated_qaoa_circuit(n, interactions)
        return _route_mediated(mediated, n, num_anc, circuit.name, t0, seed)
    # Generic fallback: program order, round-robin ancilla pool.
    native = lower_to_two_qubit(circuit.without_directives())
    num_anc = max(1, n)
    out = QuantumCircuit(n + num_anc, f"{circuit.name}-qpilot")
    next_anc = 0
    for g in native.gates:
        if not g.is_two_qubit:
            out.append(g)
            continue
        a, b = g.qubits
        anc = n + (next_anc % num_anc)
        next_anc += 1
        theta = g.params[0] if g.params else 3.141592653589793
        out.h(anc)
        out.cz(anc, a)
        out.cz(anc, b)
        out.rz(theta, anc)
        out.h(anc)
    return _route_mediated(out, n, num_anc, circuit.name, t0, seed)


def compile_qsim_on_qpilot(
    num_qubits: int,
    pauli_strings: list[str],
    thetas: list[float] | None = None,
    name: str = "qsim-qpilot",
    seed: int = 7,
) -> CompiledMetrics:
    """Q-Pilot on a QSim workload given its Pauli strings.

    Each string's parity is accumulated with a *fanout tree* of flying
    ancillas: leaves are the (basis-dressed) active data qubits, each tree
    node XORs two children into a fresh ancilla via CX, the rotation lands
    on the root, and the tree uncomputes.  Depth per string is logarithmic
    in the string weight and successive strings pipeline — Q-Pilot's depth
    advantage on QSim — at roughly 2x the ladder's 2Q-gate count.
    """
    t0 = time.perf_counter()
    thetas = thetas or [3.141592653589793 / 4] * len(pauli_strings)
    supports = [
        tuple(q for q, p in enumerate(s) if p != "I") for s in pauli_strings
    ]
    max_weight = max((len(s) for s in supports), default=1)
    num_aods = 4
    per_aod = max(1, max_weight)
    bank = num_aods * per_aod
    circ = QuantumCircuit(num_qubits + bank, name)
    # Ancilla q (0-based within the bank) lives in AOD 1 + q // per_aod.
    anc_array = [1 + i // per_aod for i in range(bank)]
    cursor = [0] * num_aods  # round-robin cursor per AOD

    def fresh(exclude: set[int]) -> int:
        """Fresh ancilla from the least-used AOD not in *exclude*.

        Spreading node targets evenly across arrays keeps the per-AOD
        row/col order constraints from binding within a tree level.
        """
        allowed = [a for a in range(1, num_aods + 1) if a not in exclude]
        if not allowed:
            raise RuntimeError("no AOD available for tree ancilla")
        aod = min(allowed, key=lambda a: cursor[a - 1])
        i = cursor[aod - 1] % per_aod
        cursor[aod - 1] += 1
        return num_qubits + (aod - 1) * per_aod + i

    def array_of(node: int) -> int:
        if node < num_qubits:
            return 0  # data qubits live in the SLM
        return anc_array[node - num_qubits]

    for si, s in enumerate(pauli_strings):
        theta = thetas[si]
        for q, p in enumerate(s):
            if p == "X":
                circ.h(q)
            elif p == "Y":
                circ.sdg(q)
                circ.h(q)
        # Fanout tree up: each node XORs two children into a fresh ancilla
        # drawn from an AOD different from both children's arrays, so every
        # CX is inter-array (routable on the RAA).
        level = list(supports[si])
        tree_gates: list[tuple[int, int, int]] = []
        while len(level) > 1:
            nxt_level: list[int] = []
            for i in range(0, len(level) - 1, 2):
                x, y = level[i], level[i + 1]
                t = fresh({array_of(x), array_of(y)})
                tree_gates.append((x, y, t))
                circ.cx(x, t)
                circ.cx(y, t)
                nxt_level.append(t)
            if len(level) % 2 == 1:
                nxt_level.append(level[-1])
            level = nxt_level
        root = level[0]
        circ.rz(theta, root)
        # Uncompute mirror (CXs with a shared target commute).
        for x, y, t in reversed(tree_gates):
            circ.cx(y, t)
            circ.cx(x, t)
        for q, p in enumerate(s):
            if p == "X":
                circ.h(q)
            elif p == "Y":
                circ.h(q)
                circ.s(q)
    assignment = [0] * num_qubits + anc_array
    return _route_mediated(
        circ, num_qubits, bank, name, t0, seed, num_aods=num_aods,
        assignment=assignment,
    )
