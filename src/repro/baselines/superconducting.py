"""Superconducting baseline: SABRE on a heavy-hex device (Sec. V-A baseline 1).

Models "IBM's 127-qubit Washington superconducting machine with a heavy
hexagon coupling graph", growing the lattice when the circuit needs more
qubits.  Fidelity uses the Table I superconducting row: identical gate
fidelities to neutral atoms but far shorter coherence, which is what drives
the paper's superconducting numbers down on deep circuits.
"""

from __future__ import annotations

import time

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..hardware.parameters import HardwareParams, superconducting_params
from ..hardware.superconducting import SuperconductingArchitecture
from ..noise.fidelity import estimate_circuit_fidelity
from ..transpile.sabre import route_with_sabre
from ..transpile.scheduling import asap_schedule


def compile_on_superconducting(
    circuit: QuantumCircuit,
    params: HardwareParams | None = None,
    seed: int = 7,
    layout_iterations: int = 2,
) -> CompiledMetrics:
    """Route *circuit* on the heavy-hex device and score it."""
    params = params or superconducting_params()
    t0 = time.perf_counter()
    arch = SuperconductingArchitecture.for_circuit(circuit.num_qubits, params=params)
    native = lower_to_two_qubit(circuit.without_directives())
    routed = route_with_sabre(
        native, arch.coupling_map(), layout_iterations=layout_iterations, seed=seed
    )
    final = merge_1q_runs(decompose_swaps(routed.circuit))
    compile_seconds = time.perf_counter() - t0

    fidelity = estimate_circuit_fidelity(final, params, num_qubits=circuit.num_qubits)
    schedule = asap_schedule(final)
    return CompiledMetrics(
        benchmark=circuit.name,
        architecture="Superconducting",
        num_qubits=circuit.num_qubits,
        num_2q_gates=final.num_2q_gates,
        num_1q_gates=final.num_1q_gates,
        depth=final.depth(two_qubit_only=True),
        fidelity=fidelity,
        additional_cnots=3 * routed.num_swaps,
        compile_seconds=compile_seconds,
        execution_seconds=schedule.duration(params),
        extras={"num_swaps": float(routed.num_swaps)},
    )
