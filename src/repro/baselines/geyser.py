"""Geyser baseline (Patel et al., ISCA'22): 3-qubit blocking + pulse counts.

Geyser maps circuits onto a *triangular* fixed atom array, routes them with
SWAPs, then composes the routed circuit into three-qubit blocks whose qubits
form a triangle on the device; each block is resynthesized into native
multiqubit pulses.  The paper compares against it on *pulse count*
(Table III): an n-qubit block costs ``2^n - 1`` pulses, and Atomique's CZ
costs two global Rydberg pulses, so

* ``atomique_pulses = 2 * compiled 2Q gates``;
* ``geyser_pulses = sum over blocks of (2^block_size - 1)``.

Blocking follows Geyser's sequential composer: walk the routed circuit in
ASAP order keeping one open block; a gate joins the block if the union of
qubit supports stays within 3 qubits *and* those qubits are mutually
adjacent on the device (a triangle / edge / single site); otherwise the
block is sealed and a new one starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DAGCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..hardware.coupling import CouplingMap
from ..hardware.faa import FAAArchitecture
from ..transpile.sabre import route_with_sabre


@dataclass(frozen=True)
class BlockingResult:
    """Outcome of greedy 3-qubit blocking.

    ``block_sizes`` holds qubit-support sizes; ``block_has_2q`` flags blocks
    containing at least one entangling gate.  Geyser synthesizes entangling
    blocks on a full device triangle (3 atoms -> ``2^3 - 1 = 7`` pulses even
    when only 2 qubits are active); pure single-qubit blocks cost
    ``2^n - 1`` for their actual support.
    """

    num_blocks: int
    block_sizes: list[int]
    block_has_2q: list[bool]

    @property
    def num_pulses(self) -> int:
        """Geyser's pulse cost model (triangle-padded entangling blocks)."""
        total = 0
        for size, has_2q in zip(self.block_sizes, self.block_has_2q):
            effective = 3 if has_2q else size
            total += 2**effective - 1
        return total


def _mutually_adjacent(qubits: set[int], coupling: CouplingMap | None) -> bool:
    """True if *qubits* form a clique on the device (or no device given)."""
    if coupling is None or len(qubits) <= 1:
        return True
    qs = sorted(qubits)
    return all(
        coupling.is_adjacent(a, b) for i, a in enumerate(qs) for b in qs[i + 1 :]
    )


def block_circuit(
    circuit: QuantumCircuit,
    max_block_qubits: int = 3,
    coupling: CouplingMap | None = None,
    max_moments: int = 3,
) -> BlockingResult:
    """Greedy topological partition into device-triangle blocks.

    Geyser composes each block from a bounded window of circuit *moments*
    (ASAP layers); a block absorbs gates only while the window spans at most
    ``max_moments`` layers, the qubit support stays within
    ``max_block_qubits``, and the support is a clique on the device.
    """
    native = lower_to_two_qubit(circuit.without_directives())
    dag = DAGCircuit(native)
    layer_of = dag.gate_layer_index()
    order = [i for layer in dag.topological_layers() for i in layer]
    open_block: set[int] = set()
    open_has_2q = False
    block_start_layer = 0
    sizes: list[int] = []
    has_2q: list[bool] = []
    for idx in order:
        gate = dag.gates[idx]
        qs = set(gate.qubits)
        merged = open_block | qs
        in_window = layer_of[idx] - block_start_layer < max_moments
        if (
            len(merged) <= max_block_qubits
            and in_window
            and _mutually_adjacent(merged, coupling)
        ):
            open_block = merged
            open_has_2q = open_has_2q or gate.is_entangling
        else:
            if open_block:
                sizes.append(len(open_block))
                has_2q.append(open_has_2q)
            open_block = set(qs)
            open_has_2q = gate.is_entangling
            block_start_layer = layer_of[idx]
    if open_block:
        sizes.append(len(open_block))
        has_2q.append(open_has_2q)
    return BlockingResult(
        num_blocks=len(sizes), block_sizes=sizes, block_has_2q=has_2q
    )


def geyser_pulse_count(circuit: QuantumCircuit, seed: int = 7) -> int:
    """Total multiqubit pulses after Geyser's map-route-block pipeline.

    The circuit is first routed onto the triangular FAA (Geyser's topology),
    then blocked under the device-triangle constraint.
    """
    arch = FAAArchitecture.for_circuit(circuit.num_qubits, topology="triangular")
    coupling = arch.coupling_map()
    native = lower_to_two_qubit(circuit.without_directives())
    routed = route_with_sabre(native, coupling, seed=seed)
    final = merge_1q_runs(decompose_swaps(routed.circuit))
    return block_circuit(final, coupling=coupling).num_pulses


def atomique_pulse_count(num_compiled_2q_gates: int) -> int:
    """Two global Rydberg pulses per compiled CZ (Sec. V-A)."""
    return 2 * num_compiled_2q_gates
