"""Unified backend registry: every compiler under its Fig. 13 name.

Each backend is a callable ``(circuit, options) -> CompiledMetrics``
registered with the :func:`register_backend` decorator.  The experiment
harnesses dispatch through :func:`get_backend` instead of hard-coded
if/elif chains, so a new scenario backend plugs in with one decorator:

    from repro.baselines.registry import CompileOptions, register_backend

    @register_backend("My-Backend")
    def _my_backend(circuit, options):
        return ...  # CompiledMetrics

:class:`CompileOptions` carries the knobs a backend may consume — an RAA
architecture and Atomique config for the movement-based compilers, a
hardware-parameter override for the fixed-atom baselines, and the seed.
Backends ignore options that do not apply to them.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..core.compiler import AtomiqueCompiler, AtomiqueConfig, CompileResult
from ..core.pipeline import PipelineCache
from ..core.router import RouterConfig
from ..hardware.parameters import HardwareParams
from ..hardware.raa import RAAArchitecture
from ..noise.fidelity import FidelityReport
from .atomique_adapter import compile_on_atomique
from .faa_compiler import compile_on_faa
from .geyser import atomique_pulse_count, geyser_pulse_count
from .qpilot import compile_on_qpilot, compile_qsim_on_qpilot
from .superconducting import compile_on_superconducting


@dataclass(frozen=True)
class CompileOptions:
    """Per-job compile knobs, uniform across backends.

    ``label`` overrides the architecture label on the emitted metrics (the
    ablation sweeps name each configuration).  ``extra`` is a frozen
    ``((key, value), ...)`` tuple of backend-specific knobs — e.g. the
    solver proxies' qubit budget or Q-Pilot's QSim Pauli strings — that
    participates in batch-cache keys.  ``pipeline_cache`` shares Atomique
    pipeline prefix artifacts across the jobs of one in-process sweep; it
    is identity-state, so it is excluded from comparison/repr and stripped
    before jobs are shipped to worker processes.
    """

    raa: RAAArchitecture | None = None
    config: AtomiqueConfig | None = None
    params: HardwareParams | None = None
    seed: int = 7
    label: str | None = None
    extra: tuple[tuple[str, object], ...] = ()
    pipeline_cache: "PipelineCache | None" = field(
        default=None, compare=False, repr=False
    )

    def extra_dict(self) -> dict[str, object]:
        return dict(self.extra)


BackendFn = Callable[[QuantumCircuit, CompileOptions], CompiledMetrics]


@dataclass(frozen=True)
class BackendSpec:
    """A registered compiler: name, entry point, one-line description."""

    name: str
    fn: BackendFn
    description: str = ""

    def compile(
        self, circuit: QuantumCircuit, options: CompileOptions | None = None
    ) -> CompiledMetrics:
        return self.fn(circuit, options or CompileOptions())


_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(
    name: str, description: str = ""
) -> Callable[[BackendFn], BackendFn]:
    """Decorator registering a compile entry point under *name*."""

    def decorator(fn: BackendFn) -> BackendFn:
        if name in _REGISTRY:
            raise ValueError(f"backend {name!r} is already registered")
        doc = description or (fn.__doc__ or "").strip().split("\n", 1)[0]
        _REGISTRY[name] = BackendSpec(name=name, fn=fn, description=doc)
        return fn

    return decorator


def get_backend(name: str) -> BackendSpec:
    """Look up a registered backend; unknown names list what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None


def has_backend(name: str) -> bool:
    """Whether *name* resolves — wire-side validation for the service,
    which receives backend names as strings and must reject unknown ones
    at submission time rather than when a worker picks the job up."""
    return name in _REGISTRY


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------
# Built-in backends (Fig. 13 names, plus the Fig. 19 / Table III compilers).


def _atomique_setup(
    options: CompileOptions,
) -> tuple[RAAArchitecture | None, AtomiqueConfig]:
    """Resolve the effective (architecture, config) for an Atomique run.

    A ``params`` override (the Fig. 18 sensitivity knob) rebuilds the RAA
    with those parameters and, unless a config is given, aligns the
    router's cooling threshold with them.
    """
    raa = options.raa
    config = options.config
    if options.params is not None:
        base = raa or RAAArchitecture.default()
        raa = RAAArchitecture(
            slm_shape=base.slm_shape,
            aod_shapes=base.aod_shapes,
            params=options.params,
        )
        if config is None:
            config = AtomiqueConfig(
                seed=options.seed,
                router=RouterConfig(
                    cooling_threshold=options.params.n_vib_cooling_threshold
                ),
            )
    return raa, config or AtomiqueConfig(seed=options.seed)


def atomique_result(
    circuit: QuantumCircuit, options: CompileOptions
) -> CompileResult:
    """The full :class:`CompileResult` (program included) for *options*.

    Same setup path as the registered ``Atomique`` backend, so
    ``metrics_from_result`` on this result is bit-identical to what the
    backend returns — the service's ``keep_program`` jobs compile through
    here to capture the program without perturbing the metrics.
    """
    raa, config = _atomique_setup(options)
    arch = raa or RAAArchitecture.default()
    compiler = AtomiqueCompiler(arch, config, cache=options.pipeline_cache)
    return compiler.compile(circuit)


@register_backend("Atomique")
def _atomique(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Full Fig. 3 pass pipeline on a reconfigurable atom array.

    A ``params`` override (the Fig. 18 sensitivity knob) rebuilds the RAA
    with those parameters and, unless a config is given, aligns the
    router's cooling threshold with them (see :func:`_atomique_setup`).
    """
    raa, config = _atomique_setup(options)
    return compile_on_atomique(
        circuit,
        raa,
        config,
        label=options.label or "Atomique",
        cache=options.pipeline_cache,
    )


@register_backend("Superconducting")
def _superconducting(
    circuit: QuantumCircuit, options: CompileOptions
) -> CompiledMetrics:
    """SABRE on IBM Washington's heavy-hex graph (Sec. V-A baseline 1)."""
    return compile_on_superconducting(
        circuit, params=options.params, seed=options.seed
    )


@register_backend("FAA-Rectangular")
def _faa_rectangular(
    circuit: QuantumCircuit, options: CompileOptions
) -> CompiledMetrics:
    """SABRE on a fixed rectangular atom grid (Sec. V-A baseline 2)."""
    return compile_on_faa(
        circuit, "rectangular", params=options.params, seed=options.seed
    )


@register_backend("FAA-Triangular")
def _faa_triangular(
    circuit: QuantumCircuit, options: CompileOptions
) -> CompiledMetrics:
    """SABRE on Geyser's fixed triangular atom grid (Sec. V-A baseline 3)."""
    return compile_on_faa(
        circuit, "triangular", params=options.params, seed=options.seed
    )


@register_backend("Baker-Long-Range")
def _baker_long_range(
    circuit: QuantumCircuit, options: CompileOptions
) -> CompiledMetrics:
    """Baker et al.'s long-range FAA compiler (Sec. V-A baseline 4)."""
    return compile_on_faa(
        circuit, "long_range", params=options.params, seed=options.seed
    )


@register_backend("Q-Pilot")
def _qpilot(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Flying-ancilla compilation for commuting workloads (Fig. 19)."""
    return compile_on_qpilot(circuit, seed=options.seed)


@register_backend("Tan-Solver")
def _tan_solver(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Exhaustive MAX CUT solver proxy (Fig. 14 / Table II last column).

    Raises :class:`~repro.baselines.solver.SolverTimeout` past its qubit
    budget (``extra`` knob ``solver_qubit_limit``, default 20) exactly like
    the direct entry point; batch callers should pre-filter jobs with
    :func:`~repro.baselines.solver.solver_times_out`.
    """
    from .solver import solver_architecture, tan_solver_compile

    limit = int(options.extra_dict().get("solver_qubit_limit", 20))
    return tan_solver_compile(
        circuit,
        options.raa or solver_architecture(),
        timeout_qubits=limit,
        seed=options.seed,
    )


@register_backend("Tan-IterP")
def _tan_iterp(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Iterative-peeling solver proxy (Fig. 14)."""
    from .solver import solver_architecture, tan_iterp_compile

    return tan_iterp_compile(
        circuit, options.raa or solver_architecture(), seed=options.seed
    )


@register_backend("Q-Pilot-QSim")
def _qpilot_qsim(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Q-Pilot's fanout-tree QSim path, driven by Pauli strings.

    The strings travel in ``extra`` under ``qsim_strings`` (a tuple, so the
    options stay hashable and batch-cache keyable); the circuit supplies
    the register size and benchmark name.
    """
    strings = options.extra_dict().get("qsim_strings")
    if strings is None:
        raise ValueError(
            "Q-Pilot-QSim needs extra=(('qsim_strings', <tuple of paulis>),)"
        )
    return compile_qsim_on_qpilot(
        circuit.num_qubits, list(strings), name=circuit.name, seed=options.seed
    )


@register_backend("Geyser")
def _geyser(circuit: QuantumCircuit, options: CompileOptions) -> CompiledMetrics:
    """Geyser pulse-count model (Table III): blocking into 3-qubit pulses.

    Geyser's published artifact only yields pulse counts, so the record
    carries the input circuit's gate statistics plus ``extras['pulses']``
    (and the Atomique pulse count for the same 2Q volume, for Table III
    ratios); the fidelity report is a neutral all-ones placeholder.
    """
    pulses = geyser_pulse_count(circuit, seed=options.seed)
    return CompiledMetrics(
        benchmark=circuit.name,
        architecture="Geyser",
        num_qubits=circuit.num_qubits,
        num_2q_gates=circuit.num_2q_gates,
        num_1q_gates=circuit.num_1q_gates,
        depth=circuit.depth(two_qubit_only=True),
        fidelity=FidelityReport(),
        extras={
            "pulses": float(pulses),
            "atomique_pulses_same_2q": float(
                atomique_pulse_count(circuit.num_2q_gates)
            ),
        },
    )
