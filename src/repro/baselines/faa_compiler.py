"""Fixed-atom-array baseline compilers (Sec. V-A baselines 2-4).

* ``compile_on_faa(..., topology="rectangular")`` — nearest-neighbour grid;
* ``compile_on_faa(..., topology="triangular")`` — Geyser's triangular grid;
* ``compile_on_faa(..., topology="long_range")`` — Baker et al.'s long-range
  FAA (interaction range 4 Rydberg radii).

All use SABRE layout+routing ("All baselines are using Qiskit Optimization
Level 3 with SABRE"), decompose inserted SWAPs into 3 CX, and estimate
fidelity with the neutral-atom Table I parameters (no movement terms — FAA
atoms never move; routing cost is all SWAPs).
"""

from __future__ import annotations

import time

from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..analysis.metrics import CompiledMetrics
from ..hardware.faa import FAAArchitecture
from ..hardware.parameters import HardwareParams, neutral_atom_params
from ..noise.fidelity import estimate_circuit_fidelity
from ..transpile.layout import dense_layout
from ..transpile.sabre import route_with_sabre, sabre_route
from ..transpile.scheduling import asap_schedule


def compile_on_faa(
    circuit: QuantumCircuit,
    topology: str = "rectangular",
    params: HardwareParams | None = None,
    seed: int = 7,
    layout_iterations: int = 2,
) -> CompiledMetrics:
    """Route *circuit* on an FAA of the given topology and score it."""
    params = params or neutral_atom_params()
    t0 = time.perf_counter()
    arch = FAAArchitecture.for_circuit(
        circuit.num_qubits, topology=topology, params=params
    )
    native = lower_to_two_qubit(circuit.without_directives())
    if topology == "long_range":
        # Baker et al.'s compiler predates SABRE's bidirectional layout
        # search: route from a dense static layout with no layout refinement,
        # which reproduces its routing quality relative to the SABRE
        # baselines (slightly fewer SWAPs than FAA-Rectangular thanks to the
        # long-range links, but no layout-search gains).
        cmap = arch.coupling_map()
        routed = sabre_route(
            native, cmap, dense_layout(native.num_qubits, cmap), seed=seed
        )
    else:
        routed = route_with_sabre(
            native, arch.coupling_map(), layout_iterations=layout_iterations, seed=seed
        )
    final = merge_1q_runs(decompose_swaps(routed.circuit))
    compile_seconds = time.perf_counter() - t0

    fidelity = estimate_circuit_fidelity(final, params, num_qubits=circuit.num_qubits)
    schedule = asap_schedule(final)
    label = {
        "rectangular": "FAA-Rectangular",
        "triangular": "FAA-Triangular",
        "long_range": "Baker-Long-Range",
    }[topology]
    return CompiledMetrics(
        benchmark=circuit.name,
        architecture=label,
        num_qubits=circuit.num_qubits,
        num_2q_gates=final.num_2q_gates,
        num_1q_gates=final.num_1q_gates,
        depth=final.depth(two_qubit_only=True),
        fidelity=fidelity,
        additional_cnots=3 * routed.num_swaps,
        compile_seconds=compile_seconds,
        execution_seconds=schedule.duration(params),
        extras={"num_swaps": float(routed.num_swaps)},
    )
