"""Solver-based RAA compiler proxies: Tan-Solver and Tan-IterP (Fig. 14).

The original OLSQ-DPQA [75, 78] phrases qubit mapping/routing for
reconfigurable arrays as an SMT problem (Z3) and, in its "iterative peeling"
mode, relaxes the formulation greedily.  Z3 is not available offline, so we
reproduce the two compilers' *behavioural contracts*:

* **Tan-Solver** — exhaustive search: the qubit-array partition is solved
  *exactly* (Gray-code enumeration of all bipartitions, incremental cut
  updates — exponential in qubit count, like the SMT formulation), and each
  routing stage tries many frontier orderings.  It times out beyond
  ``timeout_qubits`` exactly as the paper's Table II reports timeouts beyond
  20 qubits.
* **Tan-IterP** — iterative peeling: the greedy partition plus a moderate
  per-stage ordering search.  Polynomial, slower than Atomique, scales to
  larger circuits.

Both use a single AOD ("For a fair comparison, Atomique employs a single
AOD, as two baselines lack multi-AOD support") on 16x16 arrays, matching the
paper's OLSQ-DPQA configuration.
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis.metrics import CompiledMetrics
from ..circuits.circuit import QuantumCircuit
from ..circuits.decompose import decompose_swaps, lower_to_two_qubit, merge_1q_runs
from ..core.array_mapper import gate_frequency_matrix, max_k_cut_assignment
from ..core.atom_mapper import map_qubits_to_atoms
from ..core.router import HighParallelismRouter, RouterConfig
from ..hardware.raa import RAAArchitecture
from ..noise.fidelity import estimate_raa_fidelity
from ..transpile.layout import Layout
from ..transpile.sabre import sabre_route
from .atomique_adapter import metrics_from_result  # noqa: F401  (re-export)


class SolverTimeout(RuntimeError):
    """Raised when Tan-Solver exceeds its qubit/time budget (paper: 24 h)."""


def exact_bipartition(
    weights: np.ndarray, cap_a: int, cap_b: int
) -> tuple[list[int], int]:
    """Exact MAX CUT bipartition under capacities, via Gray-code enumeration.

    Returns ``(assignment, evaluations)`` where assignment[i] in {0, 1}.
    Runtime is Theta(2^(n-1)) — intentionally exponential, this *is* the
    solver's cost model.
    """
    n = weights.shape[0]
    if n > 30:  # hard guard; callers time out long before this
        raise SolverTimeout(f"{n} qubits is beyond exhaustive search")
    best_cut = -1.0
    best_mask = 0
    # membership[i] == 1 means partition B.  Vertex 0 fixed in A (symmetry).
    member = np.zeros(n, dtype=np.int8)
    # cut_delta[i]: change in cut if vertex i flips, maintained incrementally.
    cut = 0.0
    evaluations = 0
    prev_gray = 0
    for code in range(1 << (n - 1)):
        gray = code ^ (code >> 1)
        changed = gray ^ prev_gray
        prev_gray = gray
        if changed:
            i = changed.bit_length()  # vertex index 1..n-1 (bit b -> vertex b+1... )
            v = i  # bit (i-1) corresponds to vertex i
            old = member[v]
            member[v] = 1 - old
            # Update the cut: edges from v to all others.
            for u in range(n):
                w = float(weights[v, u])
                if w == 0.0 or u == v:
                    continue
                if member[u] != old:
                    cut -= w  # was cut, now same side
                else:
                    cut += w
        evaluations += 1
        size_b = int(member.sum())
        size_a = n - size_b
        if size_a <= cap_a and size_b <= cap_b and cut > best_cut:
            best_cut = cut
            best_mask = int("".join(str(int(x)) for x in member[::-1]), 2)
    assignment = [(best_mask >> i) & 1 for i in range(n)]
    return assignment, evaluations


def _compile_with_assignment(
    circuit: QuantumCircuit,
    assignment: list[int],
    architecture: RAAArchitecture,
    router_config: RouterConfig,
    label: str,
    t_start: float,
    seed: int = 7,
) -> CompiledMetrics:
    """Shared back half: SABRE swaps, atom mapping, routing, scoring."""
    native = lower_to_two_qubit(circuit.without_directives())
    coupling = architecture.multipartite_coupling(assignment)
    routed = sabre_route(native, coupling, Layout.trivial(native.num_qubits), seed=seed)
    transpiled = merge_1q_runs(decompose_swaps(routed.circuit))
    locations = map_qubits_to_atoms(transpiled, assignment, architecture)
    router = HighParallelismRouter(architecture, locations, router_config)
    program = router.route(transpiled)
    compile_seconds = time.perf_counter() - t_start
    fidelity = estimate_raa_fidelity(program, architecture.params)
    return CompiledMetrics(
        benchmark=circuit.name,
        architecture=label,
        num_qubits=circuit.num_qubits,
        num_2q_gates=program.num_2q_gates,
        num_1q_gates=program.num_1q_gates,
        depth=program.two_qubit_depth,
        fidelity=fidelity,
        additional_cnots=3 * routed.num_swaps,
        compile_seconds=compile_seconds,
        execution_seconds=program.execution_time(architecture.params),
        extras={"num_swaps": float(routed.num_swaps)},
    )


def solver_architecture(side: int = 16) -> RAAArchitecture:
    """The Fig. 14 configuration: side x side arrays, single AOD."""
    return RAAArchitecture.default(side=side, num_aods=1)


def solver_times_out(circuit: QuantumCircuit, timeout_qubits: int = 20) -> bool:
    """True when Tan-Solver would raise :class:`SolverTimeout` on *circuit*.

    The timeout is a deterministic qubit budget, so batch harnesses can
    skip doomed jobs up front instead of catching the exception mid-pool.
    :func:`exact_bipartition` additionally hard-caps enumeration at 30
    qubits regardless of the caller's budget, so that ceiling applies too.
    """
    return circuit.num_qubits > min(timeout_qubits, 30)


def tan_solver_compile(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    timeout_qubits: int = 20,
    ordering_trials: int = 16,
    seed: int = 7,
) -> CompiledMetrics:
    """Exhaustive solver proxy; raises :class:`SolverTimeout` past the budget."""
    if circuit.num_qubits > timeout_qubits:
        raise SolverTimeout(
            f"Tan-Solver cannot finish {circuit.num_qubits} qubits within budget "
            f"(paper: timeout beyond {timeout_qubits} qubits)"
        )
    t0 = time.perf_counter()
    arch = architecture or solver_architecture()
    native = lower_to_two_qubit(circuit.without_directives())
    weights = gate_frequency_matrix(native, gamma=1.0)
    caps = arch.array_capacities()
    assignment, _ = exact_bipartition(weights, caps[0], caps[1])
    cfg = RouterConfig(ordering_trials=ordering_trials, seed=seed)
    return _compile_with_assignment(
        circuit, assignment, arch, cfg, "Tan-Solver", t0, seed=seed
    )


def tan_iterp_compile(
    circuit: QuantumCircuit,
    architecture: RAAArchitecture | None = None,
    ordering_trials: int = 4,
    seed: int = 7,
) -> CompiledMetrics:
    """Iterative-peeling proxy: greedy partition + moderate ordering search."""
    t0 = time.perf_counter()
    arch = architecture or solver_architecture()
    native = lower_to_two_qubit(circuit.without_directives())
    weights = gate_frequency_matrix(native, gamma=1.0)
    assignment = max_k_cut_assignment(weights, arch.array_capacities())
    cfg = RouterConfig(ordering_trials=ordering_trials, seed=seed)
    return _compile_with_assignment(
        circuit, assignment, arch, cfg, "Tan-IterP", t0, seed=seed
    )
