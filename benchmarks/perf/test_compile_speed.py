"""Opt-in router compile-speed benchmark (``pytest -m perf benchmarks/perf``).

Excluded from the tier-1 run by the ``-m "not perf"`` default in pytest.ini;
run explicitly with ``pytest -m perf`` (or ``python -m repro bench --perf``)
to regenerate ``BENCH_router.json`` and check the compile-time trajectory.

The recorded seed baselines are wall-clock times from the reference dev
machine, so speedup *assertions* only run when ``REPRO_BENCH_STRICT=1`` —
on an arbitrary machine the ratios are indicative, not contractual, and a
slower host must not turn the benchmark into a false alarm.
"""

import os
from pathlib import Path

import pytest

from repro.bench import DEFAULT_OUTPUT, bench_router, bench_suite, format_report

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_router_compile_speed():
    """Time the router on the 50+ qubit suite and write BENCH_router.json."""
    report = bench_router(output=REPO_ROOT / DEFAULT_OUTPUT)
    print("\n" + format_report(report))
    assert len(report["results"]) == len(bench_suite())
    for row in report["results"]:
        assert row["stages"] > 0
        assert row["sabre_seconds"] > 0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # On the reference machine the refactor must never be slower than
        # the recorded seed baseline on any workload.
        for row in report["results"]:
            if row["speedup_vs_seed"] is not None:
                assert row["speedup_vs_seed"] > 1.0, row
            if row["sabre_speedup_vs_pr2"] is not None:
                assert row["sabre_speedup_vs_pr2"] > 1.0, row
            if row["emit_speedup_vs_pr3"] is not None:
                assert row["emit_speedup_vs_pr3"] > 1.0, row
            # The binary columnar codec must beat the JSON round trip on
            # every workload (it is format-for-format faster, not a
            # size/speed trade).
            assert row["codec_seconds"]["speedup"] > 1.0, row
        # The columnar-store acceptance bar: >= 2x emission speedup on the
        # deep-narrow (emission-bound) workloads.
        for name in ("BV-70", "QSim-rand-100"):
            row = {r["name"]: r for r in report["results"]}[name]
            assert row["emit_speedup_vs_pr3"] >= 2.0, row
        # The candidate-pruning acceptance bar, on the probe-bound flagship
        # workloads only (the sub-20ms entries are noise-bound and can land
        # either side of 1.0 even on the reference machine).  Interleaved
        # same-process A/B against the PR 6 commit measured the pruned
        # router at 1.15-1.28x on these; the bench protocol's cold
        # min-of-2/3 runs recorded 1.19x (rand-100) and 1.10x (rand-200),
        # so the bars sit just below the recorded ratios.
        for name, bar in (("QAOA-rand-100", 1.1), ("QAOA-rand-200", 1.05)):
            row = {r["name"]: r for r in report["results"]}[name]
            assert row["probe_speedup_vs_pr5"] >= bar, row
        # The binary-codec acceptance bar, on the largest (codec-bound)
        # workload: the v3 round trip must hold >= 3x over JSON v2 (the
        # 100k-gate stream-smoke flagship measures >5x; QAOA-rand-200 is
        # smaller, so the bar sits below that).
        row = {r["name"]: r for r in report["results"]}["QAOA-rand-200"]
        assert row["codec_seconds"]["speedup"] >= 3.0, row


def test_quick_smoke_subset():
    """A 3-entry subset that finishes in seconds.

    This is the CI perf-smoke job's entry point: it checks the bench
    harness itself stays runnable (shape of the report, sabre_seconds,
    emit_seconds, and probe_seconds tracking) without asserting timings,
    so a slow CI host cannot flake.  BV-70 is the emission-bound case —
    deep and narrow, so its router time is dominated by the
    stage-emission phase the columnar ProgramStore rebuilt; QAOA-rand-50
    is the probe-bound case — wide and dense, so its router time is
    dominated by the place_pair candidate scan the index-side pruning
    and vectorized batch probe attack.
    """
    wanted = ["QAOA-rand-50", "BV-50", "BV-70"]
    specs = [s for s in bench_suite() if s.name in wanted]
    report = bench_router(specs=specs, output=None)
    assert [r["name"] for r in report["results"]] == wanted
    for row in report["results"]:
        assert row["stages"] > 0
        assert row["sabre_seconds"] > 0
        assert row["router_seconds"] > 0
        # the emission window is a strict subset of the router wall-clock
        assert 0 < row["emit_seconds"] < row["router_seconds"]
        assert row["pr3_emit_seconds"] is not None
        # so is the candidate-probe window, and the two windows are
        # disjoint phases of the same route() pass
        assert 0 < row["probe_seconds"] < row["router_seconds"]
        assert row["probe_seconds"] + row["emit_seconds"] < row["router_seconds"]
        assert row["pr5_router_seconds"] is not None
        assert row["probe_speedup_vs_pr5"] > 0
        # codec timings are present and well-formed on every row
        codec = row["codec_seconds"]
        assert codec["v2"] > 0 and codec["v3"] > 0
        assert codec["speedup"] > 0
    # On the probe-bound workload the probe window is the dominant phase:
    # it must exceed the emission window (a shape check, not a timing bar —
    # true on any host because both windows come from the same pass).
    by_name = {r["name"]: r for r in report["results"]}
    assert by_name["QAOA-rand-50"]["probe_seconds"] > (
        by_name["QAOA-rand-50"]["emit_seconds"]
    )
