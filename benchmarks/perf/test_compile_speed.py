"""Opt-in router compile-speed benchmark (``pytest -m perf benchmarks/perf``).

Excluded from the tier-1 run by the ``-m "not perf"`` default in pytest.ini;
run explicitly with ``pytest -m perf`` (or ``python -m repro bench --perf``)
to regenerate ``BENCH_router.json`` and check the compile-time trajectory.

The recorded seed baselines are wall-clock times from the reference dev
machine, so speedup *assertions* only run when ``REPRO_BENCH_STRICT=1`` —
on an arbitrary machine the ratios are indicative, not contractual, and a
slower host must not turn the benchmark into a false alarm.
"""

import os
from pathlib import Path

import pytest

from repro.bench import DEFAULT_OUTPUT, bench_router, bench_suite, format_report

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_router_compile_speed():
    """Time the router on the 50+ qubit suite and write BENCH_router.json."""
    report = bench_router(output=REPO_ROOT / DEFAULT_OUTPUT)
    print("\n" + format_report(report))
    assert len(report["results"]) == len(bench_suite())
    for row in report["results"]:
        assert row["stages"] > 0
        assert row["sabre_seconds"] > 0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # On the reference machine the refactor must never be slower than
        # the recorded seed baseline on any workload.
        for row in report["results"]:
            if row["speedup_vs_seed"] is not None:
                assert row["speedup_vs_seed"] > 1.0, row
            if row["sabre_speedup_vs_pr2"] is not None:
                assert row["sabre_speedup_vs_pr2"] > 1.0, row


def test_quick_smoke_subset():
    """A 2-entry subset that finishes in seconds.

    This is the CI perf-smoke job's entry point: it checks the bench
    harness itself stays runnable (shape of the report, sabre_seconds
    tracking) without asserting timings, so a slow CI host cannot flake.
    """
    specs = [s for s in bench_suite() if s.name in ("QAOA-rand-50", "BV-50")]
    report = bench_router(specs=specs, output=None)
    assert [r["name"] for r in report["results"]] == ["QAOA-rand-50", "BV-50"]
    for row in report["results"]:
        assert row["stages"] > 0
        assert row["sabre_seconds"] > 0
        assert row["router_seconds"] > 0
