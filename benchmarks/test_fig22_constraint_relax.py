"""Fig. 22: relaxing each movement constraint.

Paper shape: the 2Q count never changes (constraints only affect
scheduling); depth and execution time drop when constraints are relaxed,
with constraint 3 (overlap) yielding the biggest win; movement distance
tends to rise with the added freedom.
"""

from conftest import full_scale

from repro.analysis import geometric_mean
from repro.experiments import run_constraint_relaxation
from repro.generators import phase_code, qaoa_random, qsim_random


def _benchmarks():
    if full_scale():
        from repro.experiments.fig21_22 import default_relaxation_benchmarks

        return default_relaxation_benchmarks()
    qaoa = qaoa_random(40, edge_prob=0.1, seed=40)
    qaoa.name = "QAOA-rand-40"
    qsim = qsim_random(40, seed=40)
    qsim.name = "QSim-rand-40"
    pc = phase_code(60, rounds=2)
    pc.name = "Phase-Code-60"
    return [qaoa, qsim, pc]


def test_fig22_constraint_relaxation(benchmark, record_rows):
    points = benchmark.pedantic(
        run_constraint_relaxation, args=(_benchmarks(),), rounds=1, iterations=1
    )
    rows = [
        {
            "relaxation": p.relaxation,
            "benchmark": p.benchmark,
            "2q": p.metrics.num_2q_gates,
            "depth": p.metrics.depth,
            "exec_ms": round(p.metrics.execution_seconds * 1e3, 2),
            "move_dist_um": round(
                p.metrics.extras["avg_move_distance_m"] * 1e6, 1
            ),
        }
        for p in points
    ]
    record_rows("fig22_constraint_relax", rows)

    # 2Q count is invariant per benchmark.
    per_bench: dict[str, set[int]] = {}
    for p in points:
        per_bench.setdefault(p.benchmark, set()).add(p.metrics.num_2q_gates)
    for counts in per_bench.values():
        assert len(counts) == 1

    def gdepth(label):
        return geometric_mean(
            [p.metrics.depth for p in points if p.relaxation == label]
        )

    base = gdepth("All Constraints")
    c3 = gdepth("Relax C3 (overlap)")
    assert c3 <= base  # relaxing overlap helps depth the most (paper)
    for label in (
        "Relax C1 (individual addressing)",
        "Relax C2 (ordering)",
    ):
        assert gdepth(label) <= base + 1
