"""Fig. 21: cumulative technique breakdown.

Paper shape: the MAX k-cut array mapper, the load-balance atom mapper, and
the high-parallelism router each add fidelity, compounding to ~10.9x over
the naive baseline (dense mapping + random atoms + serial routing).
"""

from conftest import full_scale

from repro.experiments import run_breakdown


def test_fig21_technique_breakdown(benchmark, record_rows):
    # cheap even at the paper's scale (40 qubits, 26 gates/qubit)
    kwargs = dict(num_qubits=40, gates_per_qubit=26.0, degree=5.0)
    results = benchmark.pedantic(run_breakdown, kwargs=kwargs, rounds=1, iterations=1)
    rows = [m.row() for m in results]
    record_rows("fig21_breakdown", rows)

    by = {m.architecture: m for m in results}
    full = by["+router"]
    base = by["baseline"]
    # Full Atomique clearly beats the naive stack.  (The paper reports
    # 10.9x; our ablation baseline still benefits from SABRE cleanup after
    # the frequency-blind mapping, so the measured gap is smaller — see
    # EXPERIMENTS.md.)
    assert full.total_fidelity > 1.5 * max(base.total_fidelity, 1e-6)
    # every cumulative step is at least as good as the previous one
    order = ["baseline", "+array_mapper", "+atom_mapper", "+router"]
    fids = [by[o].total_fidelity for o in order]
    for prev, nxt in zip(fids, fids[1:]):
        assert nxt >= prev * 0.98
    # the parallel router is the depth lever
    assert full.depth < by["+atom_mapper"].depth
    # the array mapper is the SWAP lever
    assert by["+array_mapper"].num_2q_gates <= base.num_2q_gates
