"""Table III: multi-qubit pulse counts, Atomique vs Geyser.

Paper shape: Atomique reduces pulses on every row, by up to ~6.5x, with the
biggest wins on sparse circuits (BV-50/BV-70).
"""

from conftest import full_scale

from repro.experiments import pulse_comparison
from repro.experiments.tables import TABLE3_BENCHMARKS


def _names():
    if full_scale():
        return TABLE3_BENCHMARKS
    return [n for n in TABLE3_BENCHMARKS if n != "QV-32"]


def test_table3_geyser_pulses(benchmark, record_rows):
    rows = benchmark.pedantic(
        pulse_comparison, args=(_names(),), rounds=1, iterations=1
    )
    record_rows("table3_geyser_pulses", rows)
    for row in rows:
        assert row["reduction"] > 1.0, f"{row['benchmark']} lost to Geyser"
    by_name = {r["benchmark"]: r for r in rows}
    # BV rows show the largest reductions (paper: 6.5x / 6.1x)
    bv_red = by_name["BV-50"]["reduction"]
    dense_red = by_name["Mermin-Bell-10"]["reduction"]
    assert bv_red > dense_red * 0.9
