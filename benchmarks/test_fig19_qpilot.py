"""Fig. 19: Atomique vs Q-Pilot on QAOA and QSim.

Paper shape: Q-Pilot's flying ancillas reach lower depth, but spend 2-3x the
two-qubit gates, so Atomique keeps the higher overall fidelity (GMean 0.25
vs 0.17 in the paper).
"""

from conftest import full_scale

from repro.analysis import geometric_mean
from repro.experiments import run_qpilot_comparison


def test_fig19_qpilot_comparison(benchmark, record_rows):
    results = benchmark.pedantic(
        run_qpilot_comparison,
        kwargs={"include_large": full_scale()},
        rounds=1,
        iterations=1,
    )
    rows = [m.row() for ms in results.values() for m in ms]
    record_rows("fig19_qpilot", rows)

    atom, qp = results["Atomique"], results["Q-Pilot"]
    # Q-Pilot wins depth on (nearly) every workload.
    depth_wins = sum(1 for a, q in zip(atom, qp) if q.depth <= a.depth)
    assert depth_wins >= len(atom) - 1
    # but pays >= 1.5x the 2Q gates on every workload ...
    for a, q in zip(atom, qp):
        assert q.num_2q_gates >= 1.5 * a.num_2q_gates
    # ... and Atomique keeps the better geometric-mean fidelity.
    f_atom = geometric_mean([m.total_fidelity for m in atom], floor=1e-6)
    f_qp = geometric_mean([m.total_fidelity for m in qp], floor=1e-6)
    assert f_atom > f_qp
