"""Ablation: SWAP insertion vs atom transfers for intra-array conflicts.

The paper argues (Sec. I & II) that resolving conflicts with SLM<->AOD atom
transfers — as solver-based prior work allows — risks atom loss (0.68% per
transfer) that compounds on iterative workloads, which is why Atomique
routes with SWAPs + movement instead.  This benchmark quantifies that
design choice: transfers eliminate all SWAP CZs yet end up with *lower*
overall fidelity on QSim/QAOA workloads once the loss term is charged.
"""

from conftest import full_scale

from repro.analysis import geometric_mean
from repro.baselines import compile_on_atomique, compile_with_transfers
from repro.experiments import raa_for
from repro.generators import qaoa_random, qaoa_regular, qsim_random


def _workloads():
    jobs = [
        qaoa_regular(20, 4, seed=20),
        qaoa_random(20, seed=21),
        qsim_random(20, seed=22),
        qsim_random(30, seed=23),
    ]
    if full_scale():
        jobs += [qaoa_regular(40, 5, seed=40), qsim_random(40, seed=41)]
    return jobs


def test_ablation_swap_vs_transfer(benchmark, record_rows):
    def run():
        out = {"Atomique": [], "Atomique-Transfer": []}
        for circ in _workloads():
            out["Atomique"].append(compile_on_atomique(circ, raa_for(circ)))
            out["Atomique-Transfer"].append(
                compile_with_transfers(circ, raa_for(circ))
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for arch, ms in results.items():
        for m in ms:
            row = m.row()
            row["transfers"] = int(m.extras.get("num_transfers", 0))
            rows.append(row)
    record_rows("ablation_transfers", rows)

    # transfers remove the SWAP overhead entirely ...
    for swap_m, tr_m in zip(results["Atomique"], results["Atomique-Transfer"]):
        assert tr_m.num_2q_gates <= swap_m.num_2q_gates
    # ... but the loss term costs more than it saves, on geometric mean.
    f_swap = geometric_mean(
        [m.total_fidelity for m in results["Atomique"]], floor=1e-6
    )
    f_transfer = geometric_mean(
        [m.total_fidelity for m in results["Atomique-Transfer"]], floor=1e-6
    )
    assert f_swap > f_transfer
