"""Fig. 12: the constant-jerk atom-movement pattern.

Regenerates the four panels (jerk, acceleration, velocity, distance vs
time) for the paper's reference move (15 um in 300 us) and asserts their
shapes: constant negative jerk, linearly decreasing acceleration crossing
zero mid-move, parabolic velocity vanishing at both endpoints, and a
monotone S-curve distance reaching 15 um.
"""

import numpy as np

from repro.core.kinematics import hop_profile
from repro.hardware.parameters import neutral_atom_params


def test_fig12_movement_pattern(benchmark, record_rows):
    params = neutral_atom_params()
    profile = benchmark.pedantic(
        hop_profile, args=(1, params), rounds=1, iterations=1
    )
    series = profile.sample(13)
    rows = [
        {
            "t_us": round(t * 1e6, 1),
            "jerk_um_per_us3": round(j * 1e6 / 1e18, 8),
            "accel_um_per_us2": round(a * 1e6 / 1e12, 6),
            "velo_m_per_s": round(v, 4),
            "dist_um": round(x * 1e6, 3),
        }
        for t, j, a, v, x in zip(
            series["time"],
            series["jerk"],
            series["acceleration"],
            series["velocity"],
            series["position"],
        )
    ]
    record_rows("fig12_movement_pattern", rows)

    # Shape assertions mirroring the four panels of Fig. 12.
    assert np.ptp(series["jerk"]) == 0.0 and series["jerk"][0] < 0
    accel = series["acceleration"]
    assert accel[0] > 0 > accel[-1]
    assert np.allclose(np.diff(accel, 2), 0.0, atol=1e-6)  # linear
    velo = series["velocity"]
    assert velo[0] == 0.0 and abs(velo[-1]) < 1e-12
    assert velo.argmax() == len(velo) // 2
    dist = series["position"]
    assert np.all(np.diff(dist) >= 0)
    assert abs(dist[-1] * 1e6 - 15.0) < 1e-9  # 15 um, paper's pitch
    # peak speed ~ 0.075 m/s, matching Fig. 12's ~0.05-0.08 m/s panel
    assert 0.05 < profile.peak_velocity < 0.10
