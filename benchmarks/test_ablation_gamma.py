"""Ablation: the gate-frequency decay factor gamma (Sec. III-A).

The paper introduces the gamma^layer decay ("for gates in the later layers,
we have less control over the qubit positions") without publishing a value.
This sweep quantifies the knob: decayed weighting (gamma < 1) should never
do worse than unweighted counting (gamma = 1) on SWAP insertion, and overly
aggressive decay (gamma -> 0.5) starts ignoring most of the circuit.
"""

from repro.analysis import geometric_mean
from repro.baselines import compile_on_atomique
from repro.core.compiler import AtomiqueConfig
from repro.experiments import raa_for
from repro.generators import qaoa_regular, qsim_random


def _workloads():
    return [
        qsim_random(20, seed=20),
        qsim_random(30, seed=30),
        qaoa_regular(20, 4, seed=20),
        qaoa_regular(40, 5, seed=40),
    ]


def test_ablation_gamma_sweep(benchmark, record_rows):
    gammas = [0.5, 0.8, 0.95, 1.0]

    def run():
        out = {}
        for gamma in gammas:
            cfg = AtomiqueConfig(gamma=gamma)
            out[gamma] = [
                compile_on_atomique(c, raa_for(c), cfg) for c in _workloads()
            ]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for gamma, ms in results.items():
        for m in ms:
            rows.append(
                {
                    "gamma": gamma,
                    "benchmark": m.benchmark,
                    "swaps": int(m.extras["num_swaps"]),
                    "2q": m.num_2q_gates,
                    "fidelity": round(m.total_fidelity, 4),
                }
            )
    record_rows("ablation_gamma", rows)

    swaps = {
        g: sum(m.extras["num_swaps"] for m in ms) for g, ms in results.items()
    }
    fid = {
        g: geometric_mean([m.total_fidelity for m in ms], floor=1e-6)
        for g, ms in results.items()
    }
    # the default (0.95) is never beaten badly by the extremes
    assert swaps[0.95] <= min(swaps.values()) * 1.5
    assert fid[0.95] >= max(fid.values()) * 0.9
