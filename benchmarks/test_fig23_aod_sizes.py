"""Fig. 23: uniform vs heterogeneous AOD sizes.

Paper shape: varying SLM/AOD dimensions gives the mapper more freedom —
fewer 2Q gates and lower depth/time — at the cost of longer moves.
"""

from conftest import full_scale

from repro.experiments import run_aod_sizes
from repro.generators import phase_code, qaoa_random, qsim_random


def _benchmarks():
    if full_scale():
        from repro.experiments.fig23_24 import default_benchmarks_100q

        return default_benchmarks_100q()
    qaoa = qaoa_random(60, edge_prob=0.07, seed=60)
    qaoa.name = "QAOA-rand-60"
    qsim = qsim_random(60, seed=60)
    qsim.name = "QSim-rand-60"
    pc = phase_code(60, rounds=2)
    pc.name = "Phase-Code-60"
    return [qaoa, qsim, pc]


def test_fig23_aod_sizes(benchmark, record_rows):
    points = benchmark.pedantic(
        run_aod_sizes, args=(_benchmarks(),), rounds=1, iterations=1
    )
    rows = [
        {
            "config": p.label,
            "benchmark": p.benchmark,
            "2q": p.metrics.num_2q_gates,
            "depth": p.metrics.depth,
            "exec_ms": round(p.metrics.execution_seconds * 1e3, 2),
            "move_dist_um": round(p.metrics.extras["avg_move_distance_m"] * 1e6, 1),
        }
        for p in points
    ]
    record_rows("fig23_aod_sizes", rows)

    uniform = [p for p in points if "8x8+8x8" in p.label]
    varied = [p for p in points if "8x8+6x6" in p.label]
    # heterogeneous sizing must not increase total 2Q gates
    assert sum(p.metrics.num_2q_gates for p in varied) <= sum(
        p.metrics.num_2q_gates for p in uniform
    ) * 1.05
