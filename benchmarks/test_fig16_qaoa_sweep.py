"""Fig. 16: QAOA sweep over qubit number x regular-graph degree.

Paper insight: the less local the problem (higher degree) and the larger the
circuit, the bigger Atomique's fidelity advantage over the FAAs.
"""

from conftest import full_scale

from repro.experiments import run_qaoa_sweep


def _grid():
    if full_scale():
        return dict(qubit_numbers=[10, 20, 40, 60, 80, 100], degrees=[3, 4, 5, 6, 7])
    return dict(qubit_numbers=[10, 24, 40], degrees=[3, 5])


def test_fig16_qaoa_sweep(benchmark, record_rows):
    cells = benchmark.pedantic(run_qaoa_sweep, kwargs=_grid(), rounds=1, iterations=1)
    rows = [
        {
            "qubits": c.x,
            "degree": c.y,
            "atomique_2q": c.metrics["Atomique"].num_2q_gates,
            "atomique_F": round(c.metrics["Atomique"].total_fidelity, 4),
            "improv_vs_rect": round(c.fidelity_improvement("FAA-Rectangular"), 2),
            "improv_vs_tri": round(c.fidelity_improvement("FAA-Triangular"), 2),
        }
        for c in cells
    ]
    record_rows("fig16_qaoa_sweep", rows)

    # Larger QAOA instances favour Atomique more.
    ns = sorted({c.x for c in cells})
    d = sorted({c.y for c in cells})[-1]
    small = next(c for c in cells if c.x == ns[0] and c.y == d)
    large = next(c for c in cells if c.x == ns[-1] and c.y == d)
    assert large.fidelity_improvement("FAA-Rectangular") > small.fidelity_improvement(
        "FAA-Rectangular"
    )
