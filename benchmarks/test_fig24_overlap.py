"""Fig. 24: overlap rejections when logical qubits approach capacity.

Paper shape: growing the AOD size from 6x6 to 10x10 reduces overlap
(constraint 3) rejections and depth; the effect is application-dependent
(QAOA suffers the most overlaps).
"""

from conftest import full_scale

from repro.experiments import run_overlap_pressure
from repro.generators import phase_code, qaoa_random, qsim_random


def _setup():
    if full_scale():
        from repro.experiments.fig23_24 import default_benchmarks_100q

        return [6, 8, 10], default_benchmarks_100q()
    qaoa = qaoa_random(48, edge_prob=0.1, seed=48)
    qaoa.name = "QAOA-rand-48"
    qsim = qsim_random(48, seed=48)
    qsim.name = "QSim-rand-48"
    pc = phase_code(48, rounds=2)
    pc.name = "Phase-Code-48"
    return [4, 6, 8], [qaoa, qsim, pc]


def test_fig24_overlap_pressure(benchmark, record_rows):
    sides, benchmarks = _setup()
    points = benchmark.pedantic(
        run_overlap_pressure,
        kwargs={"sides": sides, "benchmarks": benchmarks},
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "config": p.label,
            "benchmark": p.benchmark,
            "2q": p.metrics.num_2q_gates,
            "depth": p.metrics.depth,
            "overlaps": int(p.overlaps),
            "exec_ms": round(p.metrics.execution_seconds * 1e3, 2),
        }
        for p in points
    ]
    record_rows("fig24_overlap", rows)

    tight = [p for p in points if p.label == f"AOD {sides[0]}x{sides[0]}"]
    loose = [p for p in points if p.label == f"AOD {sides[-1]}x{sides[-1]}"]
    assert sum(p.overlaps for p in tight) >= sum(p.overlaps for p in loose)
    # overlap pressure is application-dependent: not all benchmarks equal
    tight_by_bench = {p.benchmark: p.overlaps for p in tight}
    assert len(set(tight_by_bench.values())) > 1
