"""Fig. 17: QSim sweep over qubit number x non-I Pauli probability.

Paper insight: higher non-I probability (less locality) and more qubits
both increase Atomique's advantage.
"""

from conftest import full_scale

from repro.experiments import run_qsim_sweep


def _grid():
    if full_scale():
        return dict(
            qubit_numbers=[10, 20, 40, 60, 80, 100],
            non_identity_probs=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
        )
    return dict(qubit_numbers=[10, 24, 40], non_identity_probs=[0.2, 0.5])


def test_fig17_qsim_sweep(benchmark, record_rows):
    cells = benchmark.pedantic(run_qsim_sweep, kwargs=_grid(), rounds=1, iterations=1)
    rows = [
        {
            "qubits": c.x,
            "p_non_I": c.y,
            "atomique_2q": c.metrics["Atomique"].num_2q_gates,
            "atomique_F": round(c.metrics["Atomique"].total_fidelity, 4),
            "improv_vs_rect": round(c.fidelity_improvement("FAA-Rectangular"), 2),
            "improv_vs_tri": round(c.fidelity_improvement("FAA-Triangular"), 2),
        }
        for c in cells
    ]
    record_rows("fig17_qsim_sweep", rows)

    ns = sorted({c.x for c in cells})
    ps = sorted({c.y for c in cells})
    small = next(c for c in cells if c.x == ns[0] and c.y == ps[-1])
    large = next(c for c in cells if c.x == ns[-1] and c.y == ps[-1])
    assert large.fidelity_improvement("FAA-Rectangular") > small.fidelity_improvement(
        "FAA-Rectangular"
    )
