"""Fig. 18: sensitivity analysis over hardware parameters.

Asserted shapes:
(a/b) time-per-move has an interior optimum (too fast -> heating/loss,
      too slow -> decoherence);
(c)   larger atom distance hurts (heating grows with D^2);
(d)   the cooling threshold has an interior optimum;
(e)   Atomique gains more than FAA from longer coherence, crossing over
      around T1 ~ 1 s;
(f)   at 2Q fidelity 0.9999+ the FAAs catch up or win.
"""

from conftest import full_scale

from repro.experiments import error_breakdown, run_sensitivity
from repro.generators import qaoa_regular, qsim_random


def _benchmarks():
    if full_scale():
        from repro.experiments.fig18 import default_benchmarks

        return default_benchmarks()
    return [qsim_random(20, seed=20), qaoa_regular(40, 5, seed=40)]


def _points_to_rows(points):
    return [
        {
            "param": p.parameter,
            "value": p.value,
            "benchmark": p.benchmark,
            "arch": p.architecture,
            "fidelity": round(p.fidelity, 4),
        }
        for p in points
    ]


def _fid(points, value, arch, benchmark=None):
    sel = [
        p
        for p in points
        if p.value == value
        and p.architecture == arch
        and (benchmark is None or p.benchmark == benchmark)
    ]
    assert sel, f"no points for {value}/{arch}"
    prod = 1.0
    for p in sel:
        prod *= max(p.fidelity, 1e-9)
    return prod ** (1 / len(sel))


def test_fig18a_time_per_move(benchmark, record_rows):
    values = [100e-6, 300e-6, 1000e-6]
    points = benchmark.pedantic(
        run_sensitivity,
        args=("t_per_move", values, _benchmarks()),
        rounds=1,
        iterations=1,
    )
    record_rows("fig18a_time_per_move", _points_to_rows(points))
    mid = _fid(points, 300e-6, "Atomique")
    fast = _fid(points, 100e-6, "Atomique")
    slow = _fid(points, 1000e-6, "Atomique")
    assert mid >= fast and mid >= slow  # interior optimum near 300 us
    # FAA is insensitive to the knob
    assert abs(
        _fid(points, 100e-6, "FAA-Rectangular")
        - _fid(points, 1000e-6, "FAA-Rectangular")
    ) < 1e-9


def test_fig18c_atom_distance(benchmark, record_rows):
    values = [15e-6, 60e-6]
    points = benchmark.pedantic(
        run_sensitivity,
        args=("atom_distance", values, _benchmarks(), ["Atomique"]),
        rounds=1,
        iterations=1,
    )
    record_rows("fig18c_atom_distance", _points_to_rows(points))
    assert _fid(points, 15e-6, "Atomique") > _fid(points, 60e-6, "Atomique")


def test_fig18d_cooling_threshold(benchmark, record_rows):
    # use a long-distance setting so cooling actually engages
    from repro.experiments.fig18 import params_for

    base = params_for("atom_distance", 60e-6)
    values = [1.0, 15.0, 45.0]
    from repro.core.compiler import AtomiqueConfig
    from repro.core.router import RouterConfig
    from repro.baselines import compile_on_atomique
    from repro.experiments.common import raa_for
    from repro.hardware.raa import RAAArchitecture

    rows = []
    fids = {}
    for thr in values:
        params = base.with_overrides(n_vib_cooling_threshold=thr)
        prod = 1.0
        for circ in _benchmarks():
            shape = raa_for(circ)
            arch = RAAArchitecture(shape.slm_shape, shape.aod_shapes, params)
            cfg = AtomiqueConfig(router=RouterConfig(cooling_threshold=thr))
            m = compile_on_atomique(circ, arch, cfg)
            prod *= max(m.total_fidelity, 1e-9)
            rows.append(
                {
                    "threshold": thr,
                    "benchmark": circ.name,
                    "fidelity": round(m.total_fidelity, 4),
                    "cooling_events": m.extras["cooling_events"],
                }
            )
        fids[thr] = prod ** (1 / len(_benchmarks()))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_rows("fig18d_cooling_threshold", rows)
    # the paper's optimal window (12-25) beats both extremes
    assert fids[15.0] >= fids[1.0]
    assert fids[15.0] >= fids[45.0]


def test_fig18e_coherence_time(benchmark, record_rows):
    values = [0.1, 15.0, 100.0]
    points = benchmark.pedantic(
        run_sensitivity,
        args=("t1", values, _benchmarks(), ["FAA-Rectangular", "Atomique"]),
        rounds=1,
        iterations=1,
    )
    record_rows("fig18e_coherence", _points_to_rows(points))
    # RAA gains more from coherence than FAA does
    raa_gain = _fid(points, 100.0, "Atomique") / max(
        _fid(points, 0.1, "Atomique"), 1e-9
    )
    faa_gain = _fid(points, 100.0, "FAA-Rectangular") / max(
        _fid(points, 0.1, "FAA-Rectangular"), 1e-9
    )
    assert raa_gain > faa_gain
    # and wins outright at long coherence
    assert _fid(points, 100.0, "Atomique") > _fid(points, 100.0, "FAA-Rectangular")


def test_fig18f_two_qubit_fidelity(benchmark, record_rows):
    values = [0.99, 0.9975, 0.99995]
    points = benchmark.pedantic(
        run_sensitivity,
        args=("f_2q", values, _benchmarks(), ["FAA-Triangular", "Atomique"]),
        rounds=1,
        iterations=1,
    )
    record_rows("fig18f_2q_fidelity", _points_to_rows(points))
    # at today's fidelity Atomique wins ...
    assert _fid(points, 0.9975, "Atomique") > _fid(points, 0.9975, "FAA-Triangular")
    # ... and the FAA gap narrows (or flips) as 2Q error vanishes.
    gap_now = _fid(points, 0.9975, "Atomique") / _fid(points, 0.9975, "FAA-Triangular")
    gap_future = _fid(points, 0.99995, "Atomique") / _fid(
        points, 0.99995, "FAA-Triangular"
    )
    assert gap_future < gap_now


def test_fig18_bottom_error_breakdown(benchmark, record_rows):
    rows = benchmark.pedantic(
        error_breakdown,
        args=("t_per_move", [100e-6, 300e-6, 1000e-6]),
        rounds=1,
        iterations=1,
    )
    for r in rows:
        r["value"] = r["value"]
        for k in list(r):
            if isinstance(r[k], float) and k != "value":
                r[k] = round(r[k], 5)
    record_rows("fig18_bottom_breakdown", rows)
    by_value = {r["value"]: r for r in rows}
    # decoherence grows with move time; heating+loss shrink
    assert (
        by_value[1000e-6]["Move Decoherence"] > by_value[100e-6]["Move Decoherence"]
    )
    assert (
        by_value[100e-6]["Move Heating"] + by_value[100e-6]["Move Atom Loss"]
        >= by_value[1000e-6]["Move Heating"] + by_value[1000e-6]["Move Atom Loss"]
    )
