"""Fig. 20: array-topology sensitivity (aspect ratio, size, #AODs).

Paper shapes asserted:
(a) near-square arrays minimize movement distance on near-full arrays;
(b) growing square arrays lengthen moves (fidelity drops at fixed workload);
(c) more AODs reduce the 2Q gate count.
"""

from conftest import full_scale

from repro.experiments import run_array_size, run_aspect_ratio, run_num_aods
from repro.generators import qaoa_regular, qsim_random


def _benchmarks():
    if full_scale():
        from repro.experiments.fig20 import default_benchmarks

        return default_benchmarks()
    qsim = qsim_random(40, seed=40)
    qsim.name = "QSim-40Q"
    qaoa = qaoa_regular(40, 5, seed=40)
    qaoa.name = "QAOA-40Q"
    return [qsim, qaoa]


def _rows(points):
    return [
        {
            "config": p.label,
            "benchmark": p.benchmark,
            "2q": p.metrics.num_2q_gates,
            "depth": p.metrics.depth,
            "fidelity": round(p.metrics.total_fidelity, 4),
            "avg_move_um": round(p.metrics.extras["avg_move_distance_m"] * 1e6, 1),
            "exec_ms": round(p.metrics.execution_seconds * 1e3, 2),
        }
        for p in points
    ]


def test_fig20a_aspect_ratio(benchmark, record_rows):
    shapes = (
        [(1, 48), (2, 24), (4, 12), (7, 7), (12, 4), (24, 2), (48, 1)]
        if full_scale()
        else [(1, 16), (2, 8), (4, 4)]
    )
    points = benchmark.pedantic(
        run_aspect_ratio,
        kwargs={"shapes": shapes, "benchmarks": _benchmarks()},
        rounds=1,
        iterations=1,
    )
    record_rows("fig20a_aspect_ratio", _rows(points))
    extreme = [p for p in points if p.label == f"1x{shapes[0][1]}"]
    square = [p for p in points if p.label == f"{shapes[-1 if not full_scale() else 3][0]}x{shapes[-1 if not full_scale() else 3][1]}"]
    for e, s in zip(extreme, square):
        assert (
            s.metrics.extras["avg_move_distance_m"]
            <= e.metrics.extras["avg_move_distance_m"]
        )


def test_fig20b_array_size(benchmark, record_rows):
    sides = [7, 10, 14, 17, 20] if full_scale() else [7, 14]
    points = benchmark.pedantic(
        run_array_size,
        kwargs={"sides": sides, "benchmarks": _benchmarks()},
        rounds=1,
        iterations=1,
    )
    record_rows("fig20b_array_size", _rows(points))
    small = [p for p in points if p.label == f"{sides[0]}x{sides[0]}"]
    large = [p for p in points if p.label == f"{sides[-1]}x{sides[-1]}"]
    # larger arrays -> longer moves on the same workload
    assert sum(p.metrics.extras["avg_move_distance_m"] for p in large) >= sum(
        p.metrics.extras["avg_move_distance_m"] for p in small
    )


def test_fig20c_num_aods(benchmark, record_rows):
    counts = [1, 2, 3, 4, 5, 6, 7] if full_scale() else [1, 2, 4]
    points = benchmark.pedantic(
        run_num_aods,
        kwargs={"aod_counts": counts, "benchmarks": _benchmarks()},
        rounds=1,
        iterations=1,
    )
    record_rows("fig20c_num_aods", _rows(points))
    one = [p for p in points if p.label == f"{counts[0]} AODs"]
    many = [p for p in points if p.label == f"{counts[-1]} AODs"]
    assert sum(p.metrics.num_2q_gates for p in many) <= sum(
        p.metrics.num_2q_gates for p in one
    )
