"""Fig. 15: generic-circuit sweep over 2Q-gates-per-qubit x degree.

Paper insights asserted: (1) Atomique excels on high-degree circuits while
low-degree local circuits favour FAA slightly; (2) deeper circuits widen the
fidelity gap.
"""

from conftest import full_scale

from repro.experiments import run_generic_sweep


def _grid():
    if full_scale():
        return dict(
            num_qubits=40,
            gates_per_qubit=[2, 6, 10, 14, 18, 22, 26],
            degrees=[1, 2, 3, 4, 5, 6, 7],
        )
    return dict(num_qubits=24, gates_per_qubit=[4, 12, 20], degrees=[2, 4, 6])


def test_fig15_generic_sweep(benchmark, record_rows):
    cells = benchmark.pedantic(
        run_generic_sweep, kwargs=_grid(), rounds=1, iterations=1
    )
    rows = []
    for cell in cells:
        rows.append(
            {
                "2q_per_q": cell.x,
                "degree": cell.y,
                "atomique_2q": cell.metrics["Atomique"].num_2q_gates,
                "atomique_F": round(cell.metrics["Atomique"].total_fidelity, 4),
                "improv_vs_rect": round(
                    cell.fidelity_improvement("FAA-Rectangular"), 2
                ),
                "improv_vs_tri": round(
                    cell.fidelity_improvement("FAA-Triangular"), 2
                ),
            }
        )
    record_rows("fig15_generic_sweep", rows)

    # Insight 2: the advantage grows with gate volume at high degree.
    degrees = sorted({c.y for c in cells})
    gpqs = sorted({c.x for c in cells})
    hi_deg = degrees[-1]
    shallow = next(c for c in cells if c.y == hi_deg and c.x == gpqs[0])
    deep = next(c for c in cells if c.y == hi_deg and c.x == gpqs[-1])
    assert deep.fidelity_improvement("FAA-Rectangular") > shallow.fidelity_improvement(
        "FAA-Rectangular"
    )
    # Insight 1: at the deepest setting, high degree favours Atomique more
    # than low degree.
    lo_deg_deep = next(c for c in cells if c.y == degrees[0] and c.x == gpqs[-1])
    assert deep.fidelity_improvement("FAA-Rectangular") >= lo_deg_deep.fidelity_improvement(
        "FAA-Rectangular"
    )
