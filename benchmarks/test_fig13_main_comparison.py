"""Fig. 13: depth / 2Q gates / fidelity across the five architectures.

Paper headline (geometric means): Atomique reduces 2Q gates by 5.6x / 3.4x /
3.5x / 2.8x and depth by 3.7x / 3.5x / 3.2x / 2.2x versus Superconducting,
Baker-Long-Range, FAA-Rectangular and FAA-Triangular.  The shape asserted
here: Atomique wins every geometric mean, Superconducting loses fidelity
catastrophically on deep circuits, FAA-Triangular is the strongest FAA.
"""

from conftest import full_scale

from repro.analysis import geometric_mean
from repro.experiments import improvement_over, run_main_comparison, summarize
from repro.generators.suite import main_suite


def _suite():
    specs = main_suite()
    if full_scale():
        return specs
    # drop the two slowest rows (QV-32, LiH-8 dominate runtime) by default
    skip = {"QV-32", "LiH-8"}
    return [s for s in specs if s.name not in skip]


def test_fig13_main_comparison(benchmark, record_rows):
    results = benchmark.pedantic(
        run_main_comparison, args=(_suite(),), rounds=1, iterations=1
    )
    rows = []
    for arch, ms in results.items():
        for m in ms:
            rows.append(m.row())
    record_rows("fig13_per_benchmark", rows)
    record_rows("fig13_summary", summarize(results))

    factors = improvement_over(results)
    record_rows(
        "fig13_improvements",
        [
            {"baseline": arch, **{k: round(v, 2) for k, v in f.items()}}
            for arch, f in factors.items()
        ],
    )

    # Shape assertions (paper's who-wins structure).
    fid = {
        a: geometric_mean([m.total_fidelity for m in ms], floor=1e-6)
        for a, ms in results.items()
    }
    g2q = {a: geometric_mean([m.num_2q_gates for m in ms]) for a, ms in results.items()}
    depth = {a: geometric_mean([m.depth for m in ms]) for a, ms in results.items()}
    assert fid["Atomique"] == max(fid.values())
    assert g2q["Atomique"] == min(g2q.values())
    assert depth["Atomique"] == min(depth.values())
    assert fid["Superconducting"] == min(fid.values())
    # every baseline needs at least ~1.5x more 2Q gates
    for arch in ("Superconducting", "FAA-Rectangular", "FAA-Triangular"):
        assert factors[arch]["2q_reduction"] > 1.5
