"""Fig. 25: additional CNOTs from SWAP insertion per architecture.

Paper shape: Atomique's additional CNOTs (mean 27) are consistently and
dramatically below all fixed-coupling baselines (mean 544-770), because the
complete multipartite coupling graph needs SWAPs only for intra-array pairs.
"""

from conftest import full_scale

from repro.analysis import geometric_mean
from repro.experiments import run_main_comparison
from repro.generators.suite import main_suite


def _suite():
    specs = main_suite()
    if full_scale():
        return specs
    keep = {"HHL-7", "Mermin-Bell-10", "BV-50", "QSim-rand-20", "QAOA-regu5-40"}
    return [s for s in specs if s.name in keep]


def test_fig25_additional_cnots(benchmark, record_rows):
    results = benchmark.pedantic(
        run_main_comparison, args=(_suite(),), rounds=1, iterations=1
    )
    rows = []
    for arch, ms in results.items():
        for m in ms:
            rows.append(
                {
                    "benchmark": m.benchmark,
                    "arch": arch,
                    "additional_cnot": m.additional_cnots,
                }
            )
    record_rows("fig25_additional_cnot", rows)

    means = {
        arch: geometric_mean([max(m.additional_cnots, 1) for m in ms])
        for arch, ms in results.items()
    }
    assert means["Atomique"] == min(means.values())
    for arch, mean in means.items():
        if arch != "Atomique":
            assert mean > 2 * means["Atomique"]
