"""Table II: benchmark-suite statistics.

Regenerates the qubit counts, gate counts, 2Q-gates-per-qubit and
degree-per-qubit columns for every benchmark in both suites.
"""

from repro.experiments import benchmark_statistics


def test_table2_benchmark_statistics(benchmark, record_rows):
    rows = benchmark.pedantic(benchmark_statistics, rounds=1, iterations=1)
    record_rows("table2_benchmarks", rows)
    # structural checks against the paper's Table II
    by_name = {r["name"]: r for r in rows}
    assert by_name["QV-32"]["2q_gates"] == 1536
    assert by_name["QAOA-regu5-40"]["2q_gates"] == 100
    assert by_name["QAOA-regu6-100"]["2q_gates"] == 300
    assert by_name["VQE-10"]["2q_gates"] == 9
    assert by_name["BV-50"]["qubits"] == 50
    assert by_name["Mermin-Bell-10"]["degree_per_q"] >= 7.0
