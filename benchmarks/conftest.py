"""Shared helpers for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper and writes the
rows it produced to ``benchmarks/results/<name>.txt`` so the numbers can be
compared against the paper after a run (see EXPERIMENTS.md).

Set ``ATOMIQUE_FULL=1`` to run the full paper-scale workloads; the default
is a scaled-down grid that preserves every qualitative shape while keeping
the whole suite to a few minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """True when the paper-scale configuration was requested."""
    return os.environ.get("ATOMIQUE_FULL", "0") == "1"


@pytest.fixture
def record_rows():
    """Write a list of row-dicts as an aligned table and echo it."""

    def _record(name: str, rows: list[dict[str, object]]) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        table = format_table(rows)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        print(f"\n=== {name} ===\n{table}")
        return table

    return _record
