"""Fig. 14: Atomique vs Tan-Solver / Tan-IterP.

Paper shape: all three reach comparable fidelity on solver-feasible
circuits; Atomique compiles >1000x faster than the solver at the paper's
scale.  At this harness's default scale (exhaustive search capped at 12-14
qubits) the gap is smaller but must exceed an order of magnitude on the
largest instance, and the exhaustive solver's compile time must grow
exponentially with qubit count.
"""

from conftest import full_scale

from repro.experiments import run_solver_comparison, speedup_summary
from repro.generators.suite import small_suite


def _limit():
    return 20 if full_scale() else 14


def _suite():
    specs = small_suite()
    if full_scale():
        return specs
    return [s for s in specs if s.build().num_qubits <= 14]


def test_fig14_solver_comparison(benchmark, record_rows):
    results = benchmark.pedantic(
        run_solver_comparison,
        kwargs={"benchmarks": _suite(), "solver_qubit_limit": _limit()},
        rounds=1,
        iterations=1,
    )
    rows = [m.row() for ms in results.values() for m in ms]
    record_rows("fig14_solver_comparison", rows)
    speed = speedup_summary(results)
    record_rows(
        "fig14_speedup",
        [{"compiler": k, "mean_slowdown_vs_atomique": round(v, 1)} for k, v in speed.items()],
    )

    # similar fidelity ...
    atom = {m.benchmark: m for m in results["Atomique"]}
    for m in results["Tan-Solver"] + results["Tan-IterP"]:
        assert abs(m.total_fidelity - atom[m.benchmark].total_fidelity) < 0.12
    # ... but the exhaustive solver is much slower: at the paper's 20-qubit
    # scale >1000x; at this harness's capped scale the largest instance must
    # still show an order-of-magnitude gap.
    assert speed["Tan-Solver"] > 2.0
    largest = max(results["Tan-Solver"], key=lambda m: m.num_qubits)
    atom_largest = atom[largest.benchmark]
    assert largest.compile_seconds > 5.0 * atom_largest.compile_seconds
    # and slower on bigger circuits (exponential scaling).
    solver = sorted(results["Tan-Solver"], key=lambda m: m.num_qubits)
    if len(solver) >= 2:
        assert solver[-1].compile_seconds > solver[0].compile_seconds
