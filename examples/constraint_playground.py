"""Interactively explore the three RAA movement constraints (Figs. 9-11).

Recreates the paper's three violation scenarios with a tiny hand-built
stage plan, showing exactly why each configuration is rejected, then
compiles the same workload with each constraint relaxed to quantify the
scheduling cost of real hardware rules (mini Fig. 22).

Run:  python examples/constraint_playground.py
"""

from repro.baselines import compile_on_atomique
from repro.core.compiler import AtomiqueConfig
from repro.core.constraints import ConstraintToggles, StagePlan
from repro.core.router import RouterConfig
from repro.experiments import raa_for
from repro.generators import qaoa_random
from repro.hardware import AtomLocation, RAAArchitecture


def fig9_unintended_interaction() -> None:
    print("Constraint 1 (Fig. 9): no unintended pairs in Rydberg range")
    arch = RAAArchitecture.default(side=4, num_aods=2)
    locations = {
        0: AtomLocation(0, 0, 0),  # SLM
        1: AtomLocation(0, 1, 1),  # SLM
        2: AtomLocation(0, 1, 0),  # SLM - the innocent bystander
        3: AtomLocation(1, 0, 0),  # AOD row 0 / col 0
        4: AtomLocation(1, 1, 1),  # AOD row 1 / col 1
        5: AtomLocation(1, 1, 0),  # AOD row 1 / col 0 - dragged along!
    }
    plan = StagePlan(architecture=arch, locations=locations)
    plan.add(3, 0, (0.0, 0.0))
    print("  scheduled q3-q0 at site (0,0): legal =", plan.is_legal())
    plan.add(4, 1, (1.0, 1.0))
    print("  added q4-q1 at site (1,1):    legal =", plan.is_legal())
    print("  -> q5 (row 1, col 0) lands on SLM qubit q2's site: rejected\n")


def fig10_order_preservation() -> None:
    print("Constraint 2 (Fig. 10): AOD row/col order must be preserved")
    arch = RAAArchitecture.default(side=4, num_aods=2)
    locations = {
        0: AtomLocation(0, 0, 0),
        1: AtomLocation(0, 1, 1),
        2: AtomLocation(1, 0, 0),
        3: AtomLocation(1, 1, 1),
    }
    plan = StagePlan(architecture=arch, locations=locations)
    plan.add(2, 1, (1.0, 1.0))  # AOD row 0 -> site row 1
    ok = plan.can_add(3, 0, (0.0, 0.0))  # AOD row 1 -> site row 0?
    print("  row 0 at site-row 1; can row 1 go to site-row 0?", ok)
    print("  -> would swap the rows in flight: rejected\n")


def fig11_no_overlap() -> None:
    print("Constraint 3 (Fig. 11): rows/columns cannot overlap")
    arch = RAAArchitecture.default(side=4, num_aods=2)
    locations = {
        0: AtomLocation(0, 2, 0),
        1: AtomLocation(0, 2, 3),
        2: AtomLocation(1, 0, 0),
        3: AtomLocation(1, 1, 3),
    }
    plan = StagePlan(architecture=arch, locations=locations)
    plan.add(2, 0, (2.0, 0.0))  # AOD row 0 -> site row 2
    ok = plan.can_add(3, 1, (2.0, 3.0))  # AOD row 1 -> site row 2 too?
    print("  row 0 at site-row 2; can row 1 also park at site-row 2?", ok)
    print("  -> two AOD lines on one coordinate: rejected\n")


def relaxation_study() -> None:
    print("cost of each constraint on QAOA-rand-40 (mini Fig. 22):")
    circuit = qaoa_random(40, edge_prob=0.1, seed=40)
    arch = raa_for(circuit)
    settings = [
        ("all constraints", ConstraintToggles()),
        ("relax C1", ConstraintToggles(no_unintended_interaction=False)),
        ("relax C2", ConstraintToggles(preserve_order=False)),
        ("relax C3", ConstraintToggles(no_overlap=False)),
    ]
    for label, toggles in settings:
        cfg = AtomiqueConfig(router=RouterConfig(toggles=toggles))
        m = compile_on_atomique(circuit, arch, cfg)
        print(
            f"  {label:16s}: depth {m.depth:4d}, "
            f"exec {m.execution_seconds * 1e3:6.2f} ms, "
            f"2Q {m.num_2q_gates}"
        )


if __name__ == "__main__":
    fig9_unintended_interaction()
    fig10_order_preservation()
    fig11_no_overlap()
    relaxation_study()
