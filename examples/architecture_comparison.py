"""Compare Atomique against all four baseline architectures (mini Fig. 13).

Compiles a QAOA workload — the paper's motivating application — on the
superconducting heavy-hex device, the three fixed-atom-array variants, and
Atomique's reconfigurable array, and prints the paper's three headline
metrics side by side.

Run:  python examples/architecture_comparison.py [num_qubits] [degree]
"""

import sys

from repro.analysis import format_table
from repro.experiments import ARCHITECTURES, compile_on, raa_for
from repro.generators import qaoa_regular


def main() -> None:
    num_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    circuit = qaoa_regular(num_qubits, degree, seed=num_qubits)
    print(
        f"workload: {circuit.name} "
        f"({circuit.num_2q_gates} logical 2Q gates)\n"
    )

    rows = []
    for arch in ARCHITECTURES:
        raa = raa_for(circuit) if arch == "Atomique" else None
        m = compile_on(arch, circuit, raa=raa)
        rows.append(
            {
                "architecture": arch,
                "2q_gates": m.num_2q_gates,
                "depth": m.depth,
                "fidelity": round(m.total_fidelity, 4),
                "extra_cnots": m.additional_cnots,
                "compile_s": round(m.compile_seconds, 2),
            }
        )
    print(format_table(rows))

    best_baseline = max(
        (r for r in rows if r["architecture"] != "Atomique"),
        key=lambda r: r["fidelity"],
    )
    ours = next(r for r in rows if r["architecture"] == "Atomique")
    if best_baseline["fidelity"] > 0:
        gain = ours["fidelity"] / best_baseline["fidelity"]
        print(
            f"\nAtomique vs best baseline ({best_baseline['architecture']}): "
            f"{gain:.2f}x fidelity"
        )


if __name__ == "__main__":
    main()
