"""Explore the atom-movement physics model (Sec. IV of the paper).

Shows (1) the constant-jerk heating model and the paper's reference
delta-n_vib values, (2) the erf atom-loss curve, (3) how the time-per-move
trade-off (heating vs decoherence) produces the ~300 us optimum of Fig. 18a
on a real compiled workload.

Run:  python examples/movement_physics.py
"""

from repro.baselines import compile_on_atomique
from repro.core.compiler import AtomiqueConfig
from repro.core.router import RouterConfig
from repro.experiments import params_for, raa_for
from repro.generators import qaoa_regular
from repro.hardware import RAAArchitecture
from repro.hardware.parameters import neutral_atom_params
from repro.noise import atom_loss_probability


def main() -> None:
    params = neutral_atom_params()

    print("heating per move (constant-jerk profile, Sec. IV):")
    for hops in (1, 2, 5, 10):
        dn = params.delta_n_vib(hops * params.atom_distance)
        print(f"  {hops:2d} hop(s) ({hops * 15} um): delta n_vib = {dn:.4f}")

    print("\natom survival per move vs vibrational quantum number:")
    for nv in (5, 15, 20, 25, 30, 33):
        p = 1.0 - atom_loss_probability(nv, params)
        print(f"  n_vib = {nv:4.1f}: survival = {p:.6f}")

    print("\ntime-per-move trade-off on QAOA-regu5-40 (Fig. 18a):")
    circuit = qaoa_regular(40, 5, seed=40)
    base = raa_for(circuit)
    for t_move in (100e-6, 200e-6, 300e-6, 500e-6, 1000e-6):
        p = params_for("t_per_move", t_move)
        arch = RAAArchitecture(base.slm_shape, base.aod_shapes, p)
        cfg = AtomiqueConfig(router=RouterConfig())
        m = compile_on_atomique(circuit, arch, cfg)
        bd = m.fidelity.breakdown()
        print(
            f"  T_move = {t_move * 1e6:6.0f} us: fidelity = "
            f"{m.total_fidelity:.4f}  "
            f"(-logF heating {bd['Move Heating']:.4f}, "
            f"loss {bd['Move Atom Loss']:.4f}, "
            f"decoherence {bd['Move Decoherence']:.4f})"
        )


if __name__ == "__main__":
    main()
