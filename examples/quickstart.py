"""Quickstart: compile a circuit for a reconfigurable neutral atom array.

Builds a small GHZ+QAOA-flavoured circuit, compiles it with Atomique on the
paper's default architecture (10x10 SLM + two 10x10 AODs), and prints the
headline metrics plus the first few executable stages.

Run:  python examples/quickstart.py
"""

from repro.circuits import QuantumCircuit
from repro.core import AtomiqueCompiler
from repro.hardware import RAAArchitecture
from repro.noise import estimate_raa_fidelity


def build_circuit() -> QuantumCircuit:
    """An 8-qubit circuit mixing local and long-range entanglement."""
    circ = QuantumCircuit(8, "quickstart")
    circ.h(0)
    for q in range(7):
        circ.cx(q, q + 1)  # GHZ ladder
    for a, b in [(0, 4), (1, 5), (2, 6), (3, 7)]:
        circ.rzz(0.5, a, b)  # long-range ZZ layer
    for q in range(8):
        circ.rx(0.3, q)
    return circ


def main() -> None:
    circuit = build_circuit()
    architecture = RAAArchitecture.default(side=10, num_aods=2)
    compiler = AtomiqueCompiler(architecture)

    result = compiler.compile(circuit)
    fidelity = estimate_raa_fidelity(result.program, architecture.params)

    print(f"circuit            : {circuit.name}")
    print(f"logical 2Q gates   : {circuit.num_2q_gates}")
    print(f"compiled 2Q gates  : {result.num_2q_gates}")
    print(f"2Q depth (stages)  : {result.depth}")
    print(f"SWAPs inserted     : {result.num_swaps}")
    print(f"estimated fidelity : {fidelity.total:.4f}")
    print(f"execution time     : {result.execution_time() * 1e3:.2f} ms")
    print(f"compile time       : {result.compile_seconds * 1e3:.1f} ms")

    print("\nqubit placements (array, row, col):")
    for q in range(circuit.num_qubits):
        loc = result.locations[q]
        kind = "SLM " if loc.is_slm else f"AOD{loc.array}"
        print(f"  q{q}: {kind} ({loc.row}, {loc.col})")

    print("\nfirst three Rydberg stages:")
    shown = 0
    for i, stage in enumerate(result.program.stages):
        if not stage.gates:
            continue
        pairs = ", ".join(
            f"(q{g.qubit_a}, q{g.qubit_b})@{g.site}" for g in stage.gates
        )
        print(f"  stage {i}: {len(stage.moves)} moves, gates {pairs}")
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
