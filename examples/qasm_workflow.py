"""Compile an OpenQASM 2.0 program end to end.

Parses a QASM string (as exported by Qiskit or QASMBench), compiles it for
the RAA, and emits both the transpiled circuit (back as QASM) and the
executable stage program — the workflow a downstream user of this library
would follow for their own benchmark files.

Run:  python examples/qasm_workflow.py [path/to/file.qasm]
"""

import sys
from pathlib import Path

from repro.circuits import emit_qasm, parse_qasm
from repro.core import AtomiqueCompiler
from repro.hardware import RAAArchitecture
from repro.noise import estimate_raa_fidelity

DEMO_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
rz(pi/4) q[2];
cx q[2], q[3];
cx q[3], q[4];
rzz(pi/8) q[0], q[5];
rzz(pi/8) q[1], q[4];
cp(pi/2) q[2], q[5];
measure q[0] -> c[0];
measure q[5] -> c[5];
"""


def main() -> None:
    if len(sys.argv) > 1:
        text = Path(sys.argv[1]).read_text()
        name = Path(sys.argv[1]).stem
    else:
        text, name = DEMO_QASM, "demo"
    circuit = parse_qasm(text, name=name)
    print(f"parsed {name!r}: {circuit.num_qubits} qubits, {len(circuit)} ops")

    architecture = RAAArchitecture.default(side=10, num_aods=2)
    result = AtomiqueCompiler(architecture).compile(circuit)
    fidelity = estimate_raa_fidelity(result.program, architecture.params)

    print(
        f"compiled: {result.num_2q_gates} 2Q gates in {result.depth} stages, "
        f"fidelity {fidelity.total:.4f}"
    )

    print("\ntranspiled circuit (QASM):")
    print(emit_qasm(result.transpiled))

    print("stage program:")
    for i, stage in enumerate(result.program.stages):
        parts = []
        if stage.one_qubit_gates:
            parts.append(f"{len(stage.one_qubit_gates)} Raman pulses")
        if stage.moves:
            parts.append(f"{len(stage.moves)} AOD line moves")
        if stage.gates:
            parts.append(f"Rydberg pulse on {len(stage.gates)} pair(s)")
        if stage.cooling:
            parts.append(f"cooling swap x{len(stage.cooling)}")
        print(f"  stage {i:3d}: " + ", ".join(parts))


if __name__ == "__main__":
    main()
