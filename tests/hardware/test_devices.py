"""Tests for FAA and superconducting device models."""

import pytest

from repro.hardware import FAAArchitecture, SuperconductingArchitecture, heavy_hex_coupling


class TestFAA:
    def test_for_circuit_sizes(self):
        arch = FAAArchitecture.for_circuit(50)
        assert arch.num_qubits >= 50
        assert arch.rows * arch.cols == arch.num_qubits
        # near-square
        assert abs(arch.rows - arch.cols) <= 1

    def test_exact_square(self):
        arch = FAAArchitecture.for_circuit(49)
        assert (arch.rows, arch.cols) == (7, 7)

    def test_topologies(self):
        rect = FAAArchitecture.for_circuit(9, "rectangular").coupling_map()
        tri = FAAArchitecture.for_circuit(9, "triangular").coupling_map()
        lr = FAAArchitecture.for_circuit(9, "long_range").coupling_map()
        assert rect.num_edges < tri.num_edges <= lr.num_edges

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            FAAArchitecture("hexagonal", 3, 3)

    def test_all_connected(self):
        for topo in ("rectangular", "triangular", "long_range"):
            assert FAAArchitecture.for_circuit(20, topo).coupling_map().is_connected()


class TestHeavyHex:
    def test_washington_scale(self):
        cm = heavy_hex_coupling(7, 15)
        assert cm.num_qubits >= 127
        assert cm.is_connected()

    def test_max_degree_three(self):
        cm = heavy_hex_coupling(5, 13)
        assert max(cm.degree(q) for q in range(cm.num_qubits)) <= 3

    def test_bridges_have_degree_two(self):
        rows, length = 3, 9
        cm = heavy_hex_coupling(rows, length)
        for q in range(rows * length, cm.num_qubits):
            assert cm.degree(q) == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            heavy_hex_coupling(0, 5)

    def test_for_circuit_grows(self):
        arch = SuperconductingArchitecture.for_circuit(300)
        assert arch.coupling_map().num_qubits >= 300

    def test_default_127ish(self):
        arch = SuperconductingArchitecture.for_circuit(100)
        assert arch.coupling_map().num_qubits == 129  # 7x15 + 24 bridges
