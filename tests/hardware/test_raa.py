"""Tests for the RAA architecture model."""

import pytest

from repro.hardware import ArrayShape, AtomLocation, RAAArchitecture, RAAError
from repro.hardware.parameters import neutral_atom_params


class TestArrayShape:
    def test_capacity(self):
        assert ArrayShape(3, 4).capacity == 12

    def test_sites_row_major(self):
        s = ArrayShape(2, 2)
        assert s.sites() == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_invalid_shape(self):
        with pytest.raises(RAAError):
            ArrayShape(0, 3)


class TestAtomLocation:
    def test_slm_flag(self):
        assert AtomLocation(0, 1, 2).is_slm
        assert not AtomLocation(0, 1, 2).is_aod

    def test_aod_flag(self):
        assert AtomLocation(2, 0, 0).is_aod


class TestRAAArchitecture:
    def test_default(self):
        arch = RAAArchitecture.default()
        assert arch.num_aods == 2
        assert arch.num_arrays == 3
        assert arch.total_capacity == 300
        assert arch.array_capacities() == [100, 100, 100]

    def test_requires_one_aod(self):
        with pytest.raises(RAAError):
            RAAArchitecture(slm_shape=ArrayShape(4, 4), aod_shapes=[])

    def test_pitch_geometry_validated(self):
        params = neutral_atom_params().with_overrides(atom_distance=5e-6)
        with pytest.raises(RAAError):
            RAAArchitecture.default(params=params)

    def test_array_shape_lookup(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(4, 4),
            aod_shapes=[ArrayShape(2, 3)],
        )
        assert arch.array_shape(0).capacity == 16
        assert arch.array_shape(1).capacity == 6
        with pytest.raises(RAAError):
            arch.array_shape(2)

    def test_site_distance(self):
        arch = RAAArchitecture.default()
        d = arch.site_distance((0, 0), (0, 1))
        assert d == pytest.approx(15e-6)
        d2 = arch.site_distance((0, 0), (3, 4))
        assert d2 == pytest.approx(5 * 15e-6)


class TestMultipartiteCoupling:
    def test_inter_array_edges_only(self):
        arch = RAAArchitecture.default(side=4, num_aods=2)
        assignment = [0, 0, 1, 2]
        cm = arch.multipartite_coupling(assignment)
        assert not cm.is_adjacent(0, 1)  # same array
        assert cm.is_adjacent(0, 2)
        assert cm.is_adjacent(2, 3)

    def test_complete_multipartite_count(self):
        arch = RAAArchitecture.default(side=4, num_aods=2)
        assignment = [0, 0, 1, 1, 2, 2]
        cm = arch.multipartite_coupling(assignment)
        # K(2,2,2): 3 pairs of groups x 4 edges
        assert cm.num_edges == 12

    def test_validate_assignment_capacity(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(1, 2), aod_shapes=[ArrayShape(1, 2)]
        )
        arch.validate_assignment([0, 0, 1, 1])  # exactly full
        with pytest.raises(RAAError):
            arch.validate_assignment([0, 0, 0, 1])

    def test_validate_assignment_range(self):
        arch = RAAArchitecture.default(side=4)
        with pytest.raises(RAAError):
            arch.validate_assignment([0, 5])
