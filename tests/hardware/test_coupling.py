"""Tests for the coupling-map substrate."""

import pytest

from repro.hardware import (
    CouplingError,
    CouplingMap,
    grid_coupling,
    long_range_grid_coupling,
)


class TestCouplingMap:
    def test_edges_undirected(self):
        cm = CouplingMap(3, [(0, 1), (1, 2)])
        assert cm.is_adjacent(0, 1) and cm.is_adjacent(1, 0)
        assert not cm.is_adjacent(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 5)])

    def test_distance_matrix(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.distance(0, 3) == 3
        assert cm.distance(0, 0) == 0
        assert cm.distance(3, 0) == 3

    def test_disconnected_distance_sentinel(self):
        cm = CouplingMap(4, [(0, 1), (2, 3)])
        assert cm.distance(0, 2) > 4
        assert not cm.is_connected()

    def test_shortest_path_endpoints(self):
        cm = grid_coupling(3, 3)
        path = cm.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == cm.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert cm.is_adjacent(a, b)

    def test_shortest_path_same_node(self):
        cm = grid_coupling(2, 2)
        assert cm.shortest_path(1, 1) == [1]

    def test_shortest_path_disconnected_raises(self):
        cm = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(CouplingError):
            cm.shortest_path(0, 3)

    def test_degree(self):
        cm = grid_coupling(3, 3)
        assert cm.degree(4) == 4  # center
        assert cm.degree(0) == 2  # corner

    def test_subgraph_connectivity_check(self):
        cm = grid_coupling(3, 3)
        assert cm.subgraph_is_valid_layout([0, 1, 2])
        assert not cm.subgraph_is_valid_layout([0, 8])


class TestGridCoupling:
    def test_rectangular_edge_count(self):
        cm = grid_coupling(3, 4)
        # horizontal 3*3 + vertical 2*4 = 17
        assert cm.num_edges == 17

    def test_triangular_adds_diagonals(self):
        rect = grid_coupling(3, 3)
        tri = grid_coupling(3, 3, triangular=True)
        assert tri.num_edges == rect.num_edges + 4

    def test_grid_connected(self):
        assert grid_coupling(5, 7).is_connected()

    def test_long_range_radius(self):
        cm = long_range_grid_coupling(3, 3, max_range=1.0)
        rect = grid_coupling(3, 3)
        assert sorted(cm.edges) == sorted(rect.edges)

    def test_long_range_kings_move(self):
        cm = long_range_grid_coupling(3, 3, max_range=1.6)
        # center touches all 8 neighbours
        assert cm.degree(4) == 8

    def test_long_range_full(self):
        cm = long_range_grid_coupling(2, 2, max_range=10.0)
        assert cm.num_edges == 6  # complete graph K4
