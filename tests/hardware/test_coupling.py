"""Tests for the coupling-map substrate."""

import pytest

from repro.hardware import (
    CouplingError,
    CouplingMap,
    grid_coupling,
    long_range_grid_coupling,
)


class TestCouplingMap:
    def test_edges_undirected(self):
        cm = CouplingMap(3, [(0, 1), (1, 2)])
        assert cm.is_adjacent(0, 1) and cm.is_adjacent(1, 0)
        assert not cm.is_adjacent(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 5)])

    def test_distance_matrix(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.distance(0, 3) == 3
        assert cm.distance(0, 0) == 0
        assert cm.distance(3, 0) == 3

    def test_disconnected_distance_sentinel(self):
        cm = CouplingMap(4, [(0, 1), (2, 3)])
        assert cm.distance(0, 2) > 4
        assert not cm.is_connected()

    def test_shortest_path_endpoints(self):
        cm = grid_coupling(3, 3)
        path = cm.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == cm.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert cm.is_adjacent(a, b)

    def test_shortest_path_same_node(self):
        cm = grid_coupling(2, 2)
        assert cm.shortest_path(1, 1) == [1]

    def test_shortest_path_disconnected_raises(self):
        cm = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(CouplingError):
            cm.shortest_path(0, 3)

    def test_degree(self):
        cm = grid_coupling(3, 3)
        assert cm.degree(4) == 4  # center
        assert cm.degree(0) == 2  # corner

    def test_subgraph_connectivity_check(self):
        cm = grid_coupling(3, 3)
        assert cm.subgraph_is_valid_layout([0, 1, 2])
        assert not cm.subgraph_is_valid_layout([0, 8])


class TestCachedArtifacts:
    def test_dense_bfs_matches_reference(self):
        """Vectorized all-sources BFS == per-source python BFS, incl. the
        disconnected sentinel."""
        import numpy as np

        maps = [
            grid_coupling(4, 5),
            grid_coupling(3, 3, triangular=True),
            CouplingMap(6, [(0, 1), (1, 2), (3, 4)]),  # disconnected
            long_range_grid_coupling(3, 4, max_range=2.0),
        ]
        for cm in maps:
            dense = cm._distance_matrix_dense()
            reference = cm._distance_matrix_bfs()
            assert np.array_equal(dense, reference)

    def test_distance_matrix_cached_instance(self):
        cm = grid_coupling(4, 4)
        assert cm.distance_matrix() is cm.distance_matrix()

    def test_add_edge_invalidates_caches(self):
        cm = CouplingMap(3, [(0, 1)])
        assert cm.distance(0, 2) > 3
        nbrs_before = cm.neighbor_lists()
        assert list(nbrs_before[2]) == []
        cm.add_edge(1, 2)
        assert cm.distance(0, 2) == 2
        assert list(cm.neighbor_lists()[2]) == [1]

    def test_neighbor_lists_match_adj(self):
        cm = grid_coupling(3, 4, triangular=True)
        nbrs = cm.neighbor_lists()
        assert cm.neighbor_lists() is nbrs  # cached
        for q in range(cm.num_qubits):
            assert sorted(cm.adj[q]) == list(nbrs[q])

    def test_architecture_coupling_maps_cached(self):
        from repro.hardware.faa import FAAArchitecture
        from repro.hardware.superconducting import SuperconductingArchitecture

        sc = SuperconductingArchitecture()
        assert sc.coupling_map() is sc.coupling_map()
        faa = FAAArchitecture.for_circuit(20)
        assert faa.coupling_map() is faa.coupling_map()

    def test_multipartite_coupling_memoized(self):
        from repro.hardware import RAAArchitecture

        arch = RAAArchitecture.default(side=4, num_aods=2)
        assignment = [i % 3 for i in range(9)]
        first = arch.multipartite_coupling(assignment)
        again = arch.multipartite_coupling(list(assignment))
        assert first is again
        other = arch.multipartite_coupling([i % 2 for i in range(9)])
        assert other is not first


class TestGridCoupling:
    def test_rectangular_edge_count(self):
        cm = grid_coupling(3, 4)
        # horizontal 3*3 + vertical 2*4 = 17
        assert cm.num_edges == 17

    def test_triangular_adds_diagonals(self):
        rect = grid_coupling(3, 3)
        tri = grid_coupling(3, 3, triangular=True)
        assert tri.num_edges == rect.num_edges + 4

    def test_grid_connected(self):
        assert grid_coupling(5, 7).is_connected()

    def test_long_range_radius(self):
        cm = long_range_grid_coupling(3, 3, max_range=1.0)
        rect = grid_coupling(3, 3)
        assert sorted(cm.edges) == sorted(rect.edges)

    def test_long_range_kings_move(self):
        cm = long_range_grid_coupling(3, 3, max_range=1.6)
        # center touches all 8 neighbours
        assert cm.degree(4) == 8

    def test_long_range_full(self):
        cm = long_range_grid_coupling(2, 2, max_range=10.0)
        assert cm.num_edges == 6  # complete graph K4
