"""Tests pinning the hardware parameters to the paper's published values."""

import math

import pytest

from repro.hardware.parameters import (
    HardwareParams,
    delta_n_vib_reference_check,
    neutral_atom_params,
    raw_neutral_atom_params,
    superconducting_params,
)


class TestTableI:
    def test_neutral_atom_row(self):
        p = neutral_atom_params()
        assert p.f_2q == 0.9975
        assert p.f_1q == 0.99992
        assert p.t_2q == pytest.approx(380e-9)
        assert p.t_1q == pytest.approx(625e-9)
        assert p.t1 == 15.0
        assert p.atom_distance == pytest.approx(15e-6)
        assert p.t_per_move == pytest.approx(300e-6)
        assert p.t_transfer == pytest.approx(15e-6)
        assert p.p_transfer_loss == pytest.approx(0.0068)
        assert p.xzpf == pytest.approx(38e-9)
        assert p.lam == pytest.approx(0.109)

    def test_superconducting_row(self):
        p = superconducting_params()
        assert p.f_2q == 0.9975  # equalized with neutral atoms
        assert p.t_2q == pytest.approx(480e-9)
        assert p.t_1q == pytest.approx(35.2e-9)
        assert p.t1 == pytest.approx(801.2e-6)

    def test_raw_values(self):
        p = raw_neutral_atom_params()
        assert p.f_2q == 0.975
        assert p.t1 == 1.5


class TestHeatingModel:
    def test_paper_delta_nvib_values(self):
        """Sec. IV quotes 0.0054 / 0.13 / 0.54 for 1 / 5 / 10 hops."""
        ref = delta_n_vib_reference_check()
        assert ref[1] == pytest.approx(0.0054, rel=0.02)
        assert ref[5] == pytest.approx(0.13, rel=0.06)
        assert ref[10] == pytest.approx(0.54, rel=0.02)

    def test_quadratic_in_distance(self):
        p = neutral_atom_params()
        d1 = p.delta_n_vib(10e-6)
        d2 = p.delta_n_vib(20e-6)
        assert d2 == pytest.approx(4 * d1)

    def test_quartic_in_time(self):
        p = neutral_atom_params()
        slow = p.delta_n_vib(15e-6, t_move=600e-6)
        fast = p.delta_n_vib(15e-6, t_move=300e-6)
        assert fast == pytest.approx(16 * slow)

    def test_zero_distance_no_heating(self):
        assert neutral_atom_params().delta_n_vib(0.0) == 0.0

    def test_move_speed(self):
        p = neutral_atom_params()
        assert p.avg_move_speed == pytest.approx(15e-6 / 300e-6)


class TestOverrides:
    def test_with_overrides_immutable(self):
        p = neutral_atom_params()
        q = p.with_overrides(t1=100.0)
        assert p.t1 == 15.0 and q.t1 == 100.0

    def test_frozen(self):
        p = HardwareParams()
        with pytest.raises(Exception):
            p.t1 = 3.0
