"""Tests for the benchmark circuit generators against Table II structure."""

import numpy as np
import pytest

from repro.generators import (
    bernstein_vazirani,
    ghz,
    h2_circuit,
    hhl_like,
    lih_circuit,
    main_suite,
    mermin_bell,
    phase_code,
    qaoa_interaction_graph,
    qaoa_random,
    qaoa_regular,
    qft,
    qsim_random,
    qsim_random_strings,
    ripple_carry_adder,
    small_suite,
    vqe_ansatz,
)
from repro.generators.suite import find


class TestQAOA:
    def test_regular_edge_count(self):
        c = qaoa_regular(40, 5, seed=0)
        # d-regular graph has n*d/2 edges, one rzz per edge per layer
        assert sum(1 for g in c.gates if g.name == "rzz") == 100

    def test_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            qaoa_regular(5, 3)

    def test_regular_rejects_high_degree(self):
        with pytest.raises(ValueError):
            qaoa_regular(4, 4)

    def test_random_probability_scaling(self):
        dense = qaoa_random(20, edge_prob=0.9, seed=1)
        sparse = qaoa_random(20, edge_prob=0.1, seed=1)
        assert dense.num_2q_gates > sparse.num_2q_gates

    def test_layers_multiply_gates(self):
        one = qaoa_regular(10, 3, p_layers=1, seed=0)
        two = qaoa_regular(10, 3, p_layers=2, seed=0)
        assert two.num_2q_gates == 2 * one.num_2q_gates

    def test_interaction_graph_recovery(self):
        c = qaoa_regular(12, 3, seed=2)
        g = qaoa_interaction_graph(c)
        assert all(d == 3 for _, d in g.degree())

    def test_hadamard_initialization(self):
        c = qaoa_random(8, seed=0)
        assert [g.name for g in c.gates[:8]] == ["h"] * 8


class TestQSim:
    def test_string_count(self):
        c = qsim_random(20, num_strings=10, seed=0)
        assert sum(1 for g in c.gates if g.name == "rz") == 10

    def test_nonidentity_probability_scales_weight(self):
        heavy = qsim_random(20, non_identity_prob=0.9, seed=1)
        light = qsim_random(20, non_identity_prob=0.2, seed=1)
        assert heavy.num_2q_gates > light.num_2q_gates

    def test_strings_match_circuit_seed(self):
        strings = qsim_random_strings(10, seed=3)
        c = qsim_random(10, seed=3)
        # each string of weight w contributes 2(w-1) CX
        expected_2q = sum(2 * (sum(1 for ch in s if ch != "I") - 1) for s in strings)
        assert c.num_2q_gates == expected_2q

    def test_h2_structure(self):
        c = h2_circuit()
        assert c.num_qubits == 4
        assert c.num_2q_gates > 20  # Table II: 40

    def test_lih_scale(self):
        c = lih_circuit()
        assert c.num_qubits == 6
        assert 800 <= c.num_2q_gates <= 1500  # Table II: 1134

    def test_ladder_symmetry(self):
        """CX ladder must uncompute: equal counts of each directed CX."""
        from collections import Counter

        c = qsim_random(8, num_strings=3, seed=5)
        cx_dirs = Counter(g.qubits for g in c.gates if g.name == "cx")
        assert all(v % 2 == 0 for v in cx_dirs.values())


class TestAlgorithms:
    def test_bv_gate_count(self):
        c = bernstein_vazirani(50)
        assert c.num_qubits == 50
        # alternating secret: 25 set bits among 49 data qubits
        assert c.num_2q_gates == 25

    def test_bv_custom_secret(self):
        c = bernstein_vazirani(10, secret=0b101)
        assert c.num_2q_gates == 2

    def test_ghz(self):
        c = ghz(8)
        assert c.num_2q_gates == 7

    def test_qft_gate_count(self):
        c = qft(5)
        assert sum(1 for g in c.gates if g.name == "cp") == 10
        assert sum(1 for g in c.gates if g.name == "swap") == 2

    def test_adder_even_required(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(7)

    def test_adder_structure(self):
        from repro.circuits.decompose import lower_to_two_qubit

        c = ripple_carry_adder(10)
        assert c.num_qubits == 10
        # Table II counts 65 2Q gates after Toffoli decomposition:
        # 17 native CX + 8 CCX x 6 CX each
        assert lower_to_two_qubit(c).num_2q_gates == 65

    def test_mermin_bell_structure(self):
        c = mermin_bell(10)
        assert 55 <= c.num_2q_gates <= 75  # Table II: 67
        assert c.degree_per_qubit() >= 7  # Table II: 7.6

    def test_vqe_chain(self):
        c = vqe_ansatz(10)
        assert c.num_2q_gates == 9  # Table II: 9

    def test_hhl_scale(self):
        c = hhl_like(7)
        assert 100 <= c.num_2q_gates <= 250  # Table II: 196

    def test_phase_code_structure(self):
        c = phase_code(9, rounds=1)
        # 4 ancillas x 2 CX each
        assert c.num_2q_gates == 8

    def test_phase_code_rounds_scale(self):
        assert phase_code(9, rounds=2).num_2q_gates == 16


class TestSuites:
    def test_main_suite_names_unique(self):
        names = [s.name for s in main_suite()]
        assert len(set(names)) == len(names) == 17

    def test_small_suite_solver_feasible(self):
        for spec in small_suite():
            assert spec.build().num_qubits <= 20

    def test_build_sets_name(self):
        spec = main_suite()[0]
        assert spec.build().name == spec.name

    def test_find(self):
        assert find("bv-50").name == "BV-50"
        with pytest.raises(KeyError):
            find("nonexistent")

    def test_categories_valid(self):
        for spec in main_suite() + small_suite():
            assert spec.category in ("Generic", "QSim", "QAOA")

    def test_all_buildable(self):
        for spec in main_suite() + small_suite():
            c = spec.build()
            assert c.num_qubits >= 2
            assert len(c) > 0
