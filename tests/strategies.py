"""Shared hypothesis strategies for the property-based test subsystem.

One circuit vocabulary for every property/differential test
(``test_properties*.py``, the service differential tests) instead of
per-file ad-hoc generators.

Shrink-friendly by construction: every structural choice — qubit count,
gate list, gate kind, operands — is a hypothesis *draw*, never an opaque
``numpy`` RNG stream, so failing examples minimize to the smallest circuit
that still breaks the property.  The one strategy that genuinely needs an
RNG (dense symmetric weight matrices) draws its seed from a small range,
keeping reported counterexamples one-line reproducible.
"""

import math

import numpy as np
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit

#: Gate vocabulary shared by every circuit strategy.
ONE_QUBIT_GATES = ["h", "x", "y", "z", "s", "t", "sx"]
ONE_QUBIT_PARAM_GATES = ["rx", "ry", "rz", "p"]
TWO_QUBIT_GATES = ["cx", "cz", "swap"]
TWO_QUBIT_PARAM_GATES = ["rzz", "cp"]


def angles(bound: float = 2 * math.pi) -> st.SearchStrategy[float]:
    """Finite rotation angles in ``[-bound, bound]``."""
    return st.floats(-bound, bound, allow_nan=False)


@st.composite
def gate_specs(draw, num_qubits: int):
    """One ``(name, qubits, params)`` application on an n-qubit register."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        name = draw(st.sampled_from(ONE_QUBIT_GATES))
        return name, [draw(st.integers(0, num_qubits - 1))], []
    if kind == 1:
        name = draw(st.sampled_from(ONE_QUBIT_PARAM_GATES))
        return name, [draw(st.integers(0, num_qubits - 1))], [draw(angles())]
    a = draw(st.integers(0, num_qubits - 1))
    b = draw(st.integers(0, num_qubits - 1).filter(lambda x: x != a))
    if kind == 2:
        return draw(st.sampled_from(TWO_QUBIT_GATES)), [a, b], []
    name = draw(st.sampled_from(TWO_QUBIT_PARAM_GATES))
    return name, [a, b], [draw(angles(math.pi))]


@st.composite
def circuits(draw, min_qubits=2, max_qubits=6, max_gates=25):
    """General circuits over the full gate vocabulary."""
    n = draw(st.integers(min_qubits, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circ = QuantumCircuit(n)
    for _ in range(num_gates):
        name, qubits, params = draw(gate_specs(n))
        circ.add(name, qubits, params)
    return circ


@st.composite
def unitary_circuits(draw, min_qubits=4, max_qubits=7, max_gates=14):
    """Circuits over ``{h, rz, cz, cx}`` small enough for unitary checks
    (compile + statevector comparison stays tractable)."""
    n = draw(st.integers(min_qubits, max_qubits))
    num_gates = draw(st.integers(2, max_gates))
    circ = QuantumCircuit(n)
    for _ in range(num_gates):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            circ.h(draw(st.integers(0, n - 1)))
        elif kind == 1:
            circ.rz(draw(st.floats(0.0, 3.0, allow_nan=False)), draw(st.integers(0, n - 1)))
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1).filter(lambda x: x != a))
            if draw(st.booleans()):
                circ.cz(a, b)
            else:
                circ.cx(a, b)
    return circ


@st.composite
def symmetric_weights(draw, max_n=10):
    """Dense symmetric weight matrices with zero diagonal (MAX k-cut
    inputs).  The RNG seed is drawn small so counterexamples stay
    reproducible one-liners."""
    n = draw(st.integers(2, max_n))
    seed = draw(st.integers(0, 999))
    rng = np.random.default_rng(seed)
    w = rng.random((n, n))
    w = (w + w.T) / 2
    np.fill_diagonal(w, 0.0)
    return w


@st.composite
def inter_array_circuits(draw, min_qubits=4, max_qubits=10, max_gates=20):
    """(circuit, array assignment) pairs whose CZs all cross arrays —
    direct router inputs (no SWAP insertion needed)."""
    n = draw(st.integers(min_qubits, max_qubits))
    assignment = [i % 3 for i in range(n)]
    cross_pairs = [
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and assignment[a] != assignment[b]
    ]
    pairs = draw(
        st.lists(st.sampled_from(cross_pairs), min_size=1, max_size=max_gates)
    )
    circ = QuantumCircuit(n)
    for a, b in pairs:
        circ.cz(a, b)
    return circ, assignment


@st.composite
def one_q_heavy_inter_array_circuits(
    draw, min_qubits=4, max_qubits=10, max_gates=16
):
    """Like :func:`inter_array_circuits` but every cross-array CZ drags
    a burst of 1Q gates behind it — worklist stress inputs: the router's
    incremental 1Q frontier must drain and re-sort these exactly like a
    per-sweep ``front_indices()`` rescan would."""
    n = draw(st.integers(min_qubits, max_qubits))
    assignment = [i % 3 for i in range(n)]
    cross_pairs = [
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and assignment[a] != assignment[b]
    ]
    pairs = draw(
        st.lists(st.sampled_from(cross_pairs), min_size=1, max_size=max_gates)
    )
    circ = QuantumCircuit(n)
    for a, b in pairs:
        circ.cz(a, b)
        for _ in range(draw(st.integers(0, 4))):
            name = draw(st.sampled_from(ONE_QUBIT_GATES))
            # biased toward the CZ operands so 1Q gates unlock mid-route
            target = draw(
                st.sampled_from([a, b, draw(st.integers(0, n - 1))])
            )
            circ.add(name, [target], [])
    return circ, assignment
