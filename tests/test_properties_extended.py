"""Extended property-based tests: serializer round trips, simulator
equivalence, transfer segmentation, and degenerate architectures.

Circuits come from :mod:`tests.strategies` (shared, shrink-friendly
draw-based generation — failing examples minimize to tiny circuits instead
of opaque RNG seeds)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, matrices_equal_up_to_phase
from repro.core import AtomiqueCompiler, AtomiqueConfig
from repro.core.serialize import dumps, loads
from repro.hardware import ArrayShape, RAAArchitecture
from repro.sim import circuit_unitary, program_to_circuit
from tests.strategies import unitary_circuits


@settings(max_examples=15, deadline=None)
@given(unitary_circuits())
def test_compiled_program_always_unitarily_faithful(circ):
    """For ANY small circuit, the compiled stage program implements the same
    unitary as the transpiled circuit."""
    arch = RAAArchitecture.default(side=3, num_aods=2)
    res = AtomiqueCompiler(arch).compile(circ)
    u_program = circuit_unitary(program_to_circuit(res.program))
    u_transpiled = circuit_unitary(res.transpiled)
    assert matrices_equal_up_to_phase(u_program, u_transpiled, tol=1e-7)


@settings(max_examples=15, deadline=None)
@given(unitary_circuits())
def test_serializer_roundtrip_is_lossless(circ):
    arch = RAAArchitecture.default(side=3, num_aods=2)
    res = AtomiqueCompiler(arch).compile(circ)
    restored = loads(dumps(res.program))
    assert program_to_circuit(restored) == program_to_circuit(res.program)
    assert restored.n_vib_final == res.program.n_vib_final
    assert restored.atom_loss_log == res.program.atom_loss_log


@settings(max_examples=10, deadline=None)
@given(unitary_circuits(), st.integers(1, 3))
def test_compiler_works_on_any_aod_count(circ, num_aods):
    arch = RAAArchitecture.default(side=3, num_aods=num_aods)
    res = AtomiqueCompiler(arch).compile(circ)
    assert res.num_2q_gates >= circ.num_2q_gates


class TestDegenerateArchitectures:
    def test_ribbon_arrays(self):
        """1xN arrays exercise the row-constraint edge cases."""
        arch = RAAArchitecture(
            slm_shape=ArrayShape(1, 8),
            aod_shapes=[ArrayShape(1, 8), ArrayShape(1, 8)],
        )
        circ = QuantumCircuit(8)
        for i in range(7):
            circ.cz(i, i + 1)
        res = AtomiqueCompiler(arch).compile(circ)
        assert res.num_2q_gates >= 7

    def test_column_arrays(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(8, 1),
            aod_shapes=[ArrayShape(8, 1), ArrayShape(8, 1)],
        )
        circ = QuantumCircuit(8)
        for i in range(0, 8, 2):
            circ.cz(i, (i + 3) % 8)
        res = AtomiqueCompiler(arch).compile(circ)
        assert res.num_2q_gates >= 4

    def test_single_trap_aods(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(2, 2),
            aod_shapes=[ArrayShape(1, 1), ArrayShape(1, 1)],
        )
        circ = QuantumCircuit(4).cz(0, 1).cz(1, 2).cz(2, 3)
        res = AtomiqueCompiler(arch).compile(circ)
        assert res.num_2q_gates >= 3

    def test_asymmetric_aods(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(3, 3),
            aod_shapes=[ArrayShape(2, 4), ArrayShape(4, 2)],
        )
        circ = QuantumCircuit(9)
        for i in range(8):
            circ.cz(i, i + 1)
        res = AtomiqueCompiler(arch).compile(circ)
        assert res.num_2q_gates >= 8

    def test_minimal_architecture(self):
        arch = RAAArchitecture(
            slm_shape=ArrayShape(1, 1), aod_shapes=[ArrayShape(1, 1)]
        )
        circ = QuantumCircuit(2).cz(0, 1).cz(0, 1)
        res = AtomiqueCompiler(arch).compile(circ)
        assert res.num_2q_gates == 2
        assert res.depth == 2
