"""Tests for the shared experiment helpers."""

import pytest

from repro.circuits import QuantumCircuit
from repro.experiments import raa_for


def legacy_side(num_qubits, num_aods):
    """The seed implementation: grow one row at a time from side 10."""
    side = 10
    while (1 + num_aods) * side * side < num_qubits:
        side += 1
    return side


class TestRaaFor:
    def test_default_is_paper_10x10(self):
        arch = raa_for(QuantumCircuit(40))
        assert arch.slm_shape.rows == 10
        assert arch.slm_shape.cols == 10
        assert len(arch.aod_shapes) == 2

    @pytest.mark.parametrize("num_aods", [1, 2, 3])
    @pytest.mark.parametrize(
        "num_qubits",
        [1, 10, 100, 299, 300, 301, 675, 676, 1000, 9999, 10000, 123457],
    )
    def test_side_matches_legacy_growth_loop(self, num_qubits, num_aods):
        """Regression for the closed-form sizing, including large circuits
        (the seed loop was O(side) per call; the ceil-sqrt form is O(1))."""
        arch = raa_for(QuantumCircuit(num_qubits), num_aods=num_aods)
        assert arch.slm_shape.rows == legacy_side(num_qubits, num_aods)

    def test_capacity_always_sufficient(self):
        for n in (50, 500, 5000):
            arch = raa_for(QuantumCircuit(n))
            assert arch.total_capacity >= n
