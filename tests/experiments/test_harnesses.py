"""Smoke + shape tests for every experiment harness (scaled-down inputs)."""

import pytest

from repro.analysis import geometric_mean
from repro.experiments import (
    benchmark_statistics,
    error_breakdown,
    improvement_over,
    params_for,
    pulse_comparison,
    run_aod_sizes,
    run_array_size,
    run_aspect_ratio,
    run_breakdown,
    run_constraint_relaxation,
    run_generic_sweep,
    run_main_comparison,
    run_num_aods,
    run_overlap_pressure,
    run_qaoa_sweep,
    run_qpilot_comparison,
    run_qsim_sweep,
    run_sensitivity,
    run_solver_comparison,
    speedup_summary,
    summarize,
)
from repro.generators import qaoa_regular, qsim_random
from repro.generators.suite import BenchmarkSpec, small_suite


def tiny_specs():
    return [
        BenchmarkSpec("QAOA-regu4-10", "QAOA", lambda: qaoa_regular(10, 4, seed=1)),
        BenchmarkSpec("QSim-rand-10", "QSim", lambda: qsim_random(10, seed=1)),
    ]


class TestFig13:
    @pytest.fixture(scope="class")
    def results(self):
        return run_main_comparison(tiny_specs())

    def test_all_architectures_present(self, results):
        assert len(results) == 5
        for ms in results.values():
            assert len(ms) == 2

    def test_atomique_wins_gmean_fidelity(self, results):
        fids = {
            arch: geometric_mean([m.total_fidelity for m in ms], floor=1e-6)
            for arch, ms in results.items()
        }
        assert fids["Atomique"] == max(fids.values())

    def test_atomique_fewest_2q(self, results):
        g2q = {
            arch: geometric_mean([m.num_2q_gates for m in ms])
            for arch, ms in results.items()
        }
        assert g2q["Atomique"] == min(g2q.values())

    def test_summary_rows(self, results):
        rows = summarize(results)
        assert {r["arch"] for r in rows} == set(results)

    def test_improvement_factors_above_one(self, results):
        imp = improvement_over(results)
        for factors in imp.values():
            assert factors["2q_reduction"] >= 1.0


class TestFig14:
    def test_solver_comparison_shape(self):
        specs = [s for s in small_suite() if s.build().num_qubits <= 10][:3]
        results = run_solver_comparison(specs, solver_qubit_limit=10)
        assert results["Atomique"]
        speed = speedup_summary(results)
        # the exhaustive solver must be slower than Atomique on average
        assert speed["Tan-Solver"] > 1.0


class TestTables:
    def test_table2_statistics(self):
        rows = benchmark_statistics(tiny_specs())
        assert rows[0]["qubits"] == 10
        assert all(r["2q_gates"] > 0 for r in rows)

    def test_table3_pulse_reduction(self):
        rows = pulse_comparison(["BV-50", "Mermin-Bell-10"])
        for row in rows:
            assert row["reduction"] > 1.0  # Atomique always wins Table III


class TestSweeps:
    def test_generic_sweep_cells(self):
        cells = run_generic_sweep(
            num_qubits=12, gates_per_qubit=[4, 12], degrees=[2, 5], seed=1
        )
        assert len(cells) == 4
        for cell in cells:
            assert set(cell.metrics) == {
                "FAA-Rectangular",
                "FAA-Triangular",
                "Atomique",
            }

    def test_advantage_grows_with_volume(self):
        cells = run_generic_sweep(
            num_qubits=12, gates_per_qubit=[4, 20], degrees=[5], seed=1
        )
        low, high = cells[0], cells[1]
        assert high.fidelity_improvement("FAA-Rectangular") >= (
            low.fidelity_improvement("FAA-Rectangular") * 0.8
        )

    def test_qaoa_sweep(self):
        cells = run_qaoa_sweep(qubit_numbers=[10], degrees=[3, 5], seed=1)
        assert len(cells) == 2

    def test_qsim_sweep(self):
        cells = run_qsim_sweep(
            qubit_numbers=[10], non_identity_probs=[0.3, 0.6], seed=1
        )
        assert len(cells) == 2
        dense, = [c for c in cells if c.y == 0.6]
        sparse, = [c for c in cells if c.y == 0.3]
        assert (
            dense.metrics["Atomique"].num_2q_gates
            > sparse.metrics["Atomique"].num_2q_gates
        )


class TestFig18:
    def test_params_for_overrides(self):
        p = params_for("t1", 3.0)
        assert p.t1 == 3.0

    def test_params_for_atom_distance_shrinks_radius(self):
        p = params_for("atom_distance", 6e-6)
        assert p.rydberg_radius == pytest.approx(1e-6)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            params_for("bogus", 1.0)

    def test_sensitivity_t1_monotone(self):
        circ = qaoa_regular(10, 3, seed=2)
        points = run_sensitivity(
            "t1", [0.1, 100.0], benchmarks=[circ], architectures=["Atomique"]
        )
        low = [p for p in points if p.value == 0.1][0]
        high = [p for p in points if p.value == 100.0][0]
        assert high.fidelity > low.fidelity

    def test_error_breakdown_columns(self):
        circ = qaoa_regular(10, 3, seed=2)
        rows = error_breakdown("t_per_move", [300e-6], benchmark=circ)
        assert "Move Decoherence" in rows[0]
        assert "2Q Gate" in rows[0]

    def test_fast_moves_heat_more(self):
        circ = qaoa_regular(10, 3, seed=2)
        rows = error_breakdown("t_per_move", [100e-6, 1000e-6], benchmark=circ)
        fast, slow = rows[0], rows[1]
        assert fast["Move Heating"] + fast["Move Atom Loss"] + fast[
            "Move Cooling"
        ] >= slow["Move Heating"] + slow["Move Atom Loss"] + slow["Move Cooling"]
        assert slow["Move Decoherence"] > fast["Move Decoherence"]


class TestFig19:
    def test_qpilot_contract_holds(self):
        results = run_qpilot_comparison(include_large=False)
        pairs = zip(results["Atomique"], results["Q-Pilot"])
        depth_wins = sum(1 for a, q in pairs if q.depth <= a.depth)
        assert depth_wins >= len(results["Atomique"]) - 1
        for a, q in zip(results["Atomique"], results["Q-Pilot"]):
            assert q.num_2q_gates >= a.num_2q_gates


class TestFig20:
    def test_aspect_ratio_square_shortest_moves(self):
        """Paper Fig. 20(a): with near-full arrays, square shapes minimize
        movement distance (the effect needs qubit count ~ capacity)."""
        circ = qsim_random(40, seed=40)
        points = run_aspect_ratio(shapes=[(1, 16), (4, 4)], benchmarks=[circ])
        wide = [p for p in points if p.label == "1x16"][0]
        square = [p for p in points if p.label == "4x4"][0]
        assert (
            square.metrics.extras["avg_move_distance_m"]
            <= wide.metrics.extras["avg_move_distance_m"]
        )

    def test_array_size_runs(self):
        circ = qaoa_regular(20, 3, seed=1)
        points = run_array_size(sides=[7, 12], benchmarks=[circ])
        assert len(points) == 2

    def test_more_aods_fewer_2q(self):
        circ = qsim_random(20, seed=3)
        points = run_num_aods(aod_counts=[1, 3], benchmarks=[circ])
        one = [p for p in points if p.label == "1 AODs"][0]
        three = [p for p in points if p.label == "3 AODs"][0]
        assert three.metrics.num_2q_gates <= one.metrics.num_2q_gates


class TestFig21And22:
    def test_breakdown_improves(self):
        results = run_breakdown(num_qubits=12, gates_per_qubit=10, degree=4)
        assert results[-1].total_fidelity > results[0].total_fidelity

    def test_relaxation_keeps_2q_count(self):
        circ = qaoa_regular(16, 4, seed=1)
        points = run_constraint_relaxation([circ])
        counts = {p.relaxation: p.metrics.num_2q_gates for p in points}
        assert len(set(counts.values())) == 1  # 2Q count unchanged

    def test_relaxation_depth_never_worse(self):
        circ = qaoa_regular(16, 4, seed=1)
        points = run_constraint_relaxation([circ])
        base = [p for p in points if p.relaxation == "All Constraints"][0]
        for p in points:
            assert p.metrics.depth <= base.metrics.depth + 2


class TestFig23And24:
    def test_aod_sizes_run(self):
        circ = qaoa_regular(40, 3, seed=2)
        circ.name = "QAOA-regu3-40"
        points = run_aod_sizes(benchmarks=[circ])
        assert len(points) == 2

    def test_overlap_pressure_decreases_with_size(self):
        circ = qsim_random(40, seed=4)
        points = run_overlap_pressure(sides=[4, 10], benchmarks=[circ])
        tight = [p for p in points if "4x4" in p.label][0]
        loose = [p for p in points if "10x10" in p.label][0]
        assert tight.overlaps >= loose.overlaps
