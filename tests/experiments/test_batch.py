"""Tests for the parallel batch compilation driver."""

import pytest

from repro.baselines.registry import CompileOptions
from repro.experiments import run_main_comparison
from repro.experiments.batch import CompileJob, ResultCache, compile_many
from repro.generators import qaoa_regular, qsim_random
from repro.generators.suite import BenchmarkSpec


def fig13_style_jobs(seed=7):
    """A small (benchmark x architecture) job list like fig13 builds."""
    circuits = [qaoa_regular(8, 3, seed=1), qsim_random(8, seed=2)]
    return [
        CompileJob(arch, circ, CompileOptions(seed=seed))
        for circ in circuits
        for arch in ["FAA-Rectangular", "Superconducting", "Atomique"]
    ]


def stable_row(m):
    """The deterministic part of a metrics record (drop wall-clock)."""
    row = m.row()
    row.pop("compile_s")
    return row


class TestDeterminism:
    def test_serial_matches_parallel(self):
        jobs = fig13_style_jobs()
        serial = compile_many(jobs, workers=1)
        parallel = compile_many(jobs, workers=4)
        assert [stable_row(m) for m in serial] == [
            stable_row(m) for m in parallel
        ]

    def test_results_in_job_order(self):
        jobs = fig13_style_jobs()
        results = compile_many(jobs, workers=4)
        assert [m.architecture for m in results] == [j.backend for j in jobs]
        assert [m.benchmark for m in results] == [j.circuit.name for j in jobs]

    def test_run_main_comparison_workers_identical(self):
        specs = [
            BenchmarkSpec(
                "QAOA-regu3-8", "QAOA", lambda: qaoa_regular(8, 3, seed=1)
            )
        ]
        serial = run_main_comparison(specs, workers=1)
        parallel = run_main_comparison(specs, workers=2)
        for arch in serial:
            assert [stable_row(m) for m in serial[arch]] == [
                stable_row(m) for m in parallel[arch]
            ]


class TestNewOptionFields:
    def test_key_varies_with_label_and_extra(self):
        circ = qaoa_regular(8, 3, seed=1)
        base = CompileJob("Atomique", circ, CompileOptions())
        labeled = CompileJob("Atomique", circ, CompileOptions(label="Relax C3"))
        extra = CompileJob(
            "Atomique", circ, CompileOptions(extra=(("knob", 3),))
        )
        assert base.cache_key() != labeled.cache_key()
        assert base.cache_key() != extra.cache_key()
        assert labeled.cache_key() != extra.cache_key()

    def test_pipeline_cache_excluded_from_key_and_eq(self):
        from repro.core import PipelineCache

        circ = qaoa_regular(8, 3, seed=1)
        bare = CompileJob("Atomique", circ, CompileOptions())
        cached = CompileJob(
            "Atomique", circ, CompileOptions(pipeline_cache=PipelineCache())
        )
        assert bare.cache_key() == cached.cache_key()
        assert bare.options == cached.options

    def test_workers_strip_pipeline_cache(self):
        """Jobs carrying an in-process cache still run on a process pool."""
        from repro.core import PipelineCache

        shared = PipelineCache()
        circuits = [qaoa_regular(8, 3, seed=1), qsim_random(8, seed=2)]
        jobs = [
            CompileJob("Atomique", c, CompileOptions(pipeline_cache=shared))
            for c in circuits
        ]
        serial = compile_many(jobs, workers=1)
        parallel = compile_many(jobs, workers=2)
        assert [stable_row(m) for m in serial] == [
            stable_row(m) for m in parallel
        ]


class TestCacheKeys:
    def test_key_is_stable(self):
        a, b = fig13_style_jobs()[0], fig13_style_jobs()[0]
        assert a.cache_key() == b.cache_key()

    def test_key_varies_with_seed_and_backend(self):
        circ = qaoa_regular(8, 3, seed=1)
        base = CompileJob("Atomique", circ, CompileOptions(seed=7))
        other_seed = CompileJob("Atomique", circ, CompileOptions(seed=8))
        other_backend = CompileJob("FAA-Rectangular", circ, CompileOptions(seed=7))
        assert base.cache_key() != other_seed.cache_key()
        assert base.cache_key() != other_backend.cache_key()

    def test_key_varies_with_circuit(self):
        opts = CompileOptions(seed=7)
        a = CompileJob("Atomique", qaoa_regular(8, 3, seed=1), opts)
        b = CompileJob("Atomique", qaoa_regular(8, 3, seed=2), opts)
        assert a.cache_key() != b.cache_key()


class TestDiskCache:
    def test_second_run_hits_cache(self, tmp_path, monkeypatch):
        jobs = fig13_style_jobs()
        cache = ResultCache(tmp_path / "cache")
        first = compile_many(jobs, cache=cache)

        def boom(job):
            raise AssertionError("cache miss: job was recompiled")

        monkeypatch.setattr("repro.experiments.batch._run_job", boom)
        second = compile_many(jobs, cache=cache)
        assert [stable_row(m) for m in first] == [stable_row(m) for m in second]

    def test_cache_accepts_path_string(self, tmp_path):
        jobs = fig13_style_jobs()[:1]
        first = compile_many(jobs, cache=str(tmp_path / "c"))
        second = compile_many(jobs, cache=str(tmp_path / "c"))
        assert stable_row(first[0]) == stable_row(second[0])

    def test_corrupt_entry_recompiles(self, tmp_path):
        jobs = fig13_style_jobs()[:1]
        cache = ResultCache(tmp_path)
        compile_many(jobs, cache=cache)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        results = compile_many(jobs, cache=cache)
        assert results[0].num_2q_gates > 0
